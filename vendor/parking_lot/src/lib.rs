//! Minimal offline subset of the `parking_lot` crate.
//!
//! Poison-free `Mutex` and `RwLock` wrappers over the std primitives:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`),
//! and a panicked holder does not poison the lock — matching the
//! upstream semantics the workspace relies on.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
