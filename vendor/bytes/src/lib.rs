//! Minimal offline subset of the `bytes` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the small slice of the `bytes` API it actually uses:
//! [`Bytes`] (a cheaply cloneable immutable byte buffer), [`BytesMut`]
//! (a growable buffer that freezes into `Bytes`), and the [`BufMut`]
//! write trait. Semantics match the upstream crate for this subset;
//! cheap cloning is provided by an `Arc` under the hood.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// A `Bytes` is a `(backing, offset, len)` view: [`Bytes::slice_ref`]
/// produces sub-slices that share the backing allocation, matching the
/// upstream crate's zero-copy slicing.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Self {
            data,
            offset: 0,
            len,
        }
    }

    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from_arc(Arc::from(bytes))
    }

    /// Creates `Bytes` by copying `data`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_arc(Arc::from(data))
    }

    /// Number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Returns a `Bytes` equivalent to the given `subset` slice,
    /// sharing this buffer's backing allocation instead of copying.
    ///
    /// # Panics
    ///
    /// Panics if `subset` is not a sub-slice of `self` (same semantics
    /// as the upstream crate).
    #[must_use]
    pub fn slice_ref(&self, subset: &[u8]) -> Self {
        if subset.is_empty() {
            return Self::new();
        }
        let base = self.as_ref().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= base && sub + subset.len() <= base + self.len,
            "subset is not contained in this Bytes"
        );
        Self {
            data: Arc::clone(&self.data),
            offset: self.offset + (sub - base),
            len: subset.len(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_arc(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer with `cap` bytes of capacity preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Removes all written bytes, returning them in a new `BytesMut`
    /// and leaving `self` empty (the upstream split-off idiom used to
    /// freeze a buffer's contents while keeping the handle).
    #[must_use]
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Converts the buffer into immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice verbatim.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_roundtrip() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen, &[1u8, 2, 3][..]);
        assert_eq!(frozen.to_vec(), vec![1, 2, 3]);
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, Bytes::from_static(b"abc"));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slice_ref_shares_backing() {
        let a = Bytes::copy_from_slice(b"hello world");
        let sub = a.slice_ref(&a[6..]);
        assert_eq!(sub, Bytes::from_static(b"world"));
        assert_eq!(sub.as_ref().as_ptr(), a[6..].as_ptr(), "no copy");
        // A slice of a slice still points into the original backing.
        let sub2 = sub.slice_ref(&sub[1..3]);
        assert_eq!(sub2, &b"or"[..]);
        assert_eq!(sub2.as_ref().as_ptr(), a[7..].as_ptr());
        // Empty subsets detach harmlessly.
        assert!(a.slice_ref(&a[..0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "not contained")]
    fn slice_ref_rejects_foreign_slices() {
        let a = Bytes::copy_from_slice(b"abc");
        let other = [1u8, 2, 3];
        let _ = a.slice_ref(&other);
    }

    #[test]
    fn split_drains_writer() {
        let mut w = BytesMut::new();
        w.reserve(16);
        w.put_slice(b"abc");
        let frozen = w.split().freeze();
        assert_eq!(frozen, &b"abc"[..]);
        assert!(w.is_empty());
        w.put_u8(b'z');
        assert_eq!(w.split().freeze(), &b"z"[..]);
    }
}
