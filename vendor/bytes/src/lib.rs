//! Minimal offline subset of the `bytes` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the small slice of the `bytes` API it actually uses:
//! [`Bytes`] (a cheaply cloneable immutable byte buffer), [`BytesMut`]
//! (a growable buffer that freezes into `Bytes`), and the [`BufMut`]
//! write trait. Semantics match the upstream crate for this subset;
//! cheap cloning is provided by an `Arc` under the hood.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: Arc::from(bytes),
        }
    }

    /// Creates `Bytes` by copying `data`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer with `cap` bytes of capacity preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice verbatim.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_roundtrip() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen, &[1u8, 2, 3][..]);
        assert_eq!(frozen.to_vec(), vec![1, 2, 3]);
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, Bytes::from_static(b"abc"));
        assert!(Bytes::new().is_empty());
    }
}
