//! Minimal offline subset of the `bytes` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the small slice of the `bytes` API it actually uses:
//! [`Bytes`] (a cheaply cloneable immutable byte buffer), [`BytesMut`]
//! (a growable buffer that freezes into `Bytes`), and the [`BufMut`]
//! write trait.
//!
//! Semantics match the upstream crate for this subset, including the
//! parts that matter for hot-path allocation behavior:
//!
//! * [`BytesMut::freeze`] and [`BytesMut::split`] are **zero-copy** —
//!   the frozen [`Bytes`] is a refcounted view into the writer's
//!   backing buffer, not a fresh allocation.
//! * [`BytesMut::reserve`] **reclaims** the backing buffer in place
//!   once every frozen view has been dropped, so a pooled writer (or a
//!   payload arena) is allocation-free in steady state.
//! * [`BytesMut::try_reclaim`] exposes the reclaim probe so callers
//!   can count recycles vs. fresh chunks.
//!
//! Internally both types share one [`Chunk`]: a raw heap region with
//! `Arc` refcounting. All unsafe code in the workspace lives here,
//! behind the documented invariants on [`Chunk`].

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::ptr::NonNull;
use std::sync::{Arc, OnceLock};

/// A heap region shared by frozen [`Bytes`] views and at most one
/// [`BytesMut`] writer region per byte.
///
/// # Safety invariants
///
/// * `ptr` is the start of a heap allocation of exactly `cap` bytes
///   obtained from a `Vec<u8>` (or `NonNull::dangling()` when
///   `cap == 0`), deallocated exactly once in `Drop`.
/// * Every live [`Bytes`] view covers a byte range that was fully
///   written before the view was created and is never written again
///   while any view over it exists — writers only touch bytes at or
///   beyond their own `start + len` watermark, which lies past every
///   frozen range, and in-place reclaim (which rewinds the watermark)
///   only happens when the `Arc` refcount proves the writer is the
///   sole owner.
/// * Distinct writers produced by [`BytesMut::split`]/
///   [`BytesMut::split_to`] own disjoint `[start, end)` regions, so
///   concurrent or interleaved writes never overlap.
struct Chunk {
    ptr: *mut u8,
    cap: usize,
}

// SAFETY: the invariants above make every cross-thread access either a
// read of an immutable frozen range or a write to a region exclusively
// owned by one writer.
unsafe impl Send for Chunk {}
unsafe impl Sync for Chunk {}

impl Chunk {
    /// Allocates a chunk with at least `cap` bytes of capacity.
    fn alloc(cap: usize) -> Arc<Chunk> {
        let mut v = Vec::<u8>::with_capacity(cap);
        let ptr = v.as_mut_ptr();
        let cap = v.capacity();
        std::mem::forget(v);
        Arc::new(Chunk { ptr, cap })
    }

    /// Takes ownership of a `Vec`'s allocation without copying.
    fn from_vec(mut v: Vec<u8>) -> Arc<Chunk> {
        let ptr = v.as_mut_ptr();
        let cap = v.capacity();
        std::mem::forget(v);
        Arc::new(Chunk { ptr, cap })
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: ptr/cap came from a forgotten Vec<u8>; length 0
            // means the drop only deallocates, never reads contents.
            unsafe { drop(Vec::from_raw_parts(self.ptr, 0, self.cap)) }
        }
    }
}

/// The shared zero-capacity chunk backing all empty buffers, so empty
/// `Bytes`/`BytesMut` values never allocate.
fn empty_chunk() -> Arc<Chunk> {
    static EMPTY: OnceLock<Arc<Chunk>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| {
        Arc::new(Chunk {
            ptr: NonNull::dangling().as_ptr(),
            cap: 0,
        })
    }))
}

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// A `Bytes` is a `(chunk, offset, len)` view: [`Bytes::slice_ref`]
/// produces sub-slices that share the backing allocation, matching the
/// upstream crate's zero-copy slicing.
#[derive(Clone)]
pub struct Bytes {
    chunk: Arc<Chunk>,
    offset: usize,
    len: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Self {
            chunk: empty_chunk(),
            offset: 0,
            len: 0,
        }
    }
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Creates `Bytes` by copying `data`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.is_empty() {
            return Self::new();
        }
        Self::from(data.to_vec())
    }

    /// Number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Capacity of the backing allocation this view keeps alive.
    ///
    /// Vendored extension (upstream `bytes` has no equivalent): lets
    /// callers detect a small view pinning a much larger buffer — e.g.
    /// an event payload sliced out of a whole network frame — and
    /// decide to re-home the bytes instead.
    #[must_use]
    pub fn backing_len(&self) -> usize {
        self.chunk.cap
    }

    /// Returns a `Bytes` equivalent to the given `subset` slice,
    /// sharing this buffer's backing allocation instead of copying.
    ///
    /// # Panics
    ///
    /// Panics if `subset` is not a sub-slice of `self` (same semantics
    /// as the upstream crate).
    #[must_use]
    pub fn slice_ref(&self, subset: &[u8]) -> Self {
        if subset.is_empty() {
            return Self::new();
        }
        let base = self.as_ref().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= base && sub + subset.len() <= base + self.len,
            "subset is not contained in this Bytes"
        );
        Self {
            chunk: Arc::clone(&self.chunk),
            offset: self.offset + (sub - base),
            len: subset.len(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the view covers a frozen, fully initialized range of
        // the chunk (invariant on `Chunk`); for empty views the
        // pointer may dangle but zero-length slices permit that.
        unsafe { std::slice::from_raw_parts(self.chunk.ptr.add(self.offset), self.len) }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        if len == 0 {
            return Self::new();
        }
        Self {
            chunk: Chunk::from_vec(v),
            offset: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`] without
/// copying.
///
/// The writer owns the exclusive `[start + len, end)` tail of its
/// chunk; [`BytesMut::split`] and [`BytesMut::freeze`] hand out the
/// written prefix as refcounted views and advance the watermark.
pub struct BytesMut {
    chunk: Arc<Chunk>,
    /// First byte of this writer's region within the chunk.
    start: usize,
    /// Bytes written so far (the region `[start, start + len)`).
    len: usize,
    /// Exclusive upper bound of the writable region.
    end: usize,
}

impl Default for BytesMut {
    fn default() -> Self {
        Self {
            chunk: empty_chunk(),
            start: 0,
            len: 0,
            end: 0,
        }
    }
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer with `cap` bytes of capacity preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        if cap == 0 {
            return Self::new();
        }
        let chunk = Chunk::alloc(cap);
        let end = chunk.cap;
        Self {
            chunk,
            start: 0,
            len: 0,
            end,
        }
    }

    /// Number of bytes written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes this writer can hold without reallocating (written bytes
    /// plus spare room).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.end - self.start
    }

    /// Size of the backing allocation, independent of how much of it
    /// this writer's region still covers. Zero only for a writer that
    /// never allocated. Distinguishes "fully split away" (capacity 0,
    /// backing nonzero — the chunk can be reclaimed once its views
    /// drop) from "never allocated" for pool/arena recycling decisions.
    #[must_use]
    pub fn backing_capacity(&self) -> usize {
        self.chunk.cap
    }

    fn remaining(&self) -> usize {
        self.end - self.start - self.len
    }

    /// Whether this writer holds the only handle to its chunk (no
    /// frozen views or sibling writers alive).
    fn is_unique(&self) -> bool {
        // Holding `&mut self` over the only Arc handle means no other
        // thread can be cloning it concurrently.
        Arc::strong_count(&self.chunk) == 1 && self.chunk.cap > 0
    }

    /// Tries to make room for `additional` more bytes **without
    /// allocating**: returns `true` if spare capacity already suffices
    /// or the backing chunk could be reclaimed in place (every frozen
    /// view has been dropped and the full chunk fits the request).
    ///
    /// This is the explicit probe behind [`BytesMut::reserve`]'s
    /// recycling behavior; arenas use it to count recycled vs. fresh
    /// chunks.
    pub fn try_reclaim(&mut self, additional: usize) -> bool {
        // Rewind whenever we are the sole owner, not only when spare
        // room has run out. A pooled writer alternates "frozen views
        // alive" (mid-burst) with "sole owner" (between bursts); if the
        // rewind only happened on capacity exhaustion, exhaustion would
        // usually land mid-burst, fail the uniqueness check, and double
        // the chunk — so the cursor would march through ever-colder
        // fresh pages forever instead of reusing the warm front.
        if self.is_unique() && self.chunk.cap - self.len >= additional {
            if self.start > 0 {
                // SAFETY: sole owner (refcount 1), so no view aliases
                // the chunk; moving the written bytes to the front and
                // rewinding the watermark invalidates nothing.
                unsafe {
                    std::ptr::copy(self.chunk.ptr.add(self.start), self.chunk.ptr, self.len);
                }
                self.start = 0;
                self.end = self.chunk.cap;
            }
            return true;
        }
        self.remaining() >= additional
    }

    /// Reserves capacity for at least `additional` more bytes,
    /// reclaiming the existing allocation when possible (see
    /// [`BytesMut::try_reclaim`]) and reallocating otherwise.
    pub fn reserve(&mut self, additional: usize) {
        if self.try_reclaim(additional) {
            return;
        }
        let needed = self.len + additional;
        // Grow geometrically so repeated small appends stay amortized
        // O(1), like Vec.
        let newcap = needed.max(self.chunk.cap.saturating_mul(2)).max(32);
        let chunk = Chunk::alloc(newcap);
        if self.len > 0 {
            // SAFETY: distinct allocations; source range is this
            // writer's initialized region.
            unsafe {
                std::ptr::copy_nonoverlapping(self.chunk.ptr.add(self.start), chunk.ptr, self.len);
            }
        }
        self.start = 0;
        self.end = chunk.cap;
        self.chunk = chunk;
    }

    fn write_bytes(&mut self, s: &[u8]) {
        if self.remaining() < s.len() {
            self.reserve(s.len());
        }
        // SAFETY: `[start + len, end)` is this writer's exclusive
        // region and now holds at least `s.len()` spare bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                s.as_ptr(),
                self.chunk.ptr.add(self.start + self.len),
                s.len(),
            );
        }
        self.len += s.len();
    }

    /// Appends `data`, growing if needed.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.write_bytes(data);
    }

    /// Removes all written bytes, returning them in a new `BytesMut`
    /// and leaving `self` empty **but keeping its spare capacity** (the
    /// upstream split-off idiom used to freeze a buffer's contents
    /// while keeping the handle). Zero-copy: the returned buffer is a
    /// view into the same chunk.
    #[must_use]
    pub fn split(&mut self) -> BytesMut {
        let head = BytesMut {
            chunk: Arc::clone(&self.chunk),
            start: self.start,
            len: self.len,
            end: self.start + self.len,
        };
        self.start += self.len;
        self.len = 0;
        head
    }

    /// Splits off the first `at` written bytes as their own buffer,
    /// zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if `at > len()`.
    #[must_use]
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.len,
            "split_to out of bounds: {at} > {}",
            self.len
        );
        let head = BytesMut {
            chunk: Arc::clone(&self.chunk),
            start: self.start,
            len: at,
            end: self.start + at,
        };
        self.start += at;
        self.len -= at;
        head
    }

    /// Converts the buffer into immutable [`Bytes`], zero-copy.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        if self.len == 0 {
            return Bytes::new();
        }
        Bytes {
            chunk: Arc::clone(&self.chunk),
            offset: self.start,
            len: self.len,
        }
    }
}

impl Clone for BytesMut {
    fn clone(&self) -> Self {
        let mut out = BytesMut::with_capacity(self.len);
        out.write_bytes(self.as_ref());
        out
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for BytesMut {}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BytesMut")
            .field("len", &self.len)
            .field("cap", &self.capacity())
            .finish()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: `[start, start + len)` is initialized and only
        // writable through `&mut self`.
        unsafe { std::slice::from_raw_parts(self.chunk.ptr.add(self.start), self.len) }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice verbatim.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.write_bytes(&[b]);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.write_bytes(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_roundtrip() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen, &[1u8, 2, 3][..]);
        assert_eq!(frozen.to_vec(), vec![1, 2, 3]);
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, Bytes::from_static(b"abc"));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slice_ref_shares_backing() {
        let a = Bytes::copy_from_slice(b"hello world");
        let sub = a.slice_ref(&a[6..]);
        assert_eq!(sub, Bytes::from_static(b"world"));
        assert_eq!(sub.as_ref().as_ptr(), a[6..].as_ptr(), "no copy");
        // A slice of a slice still points into the original backing.
        let sub2 = sub.slice_ref(&sub[1..3]);
        assert_eq!(sub2, &b"or"[..]);
        assert_eq!(sub2.as_ref().as_ptr(), a[7..].as_ptr());
        // Empty subsets detach harmlessly.
        assert!(a.slice_ref(&a[..0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "not contained")]
    fn slice_ref_rejects_foreign_slices() {
        let a = Bytes::copy_from_slice(b"abc");
        let other = [1u8, 2, 3];
        let _ = a.slice_ref(&other);
    }

    #[test]
    fn split_drains_writer() {
        let mut w = BytesMut::new();
        w.reserve(16);
        w.put_slice(b"abc");
        let frozen = w.split().freeze();
        assert_eq!(frozen, &b"abc"[..]);
        assert!(w.is_empty());
        w.put_u8(b'z');
        assert_eq!(w.split().freeze(), &b"z"[..]);
    }

    #[test]
    fn freeze_is_zero_copy() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"payload");
        let written_ptr = w.as_ref().as_ptr();
        let frozen = w.split().freeze();
        assert_eq!(
            frozen.as_ref().as_ptr(),
            written_ptr,
            "freeze must not copy"
        );
        // The writer keeps the same chunk's spare capacity.
        w.put_slice(b"next");
        assert_eq!(
            w.as_ref().as_ptr() as usize,
            written_ptr as usize + frozen.len(),
            "writer continues in the same chunk"
        );
    }

    #[test]
    fn reserve_reclaims_after_views_drop() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"one");
        let base = w.as_ref().as_ptr();
        let a = w.split().freeze();
        drop(a);
        // All views dropped: reclaim must reuse the same allocation.
        assert!(w.try_reclaim(32));
        w.put_slice(b"two");
        assert_eq!(w.as_ref().as_ptr(), base, "allocation was recycled");
    }

    #[test]
    fn try_reclaim_fails_while_views_alive() {
        let mut w = BytesMut::with_capacity(8);
        w.put_slice(b"AAAAAAAA");
        let view = w.split().freeze();
        assert!(!w.try_reclaim(8), "view still pins the chunk");
        // Growth falls back to a fresh chunk and the view is unharmed.
        w.put_slice(b"BBBBBBBB");
        assert_eq!(view, &b"AAAAAAAA"[..]);
        assert_eq!(w.as_ref(), b"BBBBBBBB");
        drop(view);
        assert!(w.try_reclaim(1));
    }

    #[test]
    fn split_to_partitions_written_bytes() {
        let mut w = BytesMut::with_capacity(16);
        w.put_slice(b"headbody");
        let head = w.split_to(4);
        assert_eq!(head.as_ref(), b"head");
        assert_eq!(w.as_ref(), b"body");
        // The split-off child reallocates rather than clobbering its
        // sibling when grown.
        let mut head = head;
        head.put_slice(b"XY");
        assert_eq!(head.as_ref(), b"headXY");
        assert_eq!(w.as_ref(), b"body");
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![7u8; 100];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr, "From<Vec> must not copy");
        assert_eq!(b.len(), 100);
        assert!(b.backing_len() >= 100);
    }

    #[test]
    fn backing_len_sees_pinned_allocation() {
        let frame = Bytes::from(vec![1u8; 256]);
        let view = frame.slice_ref(&frame[10..14]);
        assert_eq!(view.len(), 4);
        assert_eq!(view.backing_len(), frame.backing_len());
        assert!(view.backing_len() >= 256);
    }

    #[test]
    fn views_survive_cross_thread_hand_off() {
        let mut w = BytesMut::with_capacity(1024);
        let mut views = Vec::new();
        for i in 0..8u8 {
            w.put_slice(&[i; 16]);
            views.push(w.split().freeze());
        }
        let handles: Vec<_> = views
            .into_iter()
            .enumerate()
            .map(|(i, v)| std::thread::spawn(move || v == [i as u8; 16].as_slice()))
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
    }

    #[test]
    fn empty_values_share_no_allocation() {
        let a = Bytes::new();
        let b = BytesMut::new().freeze();
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(a, b);
        assert_eq!(a.backing_len(), 0);
    }

    #[test]
    fn bytesmut_clone_is_deep() {
        let mut w = BytesMut::with_capacity(8);
        w.put_slice(b"abc");
        let c = w.clone();
        assert_eq!(w, c);
        assert_ne!(w.as_ref().as_ptr(), c.as_ref().as_ptr());
    }
}
