//! Minimal offline subset of the `proptest` crate.
//!
//! Implements the slice of the proptest API the workspace uses:
//! the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`],
//! [`prop_oneof!`], `any::<T>()`, range and tuple strategies,
//! `collection::vec`, `option::of`, string strategies, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking**: failures report the failing case as generated.
//! - **Deterministic seeding**: each test's RNG is seeded from its
//!   function name, so runs are reproducible without a persistence
//!   file.
//! - **String strategies ignore the regex**: any `&str` pattern
//!   generates arbitrary unicode strings (the workspace only uses
//!   `".*"`).

#[doc(hidden)]
pub use rand;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[doc(hidden)]
#[must_use]
pub fn fnv1a_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs (default 256).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_mut)]
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::__proptest_cases!{ (config) ($name) ( $($params)* ) $body }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($config:ident) ($name:ident) ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block ) => {{
        use $crate::strategy::Strategy as _;
        let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
            $crate::fnv1a_seed(stringify!($name)),
        );
        let mut __accepted: u32 = 0;
        let mut __attempts: u32 = 0;
        let __max_attempts = $config.cases.saturating_mul(16).max(1024);
        while __accepted < $config.cases {
            __attempts += 1;
            assert!(
                __attempts <= __max_attempts,
                "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                stringify!($name),
                __accepted,
                $config.cases,
            );
            let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                $(let $pat = ($strat).sample(&mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            };
            match __result {
                ::std::result::Result::Ok(()) => __accepted += 1,
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {}: {}",
                        stringify!($name),
                        __accepted,
                        msg,
                    );
                }
            }
        }
    }};
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the harness can report it with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), l, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Chooses uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::new($strat)),+
        ])
    };
}
