//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // Bias 1-in-8 draws toward boundary values; uniform
                // sampling almost never exercises 0 / MAX paths
                // (varint width changes, overflow guards).
                if rng.gen_range(0u32..8) == 0 {
                    const EDGES: [u64; 5] = [0, 1, 2, <$t>::MAX as u64, (<$t>::MAX as u64).wrapping_sub(1)];
                    EDGES[rng.gen_range(0usize..EDGES.len())] as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_signed {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                if rng.gen_range(0u32..8) == 0 {
                    const EDGES: [i64; 5] = [0, 1, -1, <$t>::MAX as i64, <$t>::MIN as i64];
                    EDGES[rng.gen_range(0usize..EDGES.len())] as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_signed!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1.0e9..=1.0e9)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1.0e6f32..=1.0e6)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()` etc.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
