//! Test-runner configuration and per-case error type.

/// Configuration for a `proptest!` block, set via
/// `#![proptest_config(ProptestConfig { cases: N, ..ProptestConfig::default() })]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must run.
    pub cases: u32,
    /// Upstream-compat knob; shrinking is not implemented, so unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Convenience constructor mirroring upstream.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Outcome of one generated case, produced by the `prop_assert*` and
/// `prop_assume!` macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was invalid for this property; try another input.
    Reject(String),
    /// The property does not hold for this input.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }

    /// Builds a failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }
}
