//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy producing `None` about a quarter of the time and
/// `Some(value)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
