//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value-tree/shrinking layer:
/// a strategy is just a deterministic sampler over an [`StdRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Debug + Clone,
    std::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Debug + Clone,
    std::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Characters string strategies draw from: ASCII plus multi-byte
/// UTF-8 of each encoded width, so wire-format tests exercise
/// non-trivial encodings.
const STRING_POOL: &[char] = &[
    'a',
    'b',
    'z',
    'A',
    'Z',
    '0',
    '9',
    ' ',
    '\t',
    '\n',
    '\0',
    '"',
    '\\',
    '/',
    '{',
    '}',
    '[',
    ']',
    ':',
    ',',
    '~',
    '\u{7f}',
    'é',
    'ß',
    'Ω',
    'λ',
    '中',
    '日',
    '\u{1f980}',
    '\u{1f600}',
    '\u{10348}',
];

/// `&str` regex patterns act as string strategies. Only `".*"`-style
/// "any string" generation is supported: the pattern itself is ignored
/// and an arbitrary short unicode string is produced.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let len = rng.gen_range(0usize..=32);
        (0..len)
            .map(|_| STRING_POOL[rng.gen_range(0usize..STRING_POOL.len())])
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
    _marker: PhantomData<fn() -> V>,
}

impl<V: Debug> BoxedStrategy<V> {
    /// Erases `strategy`'s concrete type.
    pub fn new<S>(strategy: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        Self {
            inner: Box::new(strategy),
            _marker: PhantomData,
        }
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        self.inner.sample_dyn(rng)
    }
}

/// Uniform choice among several strategies; backs `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Self { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0usize..self.arms.len());
        self.arms[idx].sample(rng)
    }
}
