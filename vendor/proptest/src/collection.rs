//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes, converted from the usual range forms.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        Self {
            lo,
            hi_inclusive: hi,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Strategy producing `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
