//! Minimal offline subset of the `rand` crate.
//!
//! Provides [`rngs::StdRng`] (a deterministic xoshiro256++ generator),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! the workspace uses (`gen`, `gen_bool`, `gen_range`). Determinism is
//! the property the simulator depends on: the same seed always yields
//! the same stream. The exact stream differs from upstream `rand`
//! (which is fine — no test encodes upstream's values).

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible uniformly at random from raw bits ("standard"
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty as $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = rng.next_u64() % span;
                (self.start as $wide).wrapping_add(v as $wide) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() % (span + 1);
                (lo as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}

impl_range_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires p in [0,1], got {p}"
        );
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from ambient entropy (wall-clock based;
    /// sufficient for the non-reproducible paths that use it).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x9e37_79b9_7f4a_7c15, |d| d.as_nanos() as u64);
        Self::seed_from_u64(nanos)
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256++, seeded via SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let i: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn standard_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
