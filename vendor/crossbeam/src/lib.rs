//! Minimal offline subset of the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided: an unbounded MPMC channel
//! with `Send + Sync + Clone` senders and receivers and a
//! `recv_timeout` that distinguishes timeout from disconnection —
//! the slice of the API the live driver uses.

pub mod channel {
    //! Multi-producer multi-consumer unbounded channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every
        /// sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = st.items.pop_front() {
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = st.items.pop_front() {
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if res.timed_out() && st.items.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Receives without blocking, if a message is ready.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(item) = st.items.pop_front() {
                return Ok(item);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            Err(RecvTimeoutError::Timeout)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers += 1;
            drop(st);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
