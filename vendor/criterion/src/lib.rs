//! Minimal offline subset of the `criterion` crate.
//!
//! Implements the API the workspace's benches use — `criterion_group!`
//! / `criterion_main!`, [`Criterion::bench_function`], benchmark
//! groups with [`BenchmarkId`] and [`Throughput`], and
//! [`Bencher::iter`] — as a plain wall-clock timing harness. There is
//! no statistical analysis, HTML report, or comparison to saved
//! baselines; each benchmark prints mean time per iteration (and
//! derived throughput when declared) to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver passed to each target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 60 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and optional
/// throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples benchmarks in this group collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the volume processed per iteration, enabling derived
    /// throughput output for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group against `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Runs one benchmark in the group without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark inside a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Volume processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration over the timed samples.
    mean_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count so each sample
    /// runs long enough for the clock to resolve it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow iterations-per-sample until one sample takes
        // ≥ ~2ms (or a single iteration already exceeds it).
        let mut iters: u64 = 1;
        let target = Duration::from_millis(2);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2).min(1 << 20);
        }

        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += start.elapsed();
            total_iters += iters;
        }
        self.mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        mean_ns: 0.0,
        sample_size,
    };
    f(&mut bencher);
    let per_iter = format_ns(bencher.mean_ns);
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib_s = bytes as f64 / bencher.mean_ns.max(f64::MIN_POSITIVE) * 1e9
                / (1024.0 * 1024.0 * 1024.0);
            println!("{label}: {per_iter}/iter ({gib_s:.3} GiB/s)");
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / bencher.mean_ns.max(f64::MIN_POSITIVE) * 1e9;
            println!("{label}: {per_iter}/iter ({elem_s:.0} elem/s)");
        }
        None => println!("{label}: {per_iter}/iter"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        target(&mut c);
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("enc", 9).to_string(), "enc/9");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
