//! Integration tests for poll-based sensing (paper §4.1, §8.5):
//! coordinated polling end to end, poller failover, sensor failure
//! surfacing as epoch misses, and staleness bounds.

use rivulet::core::app::{
    AppBuilder, CombinedWindows, CombinerSpec, OpCtx, OperatorLogic, PollSpec, WindowSpec,
};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::core::RivuletConfig;
use rivulet::devices::value::ValueModel;
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, Duration, SensorId, Time};

struct MissLogger;
impl OperatorLogic for MissLogger {
    fn on_windows(&self, _: &mut OpCtx, _: &CombinedWindows) {}
    fn on_epoch_miss(&self, ctx: &mut OpCtx, sensor: SensorId) {
        ctx.alert(format!("epoch missed for {sensor}"));
    }
}

#[test]
fn coordinated_polling_delivers_one_event_per_epoch() {
    let mut net = SimNet::new(SimConfig::with_seed(31));
    let mut home = HomeBuilder::new(&mut net);
    let pids: Vec<_> = (0..3).map(|i| home.add_host(format!("h{i}"))).collect();
    let (temp, poll_probe) = home.add_poll_sensor(
        "temp",
        ValueModel::indoor_temperature(),
        Duration::from_millis(600),
        &pids,
    );
    let (anchor, _) = home.add_actuator("a", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "thermo")
        .operator("sink", CombinerSpec::Any, MissLogger)
        .polled_sensor(
            temp,
            Delivery::Gapless,
            WindowSpec::count(1).sliding(),
            PollSpec::every(Duration::from_secs(5)),
        )
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .unwrap();
    let probe = home.add_app(app);
    let _home = home.build();
    net.run_until(Time::from_secs(100));

    // 20 epochs → ≈20 distinct events delivered, ~1 poll per epoch.
    let delivered = probe.unique_delivered();
    assert!((18..=21).contains(&delivered), "delivered {delivered}");
    assert!(
        (19..=24).contains(&poll_probe.received()),
        "polls {}",
        poll_probe.received()
    );
    assert_eq!(probe.epoch_misses(), 0);
    assert!(probe.alerts().is_empty());
}

#[test]
fn poller_failover_keeps_epochs_flowing() {
    // The slot-0 poller crashes; the slot-1 node's scheduled poll picks
    // up the epoch without any coordination message (§4.1's liveness
    // argument for slotted polling).
    let mut net = SimNet::new(SimConfig::with_seed(32));
    let mut home = HomeBuilder::new(&mut net);
    let pids: Vec<_> = (0..3).map(|i| home.add_host(format!("h{i}"))).collect();
    let (temp, _) = home.add_poll_sensor(
        "temp",
        ValueModel::indoor_temperature(),
        Duration::from_millis(600),
        &pids,
    );
    let (anchor, _) = home.add_actuator("a", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "thermo")
        .operator("sink", CombinerSpec::Any, MissLogger)
        .polled_sensor(
            temp,
            Delivery::Gapless,
            WindowSpec::count(1).sliding(),
            PollSpec::every(Duration::from_secs(5)),
        )
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .unwrap();
    let probe = home.add_app(app);
    let home = home.build();

    // pids[0] is both app host and slot-0 poller: crash it mid-run.
    net.crash_at(home.actor_of(pids[0]), Time::from_secs(42));
    net.run_until(Time::from_secs(100));

    // After failover the new primary keeps receiving epoch events.
    let late = probe
        .deliveries()
        .iter()
        .filter(|d| d.at > Time::from_secs(50))
        .count();
    assert!(late >= 8, "epochs after failover: {late}");
    assert!(probe.epoch_misses() <= 2, "misses {}", probe.epoch_misses());
}

#[test]
fn dead_sensor_raises_epoch_miss_exceptions() {
    let mut net = SimNet::new(SimConfig::with_seed(33));
    let mut home = HomeBuilder::new(&mut net);
    let pids: Vec<_> = (0..3).map(|i| home.add_host(format!("h{i}"))).collect();
    let (temp, _) = home.add_poll_sensor(
        "temp",
        ValueModel::indoor_temperature(),
        Duration::from_millis(600),
        &pids,
    );
    let (anchor, _) = home.add_actuator("a", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "thermo")
        .operator("sink", CombinerSpec::Any, MissLogger)
        .polled_sensor(
            temp,
            Delivery::Gapless,
            WindowSpec::count(1).sliding(),
            PollSpec::every(Duration::from_secs(5)),
        )
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .unwrap();
    let probe = home.add_app(app);
    let home = home.build();

    // The sensor's battery dies from t=30 to t=70: epochs 6..13 miss.
    let sensor_actor = home.sensor_actor(temp);
    net.crash_at(sensor_actor, Time::from_secs(30));
    net.recover_at(sensor_actor, Time::from_secs(70));
    net.run_until(Time::from_secs(100));

    let misses = probe.epoch_misses();
    assert!((6..=9).contains(&misses), "≈8 dead epochs, got {misses}");
    assert_eq!(
        probe.alerts().len() as u64,
        misses,
        "each miss surfaced to the app as an exception"
    );
    // Delivery resumes after recovery.
    let late = probe
        .deliveries()
        .iter()
        .filter(|d| d.at > Time::from_secs(72))
        .count();
    assert!(late >= 4, "post-recovery epochs: {late}");
}

#[test]
fn staleness_bound_filters_failover_backlog() {
    // An app that cannot use old data (e.g. real-time HVAC) sets a
    // staleness bound; the Gapless failover backlog replay is filtered
    // to fresh events only.
    let mut net = SimNet::new(SimConfig::with_seed(34));
    let config = RivuletConfig::default().with_failure_timeout(Duration::from_secs(2));
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let pids: Vec<_> = (0..3).map(|i| home.add_host(format!("h{i}"))).collect();
    let (motion, _) = home.add_push_sensor(
        "motion",
        rivulet::devices::sensor::PayloadSpec::KindOnly(rivulet::types::EventKind::Motion),
        rivulet::devices::sensor::EmissionSchedule::Periodic(Duration::from_millis(200)),
        &pids,
    );
    let (anchor, _) = home.add_actuator("a", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "fresh-only")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut OpCtx, _: &CombinedWindows| {},
        )
        .sensor(motion, Delivery::Gapless, WindowSpec::count(1))
        .staleness_bound(Duration::from_millis(500))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .unwrap();
    let probe = home.add_app(app);
    let home = home.build();

    net.crash_at(home.actor_of(pids[0]), Time::from_secs(20));
    net.run_until(Time::from_secs(40));

    // The ~2s failover backlog (≈10 events) is replayed but rejected
    // by the 500ms bound.
    assert!(
        probe.stale_drops() >= 5,
        "backlog should be filtered: {} stale drops",
        probe.stale_drops()
    );
}
