//! Routine execution engine & execution-integrity ledger suite.
//!
//! Four contracts, end to end:
//!
//! 1. **Toggle invariance** — registering a routine and an app that
//!    requests it changes *nothing* while `Config::routines` is off:
//!    the full delivery trace and the exported `ObsSnapshot` JSON are
//!    byte-identical to a seed-matched baseline that never heard of
//!    routines (the pattern of `tests/fault_suite.rs`).
//! 2. **Atomicity** — crashing the coordinating process (actor *and*
//!    disk tail) at every boundary of the staged two-phase protocol
//!    never yields a partial firing: each instance applies all of its
//!    steps or none, and non-committed instances apply nothing.
//! 3. **Ledger integrity** — the coordinator's hash-chained ledger
//!    verifies end to end after every run, including recovered ones;
//!    tampering with any single entry is detected at its exact index.
//! 4. **Reproducibility** — a routines-under-crash run is a pure
//!    function of its seed.
//!
//! The crash runs reuse the `rivulet-bench` routine harness, so every
//! asserted number is the same one `BENCH_routines.json` commits.

use rivulet::core::app::{AppBuilder, CombinedWindows, CombinerSpec, OpCtx, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::{Home, HomeBuilder};
use rivulet::core::{RivuletConfig, RoutineSpec};
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::storage::LedgerVerifier;
use rivulet::types::{
    ActuationState, AppId, CommandKind, Duration, EventKind, ProcessId, RoutineId, Time,
};
use rivulet_bench::routine::{
    corruption_exactness, run_routine_scenario, RoutineScenario, CRASH_OFFSETS_MS,
};

/// One delivery as `(at, by, seq)` — bit-comparable.
type TraceEntry = (Time, ProcessId, u64);

/// A three-host home with one periodic sensor and an anchor actuator.
/// With `register` set, a one-step routine on the anchor is declared
/// and the app requests it on every fifth reading — but the platform
/// config leaves `routines` at its default (off), so the request must
/// be dropped before it has any observable effect. Returns the full
/// delivery trace plus the obs JSON export.
fn routines_off_trace(register: bool, seed: u64) -> (Vec<TraceEntry>, String) {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    net.recorder().set_enabled(true);
    let mut home = HomeBuilder::new(&mut net).with_config(RivuletConfig::default());
    let hosts: Vec<ProcessId> = (0..3).map(|i| home.add_host(format!("host{i}"))).collect();
    let (sensor, _) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_secs(1)),
        &hosts,
    );
    let (anchor, anchor_probe) =
        home.add_actuator("anchor", ActuationState::Switch(false), &[hosts[0]]);
    if register {
        let _ = home.add_routine(
            RoutineSpec::new(RoutineId(1), "scene")
                .step(anchor, CommandKind::Set(ActuationState::Switch(true))),
        );
    }
    let app = AppBuilder::new(AppId(1), "scene")
        .operator(
            "leaving",
            CombinerSpec::Any,
            move |ctx: &mut OpCtx, w: &CombinedWindows| {
                if register && w.all_events().any(|e| e.id.seq % 5 == 4) {
                    ctx.run_routine(RoutineId(1));
                }
            },
        )
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let _home: Home = home.build();
    net.run_until(Time::from_secs(60));

    assert_eq!(
        anchor_probe.effect_count(),
        0,
        "with routines off nothing may actuate"
    );
    let trace: Vec<TraceEntry> = probe
        .deliveries()
        .iter()
        .map(|d| (d.at, d.by, d.event.seq))
        .collect();
    (trace, net.obs_snapshot().to_json())
}

#[test]
fn routines_off_is_byte_invariant() {
    let baseline = routines_off_trace(false, 7);
    let toggled = routines_off_trace(true, 7);
    assert!(!baseline.0.is_empty(), "the run delivered something");
    assert_eq!(
        baseline.0, toggled.0,
        "a registered-but-disabled routine must not perturb the delivery trace"
    );
    assert_eq!(
        baseline.1, toggled.1,
        "a registered-but-disabled routine must not perturb the obs JSON"
    );
    assert!(
        !baseline.1.contains("routine."),
        "no routine.* keys may exist on a routines-off run"
    );
    assert!(
        !baseline.1.contains("ledger."),
        "no ledger.* keys may exist on a routines-off run"
    );
}

#[test]
fn crash_free_run_commits_every_instance() {
    let o = run_routine_scenario(&RoutineScenario {
        crash_offset: None,
        duration: Duration::from_secs(30),
        seed: 42,
    });
    assert!(o.instances >= 4, "staged {} instances", o.instances);
    assert_eq!(o.committed as usize, o.instances, "every staging commits");
    assert_eq!(o.aborted, 0);
    assert_eq!(o.partial_firings, 0);
    assert_eq!(o.phantom_firings, 0);
    assert_eq!(
        o.ledger_entries,
        o.instances * 2,
        "one Staged + one Committed entry per instance"
    );
    assert_eq!(o.ledger_broken, None);
    assert_eq!(o.obs.counter("routine.committed"), o.committed);
    assert!(o.obs.counter("ledger.appends") >= o.ledger_entries as u64);
}

#[test]
fn crash_at_every_stage_boundary_never_fires_partially() {
    for ms in CRASH_OFFSETS_MS {
        let o = run_routine_scenario(&RoutineScenario {
            crash_offset: Some(Duration::from_millis(ms)),
            duration: Duration::from_secs(30),
            seed: 42,
        });
        assert_eq!(
            o.partial_firings, 0,
            "crash at +{ms}ms: an instance fired some but not all steps"
        );
        assert_eq!(
            o.phantom_firings, 0,
            "crash at +{ms}ms: a non-committed instance fired"
        );
        assert_eq!(
            o.ledger_broken, None,
            "crash at +{ms}ms: recovered ledger chain broken"
        );
    }
}

#[test]
fn interrupted_staging_aborts_and_compensates_on_recovery() {
    // +2 ms lands inside the staging round trip (radio ≈1 ms/hop):
    // the Staged entry is durable, no commit was decided, so recovery
    // must abort the instance and issue its compensation.
    let o = run_routine_scenario(&RoutineScenario {
        crash_offset: Some(Duration::from_millis(2)),
        duration: Duration::from_secs(30),
        seed: 42,
    });
    assert!(o.aborted >= 1, "the interrupted staging aborted");
    assert!(o.compensated >= 1, "its compensation was issued");
    assert!(o.obs.counter("routine.recovered_aborts") >= 1);
    assert!(o.obs.counter("ledger.recovered_entries") > 0);
    assert_eq!(o.ledger_broken, None, "recovered chain verifies");
    // The recovered coordinator still commits later firings.
    assert!(o.committed >= 4, "committed {} after recovery", o.committed);
}

#[test]
fn corrupted_ledger_entry_is_detected_at_exact_index() {
    let o = run_routine_scenario(&RoutineScenario {
        crash_offset: None,
        duration: Duration::from_secs(30),
        seed: 42,
    });
    assert!(o.ledger.len() >= 8, "ledger has {} entries", o.ledger.len());
    // The untampered chain verifies and yields the full audit trail.
    let trail = LedgerVerifier::verify(42, &o.ledger).expect("clean chain verifies");
    assert_eq!(trail.len(), o.ledger.len());
    // Tampering with any single entry breaks the chain at that index.
    let (entries, exact) = corruption_exactness(42, &o.ledger);
    assert_eq!(
        exact, entries,
        "every tampered entry must be pinpointed at its own index"
    );
}

#[test]
fn routines_under_crash_are_reproducible() {
    let cfg = RoutineScenario {
        crash_offset: Some(Duration::from_millis(3)),
        duration: Duration::from_secs(30),
        seed: 42,
    };
    let a = run_routine_scenario(&cfg);
    let b = run_routine_scenario(&cfg);
    assert_eq!(a.ledger, b.ledger, "the ledger is a pure function of seed");
    assert_eq!(a.triggered, b.triggered);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.aborted, b.aborted);
    assert_eq!(a.compensated, b.compensated);
    assert_eq!(a.obs.to_json(), b.obs.to_json(), "obs JSON is byte-stable");
}
