//! Integration tests for network partitions (paper §5): dual actives,
//! idempotent vs Test&Set actuation, and post-heal reconciliation.

use rivulet::core::app::{
    AppBuilder, CombinedWindows, CombinerSpec, OpCtx, OperatorLogic, WindowSpec,
};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::core::RivuletConfig;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, ActuatorId, AppId, Duration, EventKind, Time};

/// Logic that unconditionally sets a switch on every event (idempotent
/// actuation).
struct SetOn {
    light: ActuatorId,
}
impl OperatorLogic for SetOn {
    fn on_windows(&self, ctx: &mut OpCtx, input: &CombinedWindows) {
        for _ in input.all_events() {
            ctx.set_switch(self.light, true);
        }
    }
}

/// Logic that dispenses via Test&Set (non-idempotent actuation guarded
/// as §5 prescribes).
struct DispenseOnce {
    dispenser: ActuatorId,
}
impl OperatorLogic for DispenseOnce {
    fn on_windows(&self, ctx: &mut OpCtx, input: &CombinedWindows) {
        for _ in input.all_events() {
            ctx.test_and_set(
                self.dispenser,
                ActuationState::Pulse(0),
                ActuationState::Pulse(1),
            );
        }
    }
}

#[test]
fn full_partition_promotes_both_sides_and_heals() {
    let mut net = SimNet::new(SimConfig::with_seed(21));
    let mut home = HomeBuilder::new(&mut net).with_config(RivuletConfig::default());
    let a = home.add_host("side-a");
    let b = home.add_host("side-b");
    let (sensor, _) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(500)),
        &[a, b],
    );
    let (anchor, _) = home.add_actuator("anchor", ActuationState::Switch(false), &[a]);
    let app = AppBuilder::new(AppId(1), "watch")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut OpCtx, _: &CombinedWindows| {},
        )
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .unwrap();
    let probe = home.add_app(app);
    let home = home.build();

    net.partition_at(
        Time::from_secs(10),
        vec![vec![home.actor_of(a)], vec![home.actor_of(b)]],
    );
    net.heal_at(Time::from_secs(25));
    net.run_until(Time::from_secs(40));

    let transitions = probe.transitions();
    // b promotes inside the partition and demotes after healing.
    assert!(
        transitions
            .iter()
            .any(|(t, p, act)| *act && *p == b && *t > Time::from_secs(10)),
        "side-b promotes during the partition: {transitions:?}"
    );
    assert!(
        transitions
            .iter()
            .any(|(t, p, act)| !*act && *p == b && *t > Time::from_secs(25)),
        "side-b demotes after healing: {transitions:?}"
    );
    // During the partition both sides process their locally received
    // events: deliveries attributed to both processes.
    let by_b = probe.deliveries().iter().filter(|d| d.by == b).count();
    assert!(by_b > 10, "side-b processed during the partition: {by_b}");
}

#[test]
fn idempotent_actuation_is_safe_under_dual_actives() {
    let mut net = SimNet::new(SimConfig::with_seed(22));
    let mut home = HomeBuilder::new(&mut net).with_config(RivuletConfig::default());
    let a = home.add_host("side-a");
    let b = home.add_host("side-b");
    let (sensor, _) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_secs(1)),
        &[a, b],
    );
    // The light is reachable from both sides (it is a device, not a
    // WiFi participant).
    let (light, light_probe) = home.add_actuator("light", ActuationState::Switch(false), &[a, b]);
    let app = AppBuilder::new(AppId(1), "lights")
        .operator("on", CombinerSpec::Any, SetOn { light })
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(light, Delivery::Gapless)
        .done()
        .build()
        .unwrap();
    let _probe = home.add_app(app);
    let home = home.build();

    net.partition_at(
        Time::from_secs(5),
        vec![vec![home.actor_of(a)], vec![home.actor_of(b)]],
    );
    net.run_until(Time::from_secs(20));

    // Both actives set the light repeatedly — redundant but harmless:
    // the final state is simply on.
    assert_eq!(light_probe.state(), ActuationState::Switch(true));
    assert!(light_probe.effect_count() > 10, "both sides actuated");
    assert_eq!(
        light_probe.duplicates_suppressed(),
        0,
        "plain Set never refuses"
    );
}

#[test]
fn test_and_set_suppresses_duplicate_dispensing() {
    let mut net = SimNet::new(SimConfig::with_seed(23));
    let mut home = HomeBuilder::new(&mut net).with_config(RivuletConfig::default());
    let a = home.add_host("side-a");
    let b = home.add_host("side-b");
    // One scripted "plant is dry" event, heard on both sides.
    let (sensor, _) = home.add_push_sensor(
        "moisture",
        PayloadSpec::KindOnly(EventKind::WaterDetected),
        EmissionSchedule::Script(vec![Time::from_secs(10)]),
        &[a, b],
    );
    let (dispenser, dispenser_probe) =
        home.add_actuator("dispenser", ActuationState::Pulse(0), &[a, b]);
    let app = AppBuilder::new(AppId(1), "watering")
        .operator("dispense", CombinerSpec::Any, DispenseOnce { dispenser })
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(dispenser, Delivery::Gapless)
        .done()
        .build()
        .unwrap();
    let _probe = home.add_app(app);
    let home = home.build();

    // Partition before the event: both sides will be active and both
    // will try to dispense.
    net.partition_at(
        Time::from_secs(5),
        vec![vec![home.actor_of(a)], vec![home.actor_of(b)]],
    );
    net.run_until(Time::from_secs(20));

    assert_eq!(
        dispenser_probe.effect_count(),
        1,
        "exactly one dispense despite two active logic nodes"
    );
    assert_eq!(dispenser_probe.state(), ActuationState::Pulse(1));
    assert!(
        dispenser_probe.duplicates_suppressed() >= 1,
        "the loser's Test&Set must be refused"
    );
}

#[test]
fn events_ingested_during_partition_survive_the_heal() {
    // Sensor heard only by side-b; app anchored at side-a. During the
    // partition side-b promotes and processes; after healing, side-a
    // resumes and the backlog replicated at b reaches a via
    // anti-entropy — no event is ever lost.
    let mut net = SimNet::new(SimConfig::with_seed(24));
    let mut home = HomeBuilder::new(&mut net).with_config(RivuletConfig::default());
    let a = home.add_host("side-a");
    let b = home.add_host("side-b");
    let (sensor, emissions) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(500)),
        &[b],
    );
    let (anchor, _) = home.add_actuator("anchor", ActuationState::Switch(false), &[a]);
    let app = AppBuilder::new(AppId(1), "watch")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut OpCtx, _: &CombinedWindows| {},
        )
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .unwrap();
    let probe = home.add_app(app);
    let home = home.build();

    net.partition_at(
        Time::from_secs(10),
        vec![vec![home.actor_of(a)], vec![home.actor_of(b)]],
    );
    net.heal_at(Time::from_secs(20));
    net.run_until(Time::from_secs(35));

    let lost = emissions.emitted() as i64 - probe.unique_delivered() as i64;
    assert!(lost <= 1, "gapless across a partition lost {lost} events");
}
