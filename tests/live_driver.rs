//! Integration test of the full platform on the **live threaded
//! driver**: the same protocol code that all simulation tests
//! exercise, running on real OS threads and wall-clock time.

use std::time::{Duration as StdDuration, Instant};

use rivulet::core::app::{AppBuilder, CombinerSpec, SwitchOnEvents, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::core::RivuletConfig;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::live::{LiveConfig, LiveNet};
use rivulet::types::{ActuationState, AppId, Duration, EventKind};

fn wait_until(limit: StdDuration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < limit {
        if done() {
            return true;
        }
        std::thread::sleep(StdDuration::from_millis(20));
    }
    done()
}

#[test]
fn door_light_pipeline_runs_on_threads() {
    let mut net = LiveNet::new(LiveConfig::default());
    let mut home = HomeBuilder::new(&mut net);
    let hub = home.add_host("hub");
    let tv = home.add_host("tv");
    let (door, _) = home.add_push_sensor(
        "door",
        PayloadSpec::KindOnly(EventKind::DoorOpen),
        EmissionSchedule::Periodic(Duration::from_millis(150)),
        &[tv],
    );
    let (light, light_probe) = home.add_actuator("light", ActuationState::Switch(false), &[hub]);
    let app = AppBuilder::new(AppId(1), "door-light")
        .operator(
            "TurnLightOnOff",
            CombinerSpec::Any,
            SwitchOnEvents {
                on_kinds: vec![EventKind::DoorOpen],
                off_kinds: vec![EventKind::DoorClose],
                actuator: light,
            },
        )
        .sensor(door, Delivery::Gapless, WindowSpec::count(1))
        .actuator(light, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let _home = home.build();

    assert!(
        wait_until(StdDuration::from_secs(10), || probe.unique_delivered() >= 5),
        "events must flow end to end on threads (got {})",
        probe.unique_delivered()
    );
    assert!(
        wait_until(StdDuration::from_secs(5), || light_probe.effect_count()
            >= 5),
        "the light must actuate"
    );
    assert_eq!(light_probe.state(), ActuationState::Switch(true));
    net.shutdown();
}

#[test]
fn live_crash_recovery_failover() {
    let mut net = LiveNet::new(LiveConfig::default());
    // Short timeouts so the test completes quickly.
    let config = RivuletConfig::default()
        .with_keepalive_interval(Duration::from_millis(100))
        .with_failure_timeout(Duration::from_millis(400));
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let h0 = home.add_host("h0");
    let h1 = home.add_host("h1");
    let (motion, _) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(100)),
        &[h0, h1],
    );
    let (anchor, _) = home.add_actuator("a", ActuationState::Switch(false), &[h0]);
    let app = AppBuilder::new(AppId(1), "watch")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut rivulet::core::app::OpCtx, _: &rivulet::core::app::CombinedWindows| {},
        )
        .sensor(motion, Delivery::Gapless, WindowSpec::count(1))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();

    // Wait for steady state, then crash the app host.
    assert!(wait_until(StdDuration::from_secs(10), || {
        probe.unique_delivered() >= 5
    }));
    net.crash(home.actor_of(h0));
    // h1 must promote and keep processing.
    assert!(
        wait_until(StdDuration::from_secs(10), || {
            probe.deliveries().iter().any(|d| d.by == h1)
        }),
        "h1 must take over processing"
    );
    // Recover h0: it should eventually reclaim the primary role.
    net.recover(home.actor_of(h0));
    assert!(
        wait_until(StdDuration::from_secs(10), || {
            probe
                .transitions()
                .iter()
                .filter(|(_, p, active)| *p == h0 && *active)
                .count()
                >= 2
        }),
        "h0 must re-promote after recovery: {:?}",
        probe.transitions()
    );
    net.shutdown();
}
