//! Integration tests for the execution service (paper §5, §8.4):
//! promotion, demotion, replay, and repeated failovers.

use rivulet::core::app::{AppBuilder, CombinedWindows, CombinerSpec, OpCtx, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::{Home, HomeBuilder};
use rivulet::core::probe::AppProbe;
use rivulet::core::RivuletConfig;
use rivulet::devices::sensor::{EmissionProbe, EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, Duration, EventKind, ProcessId, Time};
use std::sync::Arc;

struct Setup {
    net: SimNet,
    home: Home,
    probe: Arc<AppProbe>,
    emissions: Arc<EmissionProbe>,
    pids: Vec<ProcessId>,
}

/// Five hosts, sensor heard everywhere at 10 ev/s, app anchored at
/// host 0.
fn standard_home(delivery: Delivery, seed: u64, timeout: Duration) -> Setup {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    let config = RivuletConfig::default().with_failure_timeout(timeout);
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let pids: Vec<ProcessId> = (0..5).map(|i| home.add_host(format!("host{i}"))).collect();
    let (sensor, emissions) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(100)),
        &pids,
    );
    let (anchor, _) = home.add_actuator("anchor", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "activity")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut OpCtx, _: &CombinedWindows| {},
        )
        .sensor(sensor, delivery, WindowSpec::count(1))
        .actuator(anchor, delivery)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();
    Setup {
        net,
        home,
        probe,
        emissions,
        pids,
    }
}

#[test]
fn chain_order_failover_and_demotion_on_recovery() {
    let mut s = standard_home(Delivery::Gapless, 1, Duration::from_secs(2));
    let h0 = s.home.actor_of(s.pids[0]);
    s.net.crash_at(h0, Time::from_secs(10));
    s.net.recover_at(h0, Time::from_secs(25));
    s.net.run_until(Time::from_secs(40));

    let transitions = s.probe.transitions();
    // p0 active at start; p1 promotes after the crash is detected; p0
    // re-promotes after recovery; p1 demotes.
    assert!(transitions
        .iter()
        .any(|(t, p, a)| *a && *p == s.pids[1] && *t > Time::from_secs(10)));
    assert!(transitions
        .iter()
        .any(|(t, p, a)| !*a && *p == s.pids[1] && *t > Time::from_secs(25)));
    assert!(transitions
        .iter()
        .any(|(t, p, a)| *a && *p == s.pids[0] && *t >= Time::from_secs(25)));
}

#[test]
fn gapless_failover_loses_nothing() {
    let mut s = standard_home(Delivery::Gapless, 2, Duration::from_secs(2));
    let h0 = s.home.actor_of(s.pids[0]);
    s.net.crash_at(h0, Time::from_secs(24));
    s.net.run_until(Time::from_secs(50));
    let lost = s.emissions.emitted() as i64 - s.probe.unique_delivered() as i64;
    assert!(lost <= 1, "gapless lost {lost}");
}

#[test]
fn gap_failover_gap_scales_with_detection_threshold() {
    // Ablation from DESIGN.md: the Fig. 7 gap size is the failure
    // detector's window. Halving the threshold should roughly halve
    // the number of lost events.
    let lost_at = |timeout: Duration| {
        let mut s = standard_home(Delivery::Gap, 3, timeout);
        let h0 = s.home.actor_of(s.pids[0]);
        s.net.crash_at(h0, Time::from_secs(24));
        s.net.run_until(Time::from_secs(50));
        s.emissions.emitted() as i64 - s.probe.unique_delivered() as i64
    };
    let fast = lost_at(Duration::from_secs(1));
    let slow = lost_at(Duration::from_secs(4));
    assert!(
        fast < slow,
        "shorter detection must lose fewer events: {fast} vs {slow}"
    );
    assert!(
        (5..=20).contains(&fast),
        "1s threshold ≈10 events, got {fast}"
    );
    assert!(
        (30..=55).contains(&slow),
        "4s threshold ≈40 events, got {slow}"
    );
}

#[test]
fn repeated_crashes_walk_down_the_chain() {
    let mut s = standard_home(Delivery::Gapless, 4, Duration::from_secs(2));
    for (i, &offset) in [10u64, 20, 30].iter().enumerate() {
        let actor = s.home.actor_of(s.pids[i]);
        s.net.crash_at(actor, Time::from_secs(offset));
    }
    s.net.run_until(Time::from_secs(45));
    let actives: Vec<ProcessId> = s
        .probe
        .transitions()
        .iter()
        .filter(|(_, _, a)| *a)
        .map(|(_, p, _)| *p)
        .collect();
    assert_eq!(
        actives,
        vec![s.pids[0], s.pids[1], s.pids[2], s.pids[3]],
        "leadership walks down the placement chain"
    );
    // p3 (the final primary) still processes events.
    let last_delivery = s.probe.deliveries().last().copied().expect("deliveries");
    assert_eq!(last_delivery.by, s.pids[3]);
    assert!(last_delivery.at > Time::from_secs(40));
}

#[test]
fn crashed_majority_does_not_stop_the_home() {
    // Rivulet explicitly avoids majority assumptions: with 4 of 5
    // processes dead, the survivor runs everything.
    let mut s = standard_home(Delivery::Gapless, 5, Duration::from_secs(2));
    for i in 0..4 {
        let actor = s.home.actor_of(s.pids[i]);
        s.net.crash_at(actor, Time::from_secs(5));
    }
    s.net.run_until(Time::from_secs(30));
    let survivor_deliveries = s
        .probe
        .deliveries()
        .iter()
        .filter(|d| d.by == s.pids[4] && d.at > Time::from_secs(10))
        .count();
    assert!(
        survivor_deliveries > 150,
        "survivor kept processing: {survivor_deliveries}"
    );
}

#[test]
fn sensor_crash_is_survived_and_resumed() {
    // Sensor failures (battery drain, unplugging) simply stop events;
    // the platform keeps running and resumes when the sensor returns.
    let mut s = standard_home(Delivery::Gapless, 6, Duration::from_secs(2));
    let sensor_actor = s.home.sensors[0].1;
    s.net.crash_at(sensor_actor, Time::from_secs(10));
    s.net.recover_at(sensor_actor, Time::from_secs(20));
    s.net.run_until(Time::from_secs(30));
    let deliveries = s.probe.deliveries();
    let during: usize = deliveries
        .iter()
        .filter(|d| d.at > Time::from_secs(11) && d.at < Time::from_secs(20))
        .count();
    let after: usize = deliveries
        .iter()
        .filter(|d| d.at > Time::from_secs(21))
        .count();
    assert_eq!(during, 0, "a dead sensor reports nothing");
    assert!(after > 50, "events resume after sensor recovery: {after}");
}
