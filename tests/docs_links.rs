//! Documentation link checker: every intra-repo markdown link in the
//! top-level docs must resolve, and every `DESIGN.md §X.Y` prose
//! reference must name a section that actually exists.
//!
//! Three checks over each tracked top-level `*.md` file:
//!
//! 1. `[text](relative/path)` targets exist on disk (external
//!    `http(s)://` links and pure in-page `#anchors` are exempt from
//!    the existence check);
//! 2. `[text](file.md#anchor)` anchors match a real heading of the
//!    target file under GitHub's slugging rules;
//! 3. `§X.Y` references to DESIGN.md sections (in any doc) match a
//!    `## X.Y ...` / `### X.Y ...` heading in DESIGN.md.
//!
//! CI runs this as the `docs-links` step, so a renamed heading or a
//! deleted section breaks the build instead of silently going stale.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The top-level docs under link discipline. `ISSUE.md`, `CHANGES.md`,
/// `PAPERS.md`, and `SNIPPETS.md` are driver-/session-managed scratch
/// and exempt.
const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "OBSERVABILITY.md",
    "ROADMAP.md",
    "CHANGELOG.md",
    "PAPER.md",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// GitHub's heading→anchor slug: lowercase, spaces→dashes, strip
/// everything that is not alphanumeric, dash, or underscore.
fn github_slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() || c == '_' {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// All anchors a markdown file exposes (its heading slugs, with
/// GitHub's `-1`, `-2`, … dedup suffixes).
fn anchors_of(path: &Path) -> BTreeSet<String> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut seen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut anchors = BTreeSet::new();
    let mut in_code = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_code = !in_code;
            continue;
        }
        if in_code || !line.starts_with('#') {
            continue;
        }
        let heading = line.trim_start_matches('#');
        if !heading.starts_with(' ') {
            continue;
        }
        let slug = github_slug(heading);
        let n = seen.entry(slug.clone()).or_insert(0);
        anchors.insert(if *n == 0 {
            slug.clone()
        } else {
            format!("{slug}-{n}")
        });
        *n += 1;
    }
    anchors
}

/// Extracts `(link_target, line_number)` pairs from inline markdown
/// links, skipping fenced code blocks and inline code spans.
fn links_of(text: &str) -> Vec<(String, usize)> {
    let mut links = Vec::new();
    let mut in_code = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_code = !in_code;
            continue;
        }
        if in_code {
            continue;
        }
        // Strip inline code spans so `[x](y)` inside backticks is not
        // treated as a link.
        let mut cleaned = String::with_capacity(line.len());
        let mut in_span = false;
        for c in line.chars() {
            if c == '`' {
                in_span = !in_span;
            } else if !in_span {
                cleaned.push(c);
            }
        }
        let bytes = cleaned.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'(' && i > 0 && bytes[i - 1] == b']' {
                if let Some(close) = cleaned[i + 1..].find(')') {
                    let target = cleaned[i + 1..i + 1 + close].trim();
                    // `[x](y "title")` → strip the title part.
                    let target = target.split_whitespace().next().unwrap_or("");
                    if !target.is_empty() {
                        links.push((target.to_owned(), lineno + 1));
                    }
                    i += close + 1;
                }
            }
            i += 1;
        }
    }
    links
}

#[test]
fn intra_repo_links_resolve() {
    let root = repo_root();
    let mut errors = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        for (target, line) in links_of(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (file_part, anchor) = match target.split_once('#') {
                Some((f, a)) => (f, Some(a)),
                None => (target.as_str(), None),
            };
            let target_path = if file_part.is_empty() {
                path.clone()
            } else {
                root.join(file_part)
            };
            if !target_path.exists() {
                errors.push(format!(
                    "{doc}:{line}: link target `{file_part}` does not exist"
                ));
                continue;
            }
            if let Some(anchor) = anchor {
                if target_path.extension().is_some_and(|e| e == "md") {
                    let anchors = anchors_of(&target_path);
                    if !anchors.contains(anchor) {
                        errors.push(format!(
                            "{doc}:{line}: anchor `#{anchor}` not found in `{}`",
                            target_path.file_name().unwrap().to_string_lossy()
                        ));
                    }
                }
            }
        }
    }
    assert!(
        errors.is_empty(),
        "broken doc links:\n{}",
        errors.join("\n")
    );
}

/// Section numbers DESIGN.md actually defines (`## 4.2 ...` → "4.2").
fn design_sections(root: &Path) -> BTreeSet<String> {
    let text = std::fs::read_to_string(root.join("DESIGN.md")).expect("read DESIGN.md");
    let mut sections = BTreeSet::new();
    let mut in_code = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_code = !in_code;
            continue;
        }
        if in_code || !line.starts_with('#') {
            continue;
        }
        let heading = line.trim_start_matches('#').trim_start();
        let number: String = heading
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        let number = number.trim_end_matches('.');
        if !number.is_empty() {
            sections.insert(number.to_owned());
        }
    }
    sections
}

#[test]
fn design_section_references_exist() {
    let root = repo_root();
    let sections = design_sections(&root);
    assert!(
        sections.contains("4.7"),
        "DESIGN.md must define §4.7 (routine state machine & ledger)"
    );
    let mut errors = Vec::new();
    for doc in DOCS {
        let text =
            std::fs::read_to_string(root.join(doc)).unwrap_or_else(|e| panic!("read {doc}: {e}"));
        for (lineno, line) in text.lines().enumerate() {
            // A `§X.Y` in any top-level doc refers to DESIGN.md's own
            // numbering unless it cites the paper explicitly.
            if line.contains("paper") || line.contains("Paper") || line.contains("§8") {
                continue;
            }
            let mut rest = line;
            while let Some(at) = rest.find('§') {
                rest = &rest[at + '§'.len_utf8()..];
                let number: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '.')
                    .collect();
                let number = number.trim_end_matches('.').to_owned();
                if !number.is_empty() && !sections.contains(&number) {
                    errors.push(format!(
                        "{doc}:{}: §{number} does not match any DESIGN.md heading",
                        lineno + 1
                    ));
                }
            }
        }
    }
    assert!(
        errors.is_empty(),
        "stale DESIGN.md section references:\n{}",
        errors.join("\n")
    );
}
