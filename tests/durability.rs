//! End-to-end durability tests: every process journals Gapless
//! deliveries to a write-ahead log, survives a simulated power loss
//! (actor crash *plus* disk losing its unsynced tail), and recovers its
//! event store and processed watermarks from the log.

use rivulet::core::app::{AppBuilder, CombinedWindows, CombinerSpec, OpCtx, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::{Home, HomeBuilder};
use rivulet::core::probe::{AppProbe, StoreProbe};
use rivulet::core::RivuletConfig;
use rivulet::devices::sensor::{EmissionProbe, EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::storage::{FlushPolicy, SimBackend, StorageBackend, WalOptions};
use rivulet::types::{ActuationState, AppId, Duration, EventKind, ProcessId, Time};
use std::sync::Arc;

struct Setup {
    net: SimNet,
    home: Home,
    probe: Arc<AppProbe>,
    store_probe: Arc<StoreProbe>,
    emissions: Arc<EmissionProbe>,
    pids: Vec<ProcessId>,
    backends: Vec<Arc<SimBackend>>,
}

/// The `failover.rs` standard home (five hosts, one Gapless sensor at
/// 10 ev/s, app anchored at host 0) with a per-process simulated disk.
fn durable_home(seed: u64, policy: FlushPolicy, config: RivuletConfig) -> Setup {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let pids: Vec<ProcessId> = (0..5).map(|i| home.add_host(format!("host{i}"))).collect();
    let backends: Vec<Arc<SimBackend>> = (0..5)
        .map(|i| Arc::new(SimBackend::new(seed.wrapping_mul(31).wrapping_add(i))))
        .collect();
    let for_factory = backends.clone();
    let mut home = home.with_storage(
        WalOptions {
            flush_policy: policy,
            segment_max_bytes: 64 * 1024,
        },
        Duration::from_secs(5),
        move |pid: ProcessId| {
            Arc::clone(&for_factory[pid.as_u32() as usize]) as Arc<dyn StorageBackend>
        },
    );
    let store_probe = home.with_store_probe();
    let (sensor, emissions) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(100)),
        &pids,
    );
    let (anchor, _) = home.add_actuator("anchor", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "activity")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut OpCtx, _: &CombinedWindows| {},
        )
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();
    Setup {
        net,
        home,
        probe,
        store_probe,
        emissions,
        pids,
        backends,
    }
}

/// Crashes the active process at 24s together with its disk's unsynced
/// tail, recovers it at 30s, and checks the home still delivered
/// (essentially) every emitted event, across several seeds.
#[test]
fn gapless_survives_power_loss_of_the_active_process() {
    for seed in [1u64, 2, 3] {
        let mut s = durable_home(seed, FlushPolicy::EveryN(4), RivuletConfig::default());
        let h0 = s.home.actor_of(s.pids[0]);
        s.net.crash_at(h0, Time::from_secs(24));
        s.net.run_until(Time::from_millis(24_100));
        // The actor is down; now the power loss hits the disk too.
        s.backends[0].crash();
        s.net.recover_at(h0, Time::from_secs(30));
        s.net.run_until(Time::from_secs(55));

        let (appends, syncs, _) = s.backends[0].op_counts();
        assert!(
            appends > 0 && syncs > 0,
            "seed {seed}: the WAL was exercised"
        );
        let lost = s.emissions.emitted() as i64 - s.probe.unique_delivered() as i64;
        // Margin: the final group-commit batch (up to 3 events under
        // EveryN(4)) plus one in-flight ring hop may still be pending
        // when the run is cut off.
        assert!(
            lost <= 5,
            "seed {seed}: gapless with durability lost {lost} events"
        );
    }
}

/// A crashed *shadow* recovers its store from the WAL alone: with
/// anti-entropy disabled, nobody will re-send pre-crash events, so
/// whatever the store holds right after recovery came off the log.
/// Meanwhile the active process never wavers, so the delivered stream
/// has no gaps and no duplicates at all.
#[test]
fn shadow_recovers_store_from_wal_without_anti_entropy() {
    for seed in [1u64, 2, 3] {
        let config = RivuletConfig::default().with_anti_entropy(false);
        let mut s = durable_home(seed, FlushPolicy::EveryN(4), config);
        let h4 = s.home.actor_of(s.pids[4]);
        s.net.crash_at(h4, Time::from_secs(20));
        s.net.run_until(Time::from_millis(20_100));
        s.backends[4].crash();
        s.net.recover_at(h4, Time::from_secs(25));
        s.net.run_until(Time::from_secs(40));

        // Leadership never moved: exactly one promotion (p0 at start).
        let promotions = s
            .probe
            .transitions()
            .iter()
            .filter(|(_, _, active)| *active)
            .count();
        assert_eq!(
            promotions, 1,
            "seed {seed}: a shadow crash must not trigger failover"
        );

        // The app saw each event exactly once.
        assert_eq!(
            s.probe.deliveries().len(),
            s.probe.unique_delivered(),
            "seed {seed}: duplicate deliveries"
        );

        // p4's first store sample after recovery already holds the bulk
        // of the pre-crash events (≈200 emitted by t=20s), straight
        // from the log.
        let first_after = s
            .store_probe
            .samples()
            .into_iter()
            .find(|(at, p, _)| *p == s.pids[4] && *at >= Time::from_secs(25))
            .map(|(_, _, len)| len)
            .expect("p4 ticked after recovery");
        assert!(
            first_after >= 100,
            "seed {seed}: store not restored from WAL, only {first_after} events"
        );
    }
}

/// The same seed reproduces the same run bit-for-bit, all the way down
/// to the bytes on every process's disk after a crash and recovery.
#[test]
fn same_seed_runs_leave_byte_identical_logs() {
    let run = || {
        let mut s = durable_home(7, FlushPolicy::EveryN(4), RivuletConfig::default());
        let h0 = s.home.actor_of(s.pids[0]);
        s.net.crash_at(h0, Time::from_secs(24));
        s.net.run_until(Time::from_millis(24_100));
        s.backends[0].crash();
        s.net.recover_at(h0, Time::from_secs(30));
        s.net.run_until(Time::from_secs(40));
        s.backends
            .iter()
            .map(|be| {
                be.list_segments()
                    .expect("list")
                    .into_iter()
                    .map(|id| (id, be.read_segment(id).expect("read")))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same-seed runs diverged on disk");
}

/// Events from a sensor no app subscribes to must not take up residence
/// in the event store (the store is a cache over the log, not a
/// landfill): residency stays bounded by the GC straggler horizon of
/// the *subscribed* sensor regardless of how much dead traffic flows.
#[test]
fn store_residency_is_bounded_with_unsubscribed_traffic() {
    let mut net = SimNet::new(SimConfig::with_seed(11));
    let mut home = HomeBuilder::new(&mut net);
    let pids: Vec<ProcessId> = (0..5).map(|i| home.add_host(format!("host{i}"))).collect();
    let store_probe = home.with_store_probe();
    let (sensor, _) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(100)),
        &pids,
    );
    // Same rate, but no app ever subscribes to this one.
    let (_lonely, lonely_emissions) = home.add_push_sensor(
        "lonely",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(100)),
        &pids,
    );
    let (anchor, _) = home.add_actuator("anchor", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "activity")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut OpCtx, _: &CombinedWindows| {},
        )
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let _probe = home.add_app(app);
    let _home = home.build();
    net.run_until(Time::from_secs(90));

    assert!(
        lonely_emissions.emitted() > 800,
        "the dead sensor kept emitting"
    );
    // Subscribed sensor: ≤ ~300 events inside the 30 s GC horizon plus
    // straggler slack. If unsubscribed events were retained, residency
    // would be over 1100 by now (they are never processed, so GC could
    // never collect them).
    let max = store_probe.max_len();
    assert!(
        max <= 400,
        "store residency unbounded: {max} events resident"
    );
}
