//! System-level property tests: whole simulated deployments driven by
//! randomized fault schedules, checking the paper's core guarantees.

use proptest::prelude::*;
use rivulet::core::app::{AppBuilder, CombinedWindows, CombinerSpec, OpCtx, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::core::RivuletConfig;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, Duration, EventKind, Time};

/// One randomized run: n processes, random receiver subset, random
/// loss, random crash/recover of a non-app process. Returns
/// (emitted, unique delivered, duplicate deliveries under no-failure).
fn run_home(
    seed: u64,
    n_processes: usize,
    receiver_mask: u8,
    loss_pct: u8,
    crash_receiver: bool,
    delivery: Delivery,
) -> (u64, usize, usize) {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    let config = RivuletConfig::default();
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let pids: Vec<_> = (0..n_processes)
        .map(|i| home.add_host(format!("h{i}")))
        .collect();
    // Receivers: non-empty subset of non-app processes derived from the mask.
    let mut receivers: Vec<_> = pids
        .iter()
        .skip(1)
        .enumerate()
        .filter(|(i, _)| receiver_mask & (1 << i) != 0)
        .map(|(_, p)| *p)
        .collect();
    if receivers.is_empty() {
        receivers.push(pids[n_processes - 1]);
    }
    let (sensor, emissions) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(250)),
        &receivers,
    );
    let (anchor, _) = home.add_actuator("a", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "sink")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut OpCtx, _: &CombinedWindows| {},
        )
        .sensor(sensor, delivery, WindowSpec::count(1))
        .actuator(anchor, delivery)
        .done()
        .build()
        .unwrap();
    let probe = home.add_app(app);
    let home = home.build();

    if loss_pct > 0 {
        let device = home.sensor_actor(sensor);
        for r in &receivers {
            net.topology_mut().set_loss(
                device,
                home.actor_of(*r),
                f64::from(loss_pct.min(90)) / 100.0,
            );
        }
    }
    if crash_receiver && n_processes > 2 {
        // Crash one receiver (never the app host) mid-run, recover later.
        let victim = receivers[0];
        net.crash_at(home.actor_of(victim), Time::from_secs(5));
        net.recover_at(home.actor_of(victim), Time::from_secs(12));
    }
    net.run_until(Time::from_secs(20));

    let deliveries = probe.deliveries();
    let dupes = deliveries.len() - probe.unique_delivered();
    (emissions.emitted(), probe.unique_delivered(), dupes)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // whole-home simulations are heavy
        .. ProptestConfig::default()
    })]

    /// Gapless post-ingest guarantee: with more than one independent
    /// receiver and moderate loss, delivery percentage must beat the
    /// single-link survival rate (and never exceed emitted).
    #[test]
    fn gapless_beats_single_link_survival(
        seed in 0u64..1_000,
        loss_pct in 10u8..50,
        mask in 3u8..15, // at least two receivers
    ) {
        prop_assume!(mask.count_ones() >= 2);
        let (emitted, delivered, _) =
            run_home(seed, 5, mask, loss_pct, false, Delivery::Gapless);
        prop_assert!(delivered as u64 <= emitted);
        let m = mask.count_ones();
        let p = f64::from(loss_pct) / 100.0;
        let single = 1.0 - p;
        let multi = 1.0 - p.powi(m as i32);
        let fraction = delivered as f64 / emitted as f64;
        // Expected ≈ multi; must clearly exceed the single-link rate
        // (allow sampling noise on ~80 events).
        prop_assert!(
            fraction > single - 0.12,
            "fraction {fraction:.3} vs single-link {single:.3} (m={m})"
        );
        prop_assert!(fraction < multi + 0.10, "fraction above the ingest ceiling");
    }

    /// Failure-free runs deliver exactly once: no duplicates, no losses
    /// (modulo in-flight tail events).
    #[test]
    fn failure_free_is_exactly_once(
        seed in 0u64..1_000,
        n in 2usize..6,
        mask in 1u8..15,
        delivery_gapless in any::<bool>(),
    ) {
        let delivery = if delivery_gapless { Delivery::Gapless } else { Delivery::Gap };
        let (emitted, delivered, dupes) = run_home(seed, n, mask, 0, false, delivery);
        prop_assert_eq!(dupes, 0, "no duplicate processing without failures");
        prop_assert!(
            emitted - (delivered as u64) <= 1,
            "lost {} of {emitted}",
            emitted - delivered as u64
        );
    }

    /// A receiver crash-recovery never loses Gapless events as long as
    /// another receiver stays up.
    #[test]
    fn gapless_survives_receiver_churn(
        seed in 0u64..1_000,
        mask in 3u8..15,
    ) {
        prop_assume!(mask.count_ones() >= 2);
        let (emitted, delivered, _) =
            run_home(seed, 5, mask, 0, true, Delivery::Gapless);
        prop_assert!(
            emitted - (delivered as u64) <= 1,
            "lost {} of {emitted}",
            emitted - delivered as u64
        );
    }
}
