//! Integration tests for the round-3 hot-path optimizations: the
//! SPSC delivery→execution ring, the event-payload arena, and
//! adaptive WAL gating. Each knob must change *how* events move
//! through a process, never *what* gets delivered — and a seeded run
//! must stay fully deterministic with all of them enabled (the
//! defaults).
//!
//! Note the comparison across ring on/off is over the delivered event
//! *set*, not the full trace: deferring deliveries to the post-loop
//! ring drain reorders outbox entries relative to app output, so
//! message interleavings (and therefore delivery micros) may differ
//! between configurations. Within one configuration, same-seed runs
//! are byte-identical.

use rivulet::core::app::{AppBuilder, CombinedWindows, CombinerSpec, OpCtx, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::{Home, HomeBuilder};
use rivulet::core::probe::AppProbe;
use rivulet::core::RivuletConfig;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::storage::{FlushPolicy, SimBackend, StorageBackend, WalOptions};
use rivulet::types::{ActuationState, AppId, Duration, EventKind, ProcessId, SensorId, Time};
use std::sync::Arc;

struct Setup {
    net: SimNet,
    home: Home,
    probe: Arc<AppProbe>,
    sensor: SensorId,
    pids: Vec<ProcessId>,
}

fn noop() -> impl Fn(&mut OpCtx, &CombinedWindows) + Send + Sync {
    |_: &mut OpCtx, _: &CombinedWindows| {}
}

/// Three hosts; a scripted door sensor with 512-byte payloads heard by
/// hosts 1 and 2; app anchored at host 0. Blob payloads matter here:
/// they arrive as zero-copy views into network frames, which is what
/// the arena re-homes.
fn scripted_home(script: Vec<Time>, config: RivuletConfig, seed: u64) -> Setup {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let pids: Vec<ProcessId> = ["hub", "tv", "fridge"]
        .iter()
        .map(|n| home.add_host(*n))
        .collect();
    let (sensor, _) = home.add_push_sensor(
        "door",
        PayloadSpec::Blob {
            kind: EventKind::DoorOpen,
            len: 512,
        },
        EmissionSchedule::Script(script),
        &[pids[1], pids[2]],
    );
    let (anchor, _) = home.add_actuator("anchor", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "trace")
        .operator("sink", CombinerSpec::Any, noop())
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();
    Setup {
        net,
        home,
        probe,
        sensor,
        pids,
    }
}

fn delivered_seqs(probe: &AppProbe) -> Vec<u64> {
    let mut seqs: Vec<u64> = probe
        .deliveries()
        .iter()
        .map(|d| d.event.seq)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    seqs.sort_unstable();
    seqs
}

/// A faulty run: one receiver link drops an event and the tv process
/// crashes and recovers mid-stream, exercising ring forwarding,
/// anti-entropy sync, and retransmission — the paths that feed the
/// execution ring and arena. Returns (delivered seqs, unique count).
fn faulty_run(config: RivuletConfig, seed: u64) -> (Vec<u64>, usize) {
    let script: Vec<Time> = (1..=25).map(|i| Time::from_millis(400 * i)).collect();
    let mut s = scripted_home(script, config, seed);
    let dev = s.home.sensor_actor(s.sensor);
    let tv = s.home.actor_of(s.pids[1]);
    s.net
        .set_blocked_at(Time::from_millis(1_900), dev, tv, true);
    s.net
        .set_blocked_at(Time::from_millis(2_100), dev, tv, false);
    s.net.crash_at(tv, Time::from_secs(4));
    s.net.recover_at(tv, Time::from_secs(8));
    s.net.run_until(Time::from_secs(16));
    (delivered_seqs(&s.probe), s.probe.unique_delivered())
}

#[test]
fn exec_ring_on_and_off_deliver_identical_sets() {
    let on = faulty_run(RivuletConfig::default().with_exec_ring(true), 21);
    let off = faulty_run(RivuletConfig::default().with_exec_ring(false), 21);
    assert_eq!(on.0, off.0, "delivered event sets must match");
    assert_eq!(on.1, off.1);
    assert!(!on.0.is_empty(), "the run delivered something");
}

#[test]
fn payload_arena_on_and_off_deliver_identical_sets() {
    let on = faulty_run(RivuletConfig::default().with_payload_arena(true), 23);
    let off = faulty_run(RivuletConfig::default().with_payload_arena(false), 23);
    assert_eq!(on.0, off.0, "delivered event sets must match");
    assert_eq!(on.1, off.1);
}

#[test]
fn ring_and_arena_both_off_match_both_on() {
    // The full round-3 bundle against the PR 6 configuration.
    let on = faulty_run(
        RivuletConfig::default()
            .with_exec_ring(true)
            .with_payload_arena(true),
        27,
    );
    let off = faulty_run(
        RivuletConfig::default()
            .with_exec_ring(false)
            .with_payload_arena(false),
        27,
    );
    assert_eq!(on.0, off.0, "delivered event sets must match");
    assert_eq!(on.1, off.1);
}

#[test]
fn seeded_run_with_round3_defaults_is_byte_identical() {
    // Full determinism with ring + arena + adaptive gating enabled
    // (the defaults): two same-seed runs must agree on every delivery
    // timestamp and every network counter, not just the delivered set.
    let trace = |seed: u64| {
        let script: Vec<Time> = (1..=15).map(|i| Time::from_millis(600 * i)).collect();
        let mut s = scripted_home(script, RivuletConfig::default(), seed);
        let dev = s.home.sensor_actor(s.sensor);
        let tv = s.home.actor_of(s.pids[1]);
        s.net.topology_mut().set_loss(dev, tv, 0.3);
        s.net.crash_at(tv, Time::from_secs(5));
        s.net.recover_at(tv, Time::from_secs(9));
        s.net.run_until(Time::from_secs(14));
        let deliveries: Vec<(Time, ProcessId, u64)> = s
            .probe
            .deliveries()
            .iter()
            .map(|d| (d.at, d.by, d.event.seq))
            .collect();
        let m = s.net.metrics();
        (deliveries, m.messages_sent, m.wifi_bytes)
    };
    assert_eq!(trace(99), trace(99));
}

/// A durable home (per-process WAL on a simulated disk) for the
/// adaptive-gating twin: the gate only matters when deliveries gate
/// behind WAL appends.
fn durable_run(config: RivuletConfig, seed: u64) -> (Vec<u64>, usize) {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let pids: Vec<ProcessId> = (0..3).map(|i| home.add_host(format!("host{i}"))).collect();
    let backends: Vec<Arc<SimBackend>> = (0..3)
        .map(|i| Arc::new(SimBackend::new(seed.wrapping_mul(31).wrapping_add(i))))
        .collect();
    let mut home = home.with_storage(
        WalOptions {
            flush_policy: FlushPolicy::EveryN(8),
            segment_max_bytes: 64 * 1024,
        },
        Duration::from_secs(5),
        move |pid: ProcessId| {
            Arc::clone(&backends[pid.as_u32() as usize]) as Arc<dyn StorageBackend>
        },
    );
    let (sensor, _) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(100)),
        &pids,
    );
    let (anchor, _) = home.add_actuator("anchor", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "activity")
        .operator("sink", CombinerSpec::Any, noop())
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let _home = home.build();
    net.run_until(Time::from_secs(20));
    (delivered_seqs(&probe), probe.unique_delivered())
}

#[test]
fn adaptive_gating_on_and_off_deliver_identical_sets() {
    let adaptive = durable_run(RivuletConfig::default().with_wal_adaptive_gating(true), 31);
    let fixed = durable_run(RivuletConfig::default().with_wal_adaptive_gating(false), 31);
    assert_eq!(adaptive.0, fixed.0, "delivered event sets must match");
    assert_eq!(adaptive.1, fixed.1);
    assert!(!adaptive.0.is_empty());
}

#[test]
fn defaults_enable_the_round3_optimizations() {
    let config = RivuletConfig::default();
    assert!(config.exec_ring);
    assert!(config.payload_arena);
    assert!(config.wal_adaptive_gating);
    assert!(config.exec_ring_capacity > 0);
}
