//! Integration tests for encode-once fan-out, frame coalescing, and
//! cumulative acks: the optimizations must change *how many* network
//! messages carry the protocol, never *what* gets delivered — and a
//! seeded run must stay fully deterministic with them enabled.

use rivulet::core::app::{AppBuilder, CombinedWindows, CombinerSpec, OpCtx, WindowSpec};
use rivulet::core::config::AckMode;
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::{Home, HomeBuilder};
use rivulet::core::probe::AppProbe;
use rivulet::core::RivuletConfig;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, EventKind, ProcessId, SensorId, Time};
use std::sync::Arc;

struct Setup {
    net: SimNet,
    home: Home,
    probe: Arc<AppProbe>,
    sensor: SensorId,
    pids: Vec<ProcessId>,
}

fn noop() -> impl Fn(&mut OpCtx, &CombinedWindows) + Send + Sync {
    |_: &mut OpCtx, _: &CombinedWindows| {}
}

/// Three hosts; a scripted door sensor heard by hosts 1 and 2; app
/// anchored at host 0 (same shape as the delivery-semantics tests).
fn scripted_home(script: Vec<Time>, config: RivuletConfig, seed: u64) -> Setup {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let pids: Vec<ProcessId> = ["hub", "tv", "fridge"]
        .iter()
        .map(|n| home.add_host(*n))
        .collect();
    let (sensor, _) = home.add_push_sensor(
        "door",
        PayloadSpec::KindOnly(EventKind::DoorOpen),
        EmissionSchedule::Script(script),
        &[pids[1], pids[2]],
    );
    let (anchor, _) = home.add_actuator("anchor", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "trace")
        .operator("sink", CombinerSpec::Any, noop())
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();
    Setup {
        net,
        home,
        probe,
        sensor,
        pids,
    }
}

fn delivered_seqs(probe: &AppProbe) -> Vec<u64> {
    let mut seqs: Vec<u64> = probe
        .deliveries()
        .iter()
        .map(|d| d.event.seq)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    seqs.sort_unstable();
    seqs
}

/// A faulty run: one receiver link drops an event, and the tv process
/// crashes and recovers mid-stream, exercising ring forwarding,
/// anti-entropy sync, and retransmission alongside steady-state
/// keep-alive traffic.
fn faulty_run(config: RivuletConfig, seed: u64) -> (Vec<u64>, usize, u64, u64) {
    // Returns (delivered seqs, unique delivered, messages sent, frames coalesced).
    let script: Vec<Time> = (1..=25).map(|i| Time::from_millis(400 * i)).collect();
    let mut s = scripted_home(script, config, seed);
    let dev = s.home.sensor_actor(s.sensor);
    let tv = s.home.actor_of(s.pids[1]);
    s.net
        .set_blocked_at(Time::from_millis(1_900), dev, tv, true);
    s.net
        .set_blocked_at(Time::from_millis(2_100), dev, tv, false);
    s.net.crash_at(tv, Time::from_secs(4));
    s.net.recover_at(tv, Time::from_secs(8));
    s.net.run_until(Time::from_secs(16));
    (
        delivered_seqs(&s.probe),
        s.probe.unique_delivered(),
        s.net.metrics().messages_sent,
        s.net.metrics().fanout.snapshot().frames_coalesced,
    )
}

#[test]
fn coalescing_on_and_off_deliver_identical_semantics() {
    // Coalescing changes message sizes (and therefore arrival micros),
    // so the comparison is semantic: the set of delivered events must
    // be identical; only the message count may shrink.
    let on = faulty_run(RivuletConfig::default().with_coalescing(true), 11);
    let off = faulty_run(RivuletConfig::default().with_coalescing(false), 11);
    assert_eq!(on.0, off.0, "delivered event sets must match");
    assert_eq!(on.1, off.1);
    assert!(
        on.3 > 0 && off.3 == 0,
        "coalescing on emitted {} frames, off {}",
        on.3,
        off.3
    );
    assert!(
        on.2 < off.2,
        "coalescing should reduce messages: on {} vs off {}",
        on.2,
        off.2
    );
}

#[test]
fn cumulative_and_per_event_acks_deliver_identical_semantics() {
    let cumulative = faulty_run(
        RivuletConfig::default().with_ack_mode(AckMode::Cumulative),
        13,
    );
    let per_event = faulty_run(
        RivuletConfig::default().with_ack_mode(AckMode::PerEvent),
        13,
    );
    assert_eq!(cumulative.0, per_event.0, "delivered event sets must match");
    assert_eq!(cumulative.1, per_event.1);
}

#[test]
fn seeded_run_with_coalescing_is_byte_identical() {
    // Full determinism with the optimizations enabled (the defaults):
    // two same-seed runs must agree on every delivery timestamp and
    // every counter, not just the delivered set.
    let trace = |seed: u64| {
        let script: Vec<Time> = (1..=15).map(|i| Time::from_millis(600 * i)).collect();
        let mut s = scripted_home(script, RivuletConfig::default(), seed);
        let dev = s.home.sensor_actor(s.sensor);
        let tv = s.home.actor_of(s.pids[1]);
        s.net.topology_mut().set_loss(dev, tv, 0.3);
        s.net.crash_at(tv, Time::from_secs(5));
        s.net.recover_at(tv, Time::from_secs(9));
        s.net.run_until(Time::from_secs(14));
        let deliveries: Vec<(Time, ProcessId, u64)> = s
            .probe
            .deliveries()
            .iter()
            .map(|d| (d.at, d.by, d.event.seq))
            .collect();
        let m = s.net.metrics();
        (
            deliveries,
            m.messages_sent,
            m.wifi_bytes,
            m.fanout.snapshot(),
        )
    };
    assert_eq!(trace(99), trace(99));
}

#[test]
fn defaults_enable_the_optimizations() {
    let config = RivuletConfig::default();
    assert!(config.coalescing);
    assert_eq!(config.ack_mode, AckMode::Cumulative);
}
