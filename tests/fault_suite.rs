//! Device-fault injection & self-healing suite.
//!
//! Three contracts, end to end:
//!
//! 1. **Toggle invariance** — attaching a rate-0 [`FaultPlan`] and/or
//!    enabling the repair layer on a clean run changes *nothing*: the
//!    full delivery trace and the exported `ObsSnapshot` JSON are
//!    byte-identical to a seed-matched baseline (the pattern of
//!    `tests/hot_path_round3.rs`).
//! 2. **Reproducibility** — a faulty run is a pure function of its
//!    seed: same `(seed, kind, rate, repair)` twice → identical
//!    outcome fields and byte-identical obs JSON.
//! 3. **Correctness floors** — at a fixed fault rate, switching the
//!    repair layer on never lowers delivery correctness for any fault
//!    kind, strictly raises it for stuck/flapping/drift/ghost, and a
//!    quarantined ghost-storming sensor stops contributing events.
//!
//! The runs here reuse the `rivulet-bench` fault harness, so every
//! asserted number is the same one `BENCH_fault.json` commits.

use rivulet::core::app::{AppBuilder, CombinedWindows, CombinerSpec, OpCtx, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::{Home, HomeBuilder};
use rivulet::core::RivuletConfig;
use rivulet::devices::fault::{FaultKind, FaultPlan, FaultSpec};
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::devices::value::ValueModel;
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, Duration, ProcessId, Time};
use rivulet_bench::fault::{run_fault, run_repoll, FaultOutcome, FaultScenario};

fn noop() -> impl Fn(&mut OpCtx, &CombinedWindows) + Send + Sync {
    |_: &mut OpCtx, _: &CombinedWindows| {}
}

/// One delivery as `(at, by, seq, value bits)` — bit-comparable.
type TraceEntry = (Time, ProcessId, u64, Option<u64>);

/// A three-host home with three redundant scalar (sine) sensors and an
/// FT operator — the shape where the repair layer's detectors actually
/// observe values — optionally wrapped in a fault plan. Returns the
/// full delivery trace plus the obs JSON export.
fn scalar_trace(plan: Option<FaultPlan>, repair: bool, seed: u64) -> (Vec<TraceEntry>, String) {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    net.recorder().set_enabled(true);
    let config = RivuletConfig::default().with_repair(repair);
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let hosts: Vec<ProcessId> = (0..3).map(|i| home.add_host(format!("host{i}"))).collect();
    let model = ValueModel::Sine {
        base: 21.0,
        amplitude: 5.0,
        period_secs: 120.0,
    };
    let mut sensors = Vec::new();
    for i in 0..3 {
        let (id, _) = home.add_push_sensor(
            format!("thermo{i}"),
            PayloadSpec::Scalar(model.clone()),
            EmissionSchedule::Periodic(Duration::from_secs(1)),
            &hosts,
        );
        sensors.push(id);
    }
    let (anchor, _) = home.add_actuator("anchor", ActuationState::Switch(false), &[hosts[0]]);
    let mut op = AppBuilder::new(AppId(1), "ft").operator(
        "Average",
        CombinerSpec::FaultTolerant { tolerate: 1 },
        noop(),
    );
    for s in &sensors {
        op = op.sensor(*s, Delivery::Gapless, WindowSpec::count(1));
    }
    let app = op
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    if let Some(plan) = plan {
        home = home.with_faults(plan);
    }
    let _home: Home = home.build();
    net.run_until(Time::from_secs(60));

    let trace: Vec<(Time, ProcessId, u64, Option<u64>)> = probe
        .deliveries()
        .iter()
        .map(|d| (d.at, d.by, d.event.seq, d.value.map(f64::to_bits)))
        .collect();
    (trace, net.obs_snapshot().to_json())
}

/// A rate-0 plan still *wraps* every device in its fault shim; nothing
/// may leak from the wrapping itself.
fn rate_zero_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(7);
    for (i, kind) in FaultKind::ALL.iter().enumerate() {
        plan = plan.sensor(
            rivulet::types::SensorId(i as u32 % 3),
            FaultSpec::new(*kind, 0.0),
        );
    }
    plan
}

#[test]
fn rate_zero_fault_plan_is_byte_invariant() {
    let baseline = scalar_trace(None, false, 7);
    let planned = scalar_trace(Some(rate_zero_plan()), false, 7);
    assert!(!baseline.0.is_empty(), "the run delivered something");
    assert_eq!(
        baseline.0, planned.0,
        "rate-0 plan must not perturb the delivery trace"
    );
    assert_eq!(
        baseline.1, planned.1,
        "rate-0 plan must not perturb the obs JSON"
    );
}

#[test]
fn repair_toggle_on_a_clean_run_is_byte_invariant() {
    let off = scalar_trace(None, false, 7);
    let on = scalar_trace(None, true, 7);
    assert_eq!(
        off.0, on.0,
        "repair on a clean run must not perturb the delivery trace"
    );
    assert_eq!(
        off.1, on.1,
        "repair on a clean run must not perturb the obs JSON"
    );
    // And both toggles together against the same baseline.
    let both = scalar_trace(Some(rate_zero_plan()), true, 7);
    assert_eq!(off.0, both.0);
    assert_eq!(off.1, both.1);
}

#[test]
fn faulty_runs_are_reproducible_from_their_seed() {
    let cfg = FaultScenario::new(FaultKind::Flapping, 0.5, true);
    let a = run_fault(&cfg);
    let b = run_fault(&cfg);
    assert_eq!(a.emitted, b.emitted);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.correct, b.correct);
    assert_eq!(a.ghosts_injected, b.ghosts_injected);
    assert_eq!(a.suppressed, b.suppressed);
    assert_eq!(
        a.obs.to_json(),
        b.obs.to_json(),
        "same seed must export byte-identical obs JSON"
    );
    assert!(a.delivered > 0, "the faulty run still delivered");
}

/// Runs one kind at the given rate with repair off and on.
fn off_on(kind: FaultKind, rate: f64) -> (FaultOutcome, FaultOutcome) {
    let off = run_fault(&FaultScenario::new(kind, rate, false));
    let on = run_fault(&FaultScenario::new(kind, rate, true));
    (off, on)
}

#[test]
fn repair_never_lowers_correctness_for_any_fault_kind() {
    for kind in FaultKind::ALL {
        let (off, on) = off_on(kind, 0.5);
        assert!(
            on.correctness() >= off.correctness(),
            "{kind:?}: repair on {:.4} < off {:.4}",
            on.correctness(),
            off.correctness()
        );
    }
}

#[test]
fn repair_strictly_improves_value_fault_correctness() {
    for kind in [FaultKind::StuckAt, FaultKind::Flapping, FaultKind::Drift] {
        let (off, on) = off_on(kind, 0.5);
        assert!(
            off.correctness() < 1.0,
            "{kind:?}: the fault must actually hurt (off {:.4})",
            off.correctness()
        );
        assert!(
            on.correctness() > off.correctness(),
            "{kind:?}: repair on {:.4} must beat off {:.4}",
            on.correctness(),
            off.correctness()
        );
        assert!(
            on.obs.counter("repair.substitutions") > 0,
            "{kind:?}: the improvement must come from substitutions"
        );
        assert!(
            on.obs.counter(kind.counter_name()) > 0,
            "{kind:?}: injection must surface in fault.* counters"
        );
    }
}

#[test]
fn quarantined_ghost_sensor_stops_contributing() {
    let (off, on) = off_on(FaultKind::Ghost, 0.5);
    assert!(off.ghosts_injected > 0, "the plan injected ghosts");
    assert!(
        off.ghosts_delivered > 0,
        "without repair, ghosts reach the app"
    );
    assert!(
        on.correctness() > off.correctness(),
        "repair on {:.4} must beat off {:.4}",
        on.correctness(),
        off.correctness()
    );
    assert!(
        on.obs.counter("repair.quarantines") > 0,
        "the ghost storm must trip quarantine"
    );
    assert!(
        on.obs.counter("repair.quarantined_drops") > 0,
        "post-quarantine events must be dropped, not delivered"
    );
    assert!(
        on.ghosts_delivered < off.ghosts_delivered,
        "quarantine must cut ghost deliveries ({} vs {})",
        on.ghosts_delivered,
        off.ghosts_delivered
    );
}

#[test]
fn stall_repolls_recover_missed_poll_answers() {
    let off = run_repoll(0.6, false, 42);
    let on = run_repoll(0.6, true, 42);
    assert!(off.suppressed > 0, "the fault suppressed poll answers");
    assert!(
        on.obs.counter("repair.repolls") > 0,
        "the stall detector must issue re-polls"
    );
    assert!(
        on.delivered > off.delivered,
        "re-polls must recover readings ({} vs {})",
        on.delivered,
        off.delivered
    );
    assert!(
        on.correct >= off.correct,
        "recovered readings are correct ones"
    );
}
