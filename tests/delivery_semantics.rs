//! Integration tests for the delivery guarantees (paper §4, Fig. 3).
//!
//! These drive full deployments — device actors, radio links, Rivulet
//! processes, apps — through scripted failures and check the exact
//! per-event semantics of Gap and Gapless delivery.

use rivulet::core::app::{AppBuilder, CombinedWindows, CombinerSpec, OpCtx, WindowSpec};
use rivulet::core::config::ForwardingMode;
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::{Home, HomeBuilder};
use rivulet::core::probe::AppProbe;
use rivulet::core::RivuletConfig;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, EventKind, ProcessId, SensorId, Time};
use std::sync::Arc;

struct Setup {
    net: SimNet,
    home: Home,
    probe: Arc<AppProbe>,
    sensor: SensorId,
    pids: Vec<ProcessId>,
}

fn noop() -> impl Fn(&mut OpCtx, &CombinedWindows) + Send + Sync {
    |_: &mut OpCtx, _: &CombinedWindows| {}
}

/// Three hosts; a scripted door sensor heard by hosts 1 and 2; app
/// anchored at host 0.
fn scripted_home(delivery: Delivery, script: Vec<Time>, config: RivuletConfig, seed: u64) -> Setup {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let pids: Vec<ProcessId> = ["hub", "tv", "fridge"]
        .iter()
        .map(|n| home.add_host(*n))
        .collect();
    let (sensor, _) = home.add_push_sensor(
        "door",
        PayloadSpec::KindOnly(EventKind::DoorOpen),
        EmissionSchedule::Script(script),
        &[pids[1], pids[2]],
    );
    let (anchor, _) = home.add_actuator("anchor", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "trace")
        .operator("sink", CombinerSpec::Any, noop())
        .sensor(sensor, delivery, WindowSpec::count(1))
        .actuator(anchor, delivery)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();
    Setup {
        net,
        home,
        probe,
        sensor,
        pids,
    }
}

fn delivered_seqs(probe: &AppProbe) -> Vec<u64> {
    let mut seqs: Vec<u64> = probe
        .deliveries()
        .iter()
        .map(|d| d.event.seq)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    seqs.sort_unstable();
    seqs
}

#[test]
fn fig3_gapless_recovers_partial_loss_gap_does_not() {
    let script: Vec<Time> = (1..=4).map(|i| Time::from_secs(2 * i)).collect(); // t=2,4,6,8
    for (delivery, expected) in [
        (Delivery::Gap, vec![0u64, 3]),
        (Delivery::Gapless, vec![0, 1, 3]),
    ] {
        let mut s = scripted_home(delivery, script.clone(), RivuletConfig::default(), 1);
        let dev = s.home.sensor_actor(s.sensor);
        let tv = s.home.actor_of(s.pids[1]);
        let fridge = s.home.actor_of(s.pids[2]);
        // Event 1 (t=4): lost on tv's link only.
        s.net
            .set_blocked_at(Time::from_millis(3_900), dev, tv, true);
        s.net
            .set_blocked_at(Time::from_millis(4_100), dev, tv, false);
        // Event 2 (t=6): lost everywhere (never ingested).
        for target in [tv, fridge] {
            s.net
                .set_blocked_at(Time::from_millis(5_900), dev, target, true);
            s.net
                .set_blocked_at(Time::from_millis(6_100), dev, target, false);
        }
        s.net.run_until(Time::from_secs(12));
        assert_eq!(delivered_seqs(&s.probe), expected, "{delivery}");
    }
}

#[test]
fn gapless_delivers_exactly_once_per_event_failure_free() {
    let script: Vec<Time> = (1..=20).map(|i| Time::from_millis(500 * i)).collect();
    let mut s = scripted_home(Delivery::Gapless, script, RivuletConfig::default(), 2);
    s.net.run_until(Time::from_secs(15));
    let deliveries = s.probe.deliveries();
    assert_eq!(deliveries.len(), 20, "no duplicates, no losses");
    assert_eq!(s.probe.unique_delivered(), 20);
}

#[test]
fn anti_entropy_heals_a_rejoining_process() {
    // Crash a *non-app* process, let events flow, recover it, and
    // verify its store catches up via successor sync: afterwards, crash
    // the app process and the recovered one — now primary candidate —
    // still has the full backlog to replay.
    let script: Vec<Time> = (1..=30).map(|i| Time::from_millis(400 * i)).collect();
    let mut s = scripted_home(Delivery::Gapless, script, RivuletConfig::default(), 3);
    let tv = s.home.actor_of(s.pids[1]);
    // tv is a receiver; crash it during the first half of the stream.
    s.net.crash_at(tv, Time::from_secs(2));
    s.net.recover_at(tv, Time::from_secs(9));
    s.net.run_until(Time::from_secs(20));
    // Every event still reaches the app (fridge kept receiving).
    assert_eq!(s.probe.unique_delivered(), 30);
}

#[test]
fn ablation_disabling_anti_entropy_still_delivers_but_skips_sync() {
    // With anti-entropy off, a process that missed events while crashed
    // never back-fills its store; delivery to the (never-crashed) app
    // process is unaffected in this scenario, demonstrating that the
    // sync path is what protects *future* failovers, not steady-state
    // delivery.
    let script: Vec<Time> = (1..=30).map(|i| Time::from_millis(400 * i)).collect();
    let config = RivuletConfig::default().with_anti_entropy(false);
    let mut s = scripted_home(Delivery::Gapless, script, config, 3);
    let tv = s.home.actor_of(s.pids[1]);
    s.net.crash_at(tv, Time::from_secs(2));
    s.net.recover_at(tv, Time::from_secs(9));
    s.net.run_until(Time::from_secs(20));
    assert_eq!(s.probe.unique_delivered(), 30);
}

#[test]
fn eager_broadcast_mode_delivers_equivalently() {
    let script: Vec<Time> = (1..=20).map(|i| Time::from_millis(500 * i)).collect();
    let config = RivuletConfig::default().with_forwarding(ForwardingMode::EagerBroadcast);
    let mut s = scripted_home(Delivery::Gapless, script, config, 4);
    s.net.run_until(Time::from_secs(15));
    assert_eq!(s.probe.unique_delivered(), 20);
}

#[test]
fn gap_discards_at_non_forwarders_saving_network() {
    // Under Gap only one receiving process forwards; wifi bytes should
    // be well below Gapless for the same workload.
    let script: Vec<Time> = (1..=40).map(|i| Time::from_millis(250 * i)).collect();
    let mut gap = scripted_home(Delivery::Gap, script.clone(), RivuletConfig::default(), 5);
    gap.net.run_until(Time::from_secs(15));
    let gap_bytes = gap.net.metrics().wifi_bytes;
    let gap_delivered = gap.probe.unique_delivered();

    let mut gapless = scripted_home(Delivery::Gapless, script, RivuletConfig::default(), 5);
    gapless.net.run_until(Time::from_secs(15));
    let gapless_bytes = gapless.net.metrics().wifi_bytes;

    assert_eq!(gap_delivered, 40, "failure-free gap delivers all");
    assert!(
        gap_bytes < gapless_bytes,
        "gap {gap_bytes} B should undercut gapless {gapless_bytes} B"
    );
}

#[test]
fn delivery_is_deterministic_for_a_seed() {
    let script: Vec<Time> = (1..=10).map(|i| Time::from_millis(700 * i)).collect();
    let run = |seed: u64| {
        let mut s = scripted_home(
            Delivery::Gapless,
            script.clone(),
            RivuletConfig::default(),
            seed,
        );
        let dev = s.home.sensor_actor(s.sensor);
        let tv = s.home.actor_of(s.pids[1]);
        s.net.topology_mut().set_loss(dev, tv, 0.4);
        s.net.run_until(Time::from_secs(10));
        (delivered_seqs(&s.probe), s.net.metrics().messages_sent)
    };
    assert_eq!(run(77), run(77));
}
