//! Rivulet: a fault-tolerant platform for smart-home applications.
//!
//! This is the umbrella crate: it re-exports the public API of the
//! Rivulet workspace so applications can depend on a single crate. See
//! the [`rivulet_core`] documentation for the platform itself, and the
//! repository `README.md`/`DESIGN.md` for the architecture.
//!
//! The workspace reproduces the system described in *Rivulet: A
//! Fault-Tolerant Platform for Smart-Home Applications* (Middleware
//! 2017): configurable **Gap**/**Gapless** event-delivery guarantees, a
//! ring-based replication protocol with reliable-broadcast fallback,
//! coordinated polling of battery-powered sensors, active/shadow logic
//! node execution with bully-style failover, and a Flink-like dataflow
//! programming model with windows, triggers, and fault-tolerance-aware
//! combiners.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rivulet_core as core;
pub use rivulet_devices as devices;
pub use rivulet_fleet as fleet;
pub use rivulet_net as net;
pub use rivulet_obs as obs;
pub use rivulet_storage as storage;
pub use rivulet_types as types;
