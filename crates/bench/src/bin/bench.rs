//! Fan-out benchmark runner: measures the encode-once / coalescing
//! hot path before and after the optimization and writes the results
//! to `BENCH_fanout.json` (plus a human-readable summary on stdout).
//!
//! ```text
//! cargo run --release -p rivulet-bench --bin bench \
//!     [-- --out PATH] [--quick] [--assert-baseline PATH] [--tolerance FRACTION]
//! ```
//!
//! `--quick` shrinks the iteration counts for CI smoke runs.
//! `--assert-baseline PATH` enables the regression gates:
//!
//! 1. micro: the fresh coalesced throughput (measured with a
//!    *disabled* observability recorder on the hot path) must stay
//!    within `--tolerance` of the committed `BENCH_fanout.json`
//!    (default 0.25 — wide enough for cross-machine noise in CI;
//!    tighten locally to verify the < 3% acceptance bound on stable
//!    hardware);
//! 2. sim: every optimized workload must be at least as fast as its
//!    unoptimized twin *from the same fresh run* (minus tolerance) —
//!    self-relative, so it holds on any machine;
//! 3. sim: every optimized workload must retire events through
//!    cumulative acks (`acks_avoided > 0`) — this is exact, because a
//!    zero means the wiring is dead, which is how the original
//!    regression went unnoticed;
//! 4. sim: the round-3 machinery must be live on every optimized
//!    workload — `ring_pops`, `ring_batches`, `arena_allocs`, and
//!    `arena_recycled` all > 0 (a zero means a dead knob or dead
//!    chunk recycling, both of which defeat the optimization while
//!    leaving behavior correct).
//!
//! `--fleet-fresh PATH` (with `--fleet-baseline PATH`) gates a fresh
//! `BENCH_fleet.json` from the fleet orchestrator: any home failing
//! delivery correctness is fatal (exact — `homes_failed` must be 0),
//! and the aggregate fleet events/s must stay within `--tolerance` of
//! the committed fleet baseline. `--fleet-only` runs just that gate,
//! skipping the fan-out benchmarks.

use rivulet_bench::fanout::{
    run_micro, run_sim_twin, MicroPoint, MicroWorkload, SimPoint, SimWorkload,
};
use rivulet_bench::fault::{correctness_table, render_json, render_table};
use rivulet_bench::routine::{
    corruption_exactness, render_json as routine_json, render_table as routine_md, routines_table,
    CRASH_OFFSETS_MS,
};
use rivulet_bench::tables::render_fanout_table;
use rivulet_types::Duration;

/// Runs the correctness-vs-fault-rate sweep, prints the table, writes
/// `out_path`, and asserts the self-healing floor: repair-on must be
/// at least as correct as repair-off on every row, and strictly better
/// for at least three fault kinds at the highest rate.
fn fault_table(out_path: &str, quick: bool) {
    let rates = if quick {
        vec![0.25, 0.5]
    } else {
        vec![0.1, 0.25, 0.5]
    };
    let duration = Duration::from_secs(if quick { 120 } else { 240 });
    let rows = correctness_table(&rates, duration, 42);
    print!("{}", render_table(&rows));
    let top_rate = *rates.last().expect("non-empty rates");
    let mut strictly_better = std::collections::BTreeSet::new();
    for r in &rows {
        assert!(
            r.on.correctness() >= r.off.correctness(),
            "repair made {} at rate {:.2} worse: on {:.4} < off {:.4}",
            r.kind.name(),
            r.rate,
            r.on.correctness(),
            r.off.correctness()
        );
        if r.rate == top_rate && r.on.correctness() > r.off.correctness() {
            strictly_better.insert(r.kind.name());
        }
    }
    assert!(
        strictly_better.len() >= 3,
        "repair strictly improved only {:?} at rate {top_rate:.2}; need >= 3 fault kinds",
        strictly_better
    );
    println!(
        "fault gate: repair-on >= repair-off on all {} rows; strictly better for {:?} at rate {top_rate:.2}",
        rows.len(),
        strictly_better
    );
    std::fs::write(out_path, render_json(&rows)).expect("write BENCH_fault.json");
    println!("wrote {out_path}");
}

/// Runs the routines-under-crash sweep, prints the table, writes
/// `out_path`, and asserts the execution-integrity gates:
///
/// 1. zero partial and zero phantom firings on every row (exact — one
///    is an atomicity violation);
/// 2. the coordinator's recovered ledger chain verifies on every row,
///    including the recovered crash runs;
/// 3. the sweep exercises both outcomes: some crash row aborted a
///    staging and some row committed after recovery;
/// 4. the crash-free baseline commits every staged instance;
/// 5. tampering with any single ledger entry of the baseline run is
///    detected at its exact index.
fn routine_table(out_path: &str, quick: bool) {
    let offsets: &[u64] = if quick { &[0, 2, 4] } else { &CRASH_OFFSETS_MS };
    let duration = Duration::from_secs(30);
    let seed = 42;
    let rows = routines_table(offsets, duration, seed);
    print!("{}", routine_md(&rows));
    let mut aborted_total = 0u64;
    let mut committed_after_crash = 0u64;
    for r in &rows {
        let o = &r.outcome;
        let label = r
            .crash_ms
            .map_or_else(|| "baseline".to_owned(), |ms| format!("crash +{ms}ms"));
        assert!(
            o.partial_firings == 0,
            "{label}: {} routine instance(s) fired partially — atomicity violated",
            o.partial_firings
        );
        assert!(
            o.phantom_firings == 0,
            "{label}: {} non-committed instance(s) fired — staging leaked",
            o.phantom_firings
        );
        assert!(
            o.ledger_broken.is_none(),
            "{label}: recovered ledger chain broken at index {:?}",
            o.ledger_broken
        );
        if r.crash_ms.is_some() {
            aborted_total += o.aborted;
            committed_after_crash += o.committed;
        } else {
            assert!(
                o.committed as usize == o.instances && o.instances > 0,
                "baseline must commit every staged instance ({} of {})",
                o.committed,
                o.instances
            );
        }
    }
    assert!(
        aborted_total > 0,
        "no crash offset interrupted a staging; the sweep missed the window"
    );
    assert!(
        committed_after_crash > 0,
        "no crash row committed anything; recovery is not re-driving routines"
    );
    let baseline = &rows[0].outcome;
    let (entries, exact) = corruption_exactness(seed, &baseline.ledger);
    assert!(
        entries > 0 && exact == entries,
        "ledger corruption pinpointing failed: {exact} of {entries} tampered \
         entries detected at their exact index"
    );
    println!(
        "routine gate: {} rows, 0 partial/phantom firings, all ledgers verified, \
         {aborted_total} crash-interrupted abort(s), {committed_after_crash} \
         post-crash commit(s), {exact}/{entries} corruptions pinpointed",
        rows.len()
    );
    std::fs::write(out_path, routine_json(&rows, (entries, exact)))
        .expect("write BENCH_routines.json");
    println!("wrote {out_path}");
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "0.0".to_owned()
    }
}

fn micro_json(p: &MicroPoint) -> String {
    format!(
        "{{\"events_per_sec\": {}, \"bytes_per_event\": {}}}",
        json_f(p.events_per_sec),
        json_f(p.bytes_per_event)
    )
}

fn sim_json(p: &SimPoint) -> String {
    format!(
        concat!(
            "{{\"workload\": \"{}\", \"optimized\": {}, \"emitted\": {}, ",
            "\"delivered\": {}, \"events_per_sec\": {}, \"bytes_per_event\": {}, ",
            "\"frames_coalesced\": {}, \"messages_avoided\": {}, ",
            "\"encode_bytes_saved\": {}, \"acks_avoided\": {}, ",
            "\"ring_pops\": {}, \"ring_batches\": {}, ",
            "\"arena_allocs\": {}, \"arena_recycled\": {}}}"
        ),
        p.workload,
        p.optimized,
        p.emitted,
        p.delivered,
        json_f(p.events_per_sec),
        json_f(p.bytes_per_event),
        p.fanout.frames_coalesced,
        p.fanout.messages_avoided,
        p.fanout.encode_bytes_saved,
        p.fanout.acks_avoided,
        p.ring_pops,
        p.ring_batches,
        p.arena_allocs,
        p.arena_recycled,
    )
}

/// Extracts `micro.after.events_per_sec` from a `BENCH_fanout.json`
/// document without a JSON parser dependency: finds the `"after"` key
/// and reads the first `"events_per_sec"` number inside it.
fn baseline_events_per_sec(json: &str) -> Option<f64> {
    let after = json.find("\"after\"")?;
    let tail = &json[after..];
    let key = tail.find("\"events_per_sec\"")?;
    let tail = &tail[key + "\"events_per_sec\"".len()..];
    let colon = tail.find(':')?;
    let tail = tail[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Extracts the first number after `"key":` inside the `"fleet"`
/// object of a `BENCH_fleet.json` document — same parser-free idiom
/// as [`baseline_events_per_sec`].
fn fleet_number(json: &str, key: &str) -> Option<f64> {
    let fleet = json.find("\"fleet\"")?;
    let tail = &json[fleet..];
    let quoted = format!("\"{key}\"");
    let at = tail.find(&quoted)?;
    let tail = &tail[at + quoted.len()..];
    let colon = tail.find(':')?;
    let tail = tail[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Extracts `scaling.full.threads` from a `BENCH_fleet.json`
/// document: finds the `"scaling"` block, then `"full"` inside it,
/// then the first `"threads"` number. Returns `None` when the
/// document carries no scaling section.
fn scaling_full_threads(json: &str) -> Option<f64> {
    let scaling = json.find("\"scaling\"")?;
    let tail = &json[scaling..];
    let full = tail.find("\"full\"")?;
    let tail = &tail[full..];
    let at = tail.find("\"threads\"")?;
    let tail = &tail[at + "\"threads\"".len()..];
    let colon = tail.find(':')?;
    let tail = tail[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The fleet regression gate: delivery correctness is exact,
/// throughput is tolerance-banded against the committed baseline.
fn fleet_gate(fresh_path: &str, baseline_path: Option<&str>, tolerance: f64) {
    let fresh = std::fs::read_to_string(fresh_path)
        .unwrap_or_else(|e| panic!("read fleet results {fresh_path}: {e}"));
    let homes =
        fleet_number(&fresh, "homes").unwrap_or_else(|| panic!("no fleet.homes in {fresh_path}"));
    let failed = fleet_number(&fresh, "homes_failed")
        .unwrap_or_else(|| panic!("no fleet.homes_failed in {fresh_path}"));
    let fresh_eps = fleet_number(&fresh, "events_per_sec")
        .unwrap_or_else(|| panic!("no fleet.events_per_sec in {fresh_path}"));
    println!("fleet gate: {homes:.0} homes, {failed:.0} failed, {fresh_eps:.0} events/s aggregate");
    assert!(
        failed == 0.0,
        "{failed:.0} of {homes:.0} fleet homes failed delivery correctness \
         (see {fresh_path}); any delivery failure is CI-fatal"
    );
    // Scaling honesty: on a multi-core host the "full" point of the
    // scaling sweep must have actually run with more than one worker.
    // A full.threads of 1 there means the sweep silently measured the
    // single-thread configuration twice and reported speedup ≈ 1.0 as
    // if it were a real parallelism result. A 1-core host is exempt —
    // one worker is all the parallelism it has.
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if let Some(full_threads) = scaling_full_threads(&fresh) {
        println!("fleet gate: scaling.full.threads = {full_threads:.0} (host cores: {host_cores})");
        assert!(
            full_threads > 1.0 || host_cores == 1,
            "fleet scaling block is bogus: the full-core point ran with \
             {full_threads:.0} thread(s) on a {host_cores}-core host — the sweep \
             measured single-thread twice; regenerate with a real worker pool"
        );
    }
    let Some(baseline_path) = baseline_path else {
        println!("fleet gate: no --fleet-baseline given; correctness-only gate passed");
        return;
    };
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read fleet baseline {baseline_path}: {e}"));
    let base_eps = fleet_number(&baseline, "events_per_sec")
        .unwrap_or_else(|| panic!("no fleet.events_per_sec in {baseline_path}"));
    let floor = base_eps * (1.0 - tolerance);
    println!(
        "fleet gate: fresh {fresh_eps:.0} events/s vs committed {base_eps:.0} \
         (floor {floor:.0}, tolerance {tolerance:.2})"
    );
    assert!(
        fresh_eps >= floor,
        "fleet aggregate throughput regressed: {fresh_eps:.0} events/s < floor \
         {floor:.0} ({base_eps:.0} - {tolerance:.2})"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fanout.json".to_owned());
    let baseline_path = args
        .iter()
        .position(|a| a == "--assert-baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let tolerance: f64 = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let fleet_fresh = args
        .iter()
        .position(|a| a == "--fleet-fresh")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let fleet_baseline = args
        .iter()
        .position(|a| a == "--fleet-baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(fresh) = &fleet_fresh {
        fleet_gate(fresh, fleet_baseline.as_deref(), tolerance);
        if args.iter().any(|a| a == "--fleet-only") {
            return;
        }
    }
    if args.iter().any(|a| a == "--fault-table") {
        let fault_out = args
            .iter()
            .position(|a| a == "--fault-out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_fault.json".to_owned());
        fault_table(&fault_out, quick);
        if args.iter().any(|a| a == "--fault-only") {
            return;
        }
    }
    if args.iter().any(|a| a == "--routine-table") {
        let routine_out = args
            .iter()
            .position(|a| a == "--routine-out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_routines.json".to_owned());
        routine_table(&routine_out, quick);
        if args.iter().any(|a| a == "--routine-only") {
            return;
        }
    }
    let activations: u64 = if quick { 2_000 } else { 20_000 };

    // Micro: the fan-out encode path, before (per-peer re-encode) vs
    // after (encode-once + coalesced frames), same binary.
    let w = MicroWorkload::broadcast_heavy();
    // Warm up both paths so allocator state is comparable, then keep
    // the best of three repetitions per variant (max throughput — the
    // run least disturbed by scheduler/frequency noise).
    let _ = run_micro(&w, activations / 10, false);
    let _ = run_micro(&w, activations / 10, true);
    let best = |coalesced: bool| {
        (0..3)
            .map(|_| run_micro(&w, activations, coalesced))
            .max_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec))
            .expect("three repetitions")
    };
    let before = best(false);
    let after = best(true);
    let speedup = after.events_per_sec / before.events_per_sec.max(1e-9);
    println!(
        "micro_fanout (broadcast-heavy: {} peers x {} msgs of {} B):",
        w.peers, w.batch, w.payload_bytes
    );
    println!(
        "  before (per-peer encode): {:>12.0} events/s  {:>8.1} B/event",
        before.events_per_sec, before.bytes_per_event
    );
    println!(
        "  after  (encode-once)    : {:>12.0} events/s  {:>8.1} B/event",
        after.events_per_sec, after.bytes_per_event
    );
    println!("  speedup: {speedup:.2}x");

    // Baseline gate: the coalesced path now carries a disabled
    // observability recorder; its throughput must stay within
    // tolerance of the committed pre-instrumentation number.
    if let Some(path) = &baseline_path {
        let doc =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base = baseline_events_per_sec(&doc)
            .unwrap_or_else(|| panic!("no micro.after.events_per_sec in {path}"));
        let floor = base * (1.0 - tolerance);
        println!(
            "baseline gate: fresh {:.0} events/s vs committed {base:.0} \
             (floor {floor:.0}, tolerance {tolerance:.2})",
            after.events_per_sec
        );
        assert!(
            after.events_per_sec >= floor,
            "disabled-recorder fan-out regressed: {:.0} events/s < floor {floor:.0} \
             ({base:.0} - {tolerance:.2})",
            after.events_per_sec
        );
    }

    // Sim: whole-platform before/after for ring and broadcast-heavy.
    // Each workload's twins run with interleaved repetitions (see
    // `run_sim_twin`) so the self-relative gate below compares points
    // measured under the same host conditions.
    let mut sims: Vec<SimPoint> = Vec::new();
    for workload in [
        SimWorkload::Ring,
        SimWorkload::RingCrash,
        SimWorkload::Broadcast,
    ] {
        let (before, after) = run_sim_twin(workload, 5);
        for p in [before, after] {
            println!(
                "sim {} {}: {} delivered, {:>9.0} events/s (host), {:>8.1} B/event",
                p.workload,
                if p.optimized { "after " } else { "before" },
                p.delivered,
                p.events_per_sec,
                p.bytes_per_event,
            );
            sims.push(p);
        }
    }
    let rows: Vec<(String, f64, rivulet_net::metrics::FanoutSnapshot)> = sims
        .iter()
        .map(|p| {
            (
                format!(
                    "{}/{}",
                    p.workload,
                    if p.optimized { "after" } else { "before" }
                ),
                p.events_per_sec,
                p.fanout,
            )
        })
        .collect();
    print!("{}", render_fanout_table(&rows));

    // Sim gates: self-relative (fresh optimized vs fresh unoptimized
    // twin), so they hold on any machine, plus the exact cumulative-ack
    // liveness check.
    if baseline_path.is_some() {
        for p in sims.iter().filter(|p| p.optimized) {
            let twin = sims
                .iter()
                .find(|q| !q.optimized && q.workload == p.workload)
                .expect("every optimized sim point has an unoptimized twin");
            let floor = twin.events_per_sec * (1.0 - tolerance);
            println!(
                "sim gate {}: optimized {:.0} events/s vs unoptimized {:.0} (floor {floor:.0})",
                p.workload, p.events_per_sec, twin.events_per_sec
            );
            assert!(
                p.events_per_sec >= floor,
                "optimized sim workload {} is slower than its unoptimized twin: \
                 {:.0} events/s < floor {floor:.0} ({:.0} - {tolerance:.2})",
                p.workload,
                p.events_per_sec,
                twin.events_per_sec
            );
            assert!(
                p.fanout.acks_avoided > 0,
                "cumulative acks retired nothing on optimized sim workload {} \
                 (acks_avoided == 0): the watermark-retirement path is dead",
                p.workload
            );
            // Round-3 liveness: an optimized run with zero ring or
            // arena activity means the knob is wired to nothing —
            // exactly how the original coalescing regression hid.
            assert!(
                p.ring_pops > 0 && p.ring_batches > 0,
                "exec ring moved nothing on optimized sim workload {} \
                 (ring_pops {}, ring_batches {}): the SPSC handoff is dead",
                p.workload,
                p.ring_pops,
                p.ring_batches
            );
            assert!(
                p.arena_allocs > 0,
                "payload arena re-homed nothing on optimized sim workload {} \
                 (arena_allocs == 0): the arena hook in EventStore::insert is dead",
                p.workload
            );
            assert!(
                p.arena_recycled > 0,
                "payload arena recycled no chunks on optimized sim workload {} \
                 (arena_recycled == 0): retirement is dropping chunks instead of \
                 reclaiming them (see arena::tests::exactly_filled_chunks_still_recycle)",
                p.workload
            );
        }
        println!(
            "sim gate: all optimized workloads >= unoptimized twins; \
             acks_avoided, ring_pops, arena_allocs, arena_recycled all > 0"
        );
    }

    let json = format!(
        concat!(
            "{{\n  \"micro\": {{\n    \"workload\": \"broadcast_heavy\",\n",
            "    \"peers\": {}, \"batch\": {}, \"payload_bytes\": {},\n",
            "    \"before\": {},\n    \"after\": {},\n    \"speedup\": {}\n  }},\n",
            "  \"sim\": [\n    {}\n  ]\n}}\n"
        ),
        w.peers,
        w.batch,
        w.payload_bytes,
        micro_json(&before),
        micro_json(&after),
        format_args!("{speedup:.2}"),
        sims.iter()
            .map(sim_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    std::fs::write(&out_path, json).expect("write BENCH_fanout.json");
    println!("wrote {out_path}");
}
