//! Regenerates every table and figure of the paper's evaluation as
//! text. Run with a figure id (`fig1`, `fig3`, `fig4a`, `fig4b`,
//! `fig5`, `fig6`, `fig7`, `fig8`, `table1`, `table3`) or `all`.
//! `obs-json` / `obs-prom` dump the full observability snapshot of the
//! Fig. 7 failover run as deterministic JSON or Prometheus text.
//!
//! ```text
//! cargo run -p rivulet-bench --bin figures -- fig6
//! cargo run -p rivulet-bench --bin figures -- obs-json > obs.json
//! ```
//!
//! Durations are scaled down from the paper's 200 s runs by default;
//! pass `--full` for full-length runs.

use rivulet_bench::{common, fig1, fig3, fig4, fig5, fig6, fig7, fig8, tables};
use rivulet_core::delivery::Delivery;
use rivulet_types::{Duration, Time};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    let run_len = if full {
        Duration::from_secs(200)
    } else {
        Duration::from_secs(40)
    };

    for target in which {
        match target {
            "table1" => print!("{}", tables::render_table1()),
            "fig2" => print!("{}", tables::render_fig2()),
            "table3" => print!("{}", tables::render_table3()),
            "fig1" => print_fig1(if full { 15.0 } else { 0.5 }),
            "fig3" => print_fig3(),
            "fig4a" => print_fig4(true, run_len),
            "fig4b" => print_fig4(false, run_len),
            "fig5" => print_fig5(run_len),
            "fig6" => print_fig6(run_len),
            "fig7" => print_fig7(if full {
                Duration::from_secs(200)
            } else {
                Duration::from_secs(50)
            }),
            "fig8" => print_fig8(if full {
                Duration::from_secs(200)
            } else {
                Duration::from_secs(120)
            }),
            "obs-json" => print_obs(false),
            "obs-prom" => print_obs(true),
            "all" => {
                print!("{}", tables::render_table1());
                println!();
                print!("{}", tables::render_table3());
                println!();
                print!("{}", tables::render_fig2());
                println!();
                print_fig1(if full { 15.0 } else { 0.5 });
                print_fig3();
                print_fig4(true, run_len);
                print_fig4(false, run_len);
                print_fig5(run_len);
                print_fig6(run_len);
                print_fig7(if full {
                    Duration::from_secs(200)
                } else {
                    Duration::from_secs(50)
                });
                print_fig8(if full {
                    Duration::from_secs(200)
                } else {
                    Duration::from_secs(120)
                });
            }
            other => eprintln!("unknown target: {other}"),
        }
        println!();
    }
}

fn print_fig1(days: f64) {
    println!("Figure 1: events received per process ({days} simulated days)");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "Sensor", "emitted", "proc0", "proc1", "proc2", "skew"
    );
    for row in fig1::run(days, 5) {
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>7}",
            row.sensor,
            row.emitted,
            row.received[0],
            row.received[1],
            row.received[2],
            row.skew()
        );
    }
}

fn print_fig3() {
    println!("Figure 3: scripted link-loss trace (events 0..4; #1 lost on one link, #2 on all)");
    for delivery in [Delivery::Gap, Delivery::Gapless] {
        let out = fig3::run(delivery);
        println!("{delivery:>8}: delivered events {:?}", out.delivered);
    }
}

fn print_fig4(farthest: bool, run_len: Duration) {
    println!(
        "Figure 4{}: mean delay (ms), receiver {}",
        if farthest { "a" } else { "b" },
        if farthest {
            "farthest from app"
        } else {
            "at the app process"
        }
    );
    println!(
        "{:>8} {:>6} {:>4} {:>10}",
        "delivery", "size", "n", "delay(ms)"
    );
    for p in fig4::sweep(farthest, run_len) {
        println!(
            "{:>8} {:>6} {:>4} {:>10}",
            p.delivery.to_string(),
            p.size_label,
            p.n_processes,
            common::ms(Some(p.mean_delay))
        );
    }
}

fn print_fig5(run_len: Duration) {
    println!("Figure 5: network overhead normalized against Gap (5 processes)");
    println!(
        "{:>10} {:>6} {:>10} {:>12}",
        "protocol", "size", "receiving", "vs Gap"
    );
    for p in fig5::sweep(run_len) {
        println!(
            "{:>10} {:>6} {:>10} {:>12.2}",
            p.protocol.to_string(),
            p.size_label,
            p.receiving,
            p.normalized
        );
    }
}

fn print_fig6(run_len: Duration) {
    println!("Figure 6: % events delivered under sensor-process link loss");
    println!(
        "{:>8} {:>8} {:>10} {:>10}",
        "delivery", "loss", "receiving", "%delivered"
    );
    for p in fig6::sweep(run_len, 7) {
        println!(
            "{:>8} {:>7.2}% {:>10} {:>9.1}%",
            p.delivery.to_string(),
            p.loss * 100.0,
            p.receiving,
            p.fraction * 100.0
        );
    }
}

fn print_fig7(run_len: Duration) {
    println!("Figure 7: failover timeline (crash of app process at t=24s)");
    for delivery in [Delivery::Gap, Delivery::Gapless] {
        let out = fig7::run(delivery, Time::from_secs(24), run_len, 11);
        println!(
            "{delivery:>8}: emitted {} delivered {} promoted_at {:?}",
            out.emitted, out.unique_delivered, out.promoted_at
        );
        print!("          events/s:");
        for (s, n) in out.per_second.iter().enumerate() {
            if (20..=32).contains(&s) {
                print!(" t{s}:{n}");
            }
        }
        println!();
        for span in out.obs.spans_named("failover") {
            println!(
                "          failover span: actor {} [{} .. {:?}] = {:?}",
                span.key,
                span.start,
                span.end,
                span.duration()
            );
        }
    }
}

/// Dumps the observability snapshot of the Fig. 7 Gapless failover run
/// (crash at t = 24 s, seed 11): every number the figures print comes
/// from this export.
fn print_obs(prometheus: bool) {
    let out = fig7::run(
        Delivery::Gapless,
        Time::from_secs(24),
        Duration::from_secs(50),
        11,
    );
    if prometheus {
        print!("{}", out.obs.to_prometheus());
    } else {
        print!("{}", out.obs.to_json());
    }
}

fn print_fig8(run_len: Duration) {
    println!("Figure 8: poll requests normalized against optimal (1/epoch)");
    println!(
        "{:>16} {:>16} {:>8} {:>8} {:>10}",
        "mode", "sensor", "polls", "optimal", "vs optimal"
    );
    for mode in [
        fig8::Mode::Gap,
        fig8::Mode::Coordinated,
        fig8::Mode::Uncoordinated,
    ] {
        for p in fig8::run(mode, run_len, 3) {
            println!(
                "{:>16} {:>16} {:>8} {:>8} {:>10.2}",
                mode.to_string(),
                p.sensor,
                p.polls_received,
                p.optimal,
                p.normalized
            );
        }
    }
}
