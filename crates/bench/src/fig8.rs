//! Fig. 8 — coordinated vs uncoordinated polling overhead.
//!
//! Three processes, four Z-Wave poll-based sensors (temperature,
//! luminance, relative humidity, UV) with the paper's polling periods
//! and application epochs. The metric is poll requests *reaching the
//! sensor* (battery cost), normalized against the optimal one poll per
//! epoch.

use rivulet_core::app::{AppBuilder, CombinerSpec, PollSpec, WindowSpec};
use rivulet_core::delivery::polling::PollStrategy;
use rivulet_core::delivery::Delivery;
use rivulet_core::deploy::HomeBuilder;
use rivulet_net::sim::{SimConfig, SimNet};
use rivulet_types::{AppId, Duration, Time};

/// One sensor's polling measurement.
#[derive(Debug, Clone)]
pub struct PollingPoint {
    /// Sensor name from the device catalog.
    pub sensor: &'static str,
    /// Polls that reached the sensor.
    pub polls_received: u64,
    /// Epochs elapsed (the optimal poll count).
    pub optimal: u64,
    /// `polls_received / optimal`.
    pub normalized: f64,
    /// Epochs that ended without an event.
    pub missed_epochs: u64,
}

/// The scheduling modes compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Gapless with the paper's slotted coordination.
    Coordinated,
    /// Gapless with uniform-random per-process polling.
    Uncoordinated,
    /// Gap: only the designated node polls.
    Gap,
}

impl Mode {
    fn to_wiring(self) -> (Delivery, Option<PollStrategy>) {
        match self {
            Mode::Coordinated => (Delivery::Gapless, None),
            Mode::Uncoordinated => (Delivery::Gapless, Some(PollStrategy::Uncoordinated)),
            Mode::Gap => (Delivery::Gap, None),
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Coordinated => write!(f, "coordinated"),
            Mode::Uncoordinated => write!(f, "uncoordinated"),
            Mode::Gap => write!(f, "gap (single poller)"),
        }
    }
}

/// Runs the polling experiment for one mode with the default 2 %
/// radio loss the paper's real Z-Wave testbed exhibits.
#[must_use]
pub fn run(mode: Mode, duration: Duration, seed: u64) -> Vec<PollingPoint> {
    run_with_loss(mode, duration, seed, 0.02)
}

/// Runs the polling experiment for one mode with explicit per-link
/// radio loss (poll requests and responses can both be lost, forcing
/// the coordinated scheduler's re-poll path).
#[must_use]
pub fn run_with_loss(
    mode: Mode,
    duration: Duration,
    seed: u64,
    radio_loss: f64,
) -> Vec<PollingPoint> {
    let (delivery, strategy) = mode.to_wiring();
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    let mut home = HomeBuilder::new(&mut net);
    let p0 = home.add_host("hub");
    let p1 = home.add_host("tv");
    let p2 = home.add_host("fridge");
    let procs = [p0, p1, p2];

    let sensors = rivulet_devices::catalog::fig8_sensors();
    let mut declared = Vec::new();
    for (entry, model) in &sensors {
        let (id, probe) = home.add_poll_sensor(
            entry.name,
            model.clone(),
            entry.poll_latency.expect("poll sensor"),
            &procs,
        );
        declared.push((entry.clone(), id, probe));
    }

    // One operator consuming all four sensors with the paper's epochs.
    let mut op = home_app_builder();
    for (entry, id, _) in &declared {
        let mut poll = PollSpec::every(entry.fig8_epoch.expect("poll sensor"));
        if let Some(s) = strategy {
            poll = poll.with_strategy(s);
        }
        op = op.polled_sensor(*id, delivery, WindowSpec::count(1).sliding(), poll);
    }
    let app = op.done().build().expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();

    if radio_loss > 0.0 {
        for (_, id, _) in &declared {
            let device = home.sensor_actor(*id);
            for p in &procs {
                let host = home.actor_of(*p);
                net.topology_mut().set_loss(device, host, radio_loss);
                net.topology_mut().set_loss(host, device, radio_loss);
            }
        }
    }

    net.run_until(Time::ZERO + duration);

    let mut out = Vec::new();
    for (entry, _, poll_probe) in declared {
        let epoch = entry.fig8_epoch.expect("poll sensor");
        let optimal = duration.as_micros() / epoch.as_micros();
        let received = poll_probe.received();
        out.push(PollingPoint {
            sensor: entry.name,
            polls_received: received,
            optimal,
            normalized: received as f64 / optimal.max(1) as f64,
            missed_epochs: probe.epoch_misses(),
        });
    }
    out
}

fn home_app_builder() -> rivulet_core::app::graph::OperatorBuilder {
    AppBuilder::new(AppId(1), "polling-app").operator(
        "sink",
        CombinerSpec::Any,
        |_: &mut rivulet_core::app::OpCtx, _: &rivulet_core::app::CombinedWindows| {},
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEN: Duration = Duration::from_secs(120);

    #[test]
    fn coordinated_polling_is_near_optimal() {
        for point in run(Mode::Coordinated, LEN, 3) {
            assert!(
                (0.95..=1.35).contains(&point.normalized),
                "{}: {:.2}x optimal ({} polls / {} epochs)",
                point.sensor,
                point.normalized,
                point.polls_received,
                point.optimal
            );
        }
    }

    #[test]
    fn uncoordinated_polling_wastes_battery() {
        for point in run(Mode::Uncoordinated, LEN, 3) {
            assert!(
                point.normalized >= 2.0,
                "{}: expected ≥2x optimal, got {:.2}x",
                point.sensor,
                point.normalized
            );
        }
    }

    #[test]
    fn gap_polling_is_optimal_or_below() {
        for point in run(Mode::Gap, LEN, 3) {
            assert!(
                point.normalized <= 1.1,
                "{}: gap should be ≈1x, got {:.2}x",
                point.sensor,
                point.normalized
            );
        }
    }

    #[test]
    fn coordinated_beats_uncoordinated_everywhere() {
        let coordinated = run(Mode::Coordinated, LEN, 3);
        let uncoordinated = run(Mode::Uncoordinated, LEN, 3);
        for (c, u) in coordinated.iter().zip(&uncoordinated) {
            assert_eq!(c.sensor, u.sensor);
            assert!(
                c.polls_received < u.polls_received,
                "{}: {} vs {}",
                c.sensor,
                c.polls_received,
                u.polls_received
            );
        }
    }

    #[test]
    fn coordinated_epochs_are_answered() {
        let points = run(Mode::Coordinated, LEN, 3);
        // Even at 2 % radio loss, re-polling answers almost every
        // epoch.
        for p in &points {
            assert!(
                p.missed_epochs <= 3,
                "{}: {} missed epochs",
                p.sensor,
                p.missed_epochs
            );
        }
    }
}
