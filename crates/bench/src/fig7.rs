//! Fig. 7 — events received by the active logic node around an induced
//! process crash.
//!
//! One sensor at 10 events/s, five processes all receiving, the
//! application-bearing process crashed at t = 24 s, failure-detection
//! threshold 2 s. Under Gap the new primary simply picks up the next
//! events (≈ 20 events lost); under Gapless the promotion replays the
//! replicated-but-unprocessed backlog, visible as a catch-up spike.

use std::collections::BTreeSet;

use rivulet_core::delivery::Delivery;
use rivulet_obs::ObsSnapshot;
use rivulet_types::{Duration, Time};

use crate::common::{run_delivery, DeliveryScenario};

/// Result of one failover run. Every field below is derived from the
/// run's [`ObsSnapshot`] — the `app.delivery` and `exec.promoted`
/// timeline events — not from probe internals.
#[derive(Debug, Clone)]
pub struct FailoverOutcome {
    /// Events delivered per one-second bucket.
    pub per_second: Vec<u64>,
    /// Total unique events delivered.
    pub unique_delivered: usize,
    /// Total emitted.
    pub emitted: u64,
    /// When the replacement primary promoted itself.
    pub promoted_at: Option<Time>,
    /// The full observability snapshot of the run (failover spans,
    /// delay histograms, …).
    pub obs: ObsSnapshot,
}

/// Runs the crash experiment.
#[must_use]
pub fn run(delivery: Delivery, crash_at: Time, duration: Duration, seed: u64) -> FailoverOutcome {
    let mut cfg = DeliveryScenario::paper_default(delivery);
    cfg.receivers = vec![0, 1, 2, 3, 4];
    cfg.crash_app_at = Some(crash_at);
    cfg.duration = duration;
    cfg.seed = seed;
    cfg.obs = true;
    let out = run_delivery(&cfg);
    let seconds = duration.as_micros().div_ceil(1_000_000) as usize;
    let mut per_second = vec![0u64; seconds];
    let mut unique: BTreeSet<(u64, u64)> = BTreeSet::new();
    for d in out.obs.events_named("app.delivery") {
        unique.insert((d.key, d.value));
        let bucket = (d.at.as_micros() / 1_000_000) as usize;
        if bucket < seconds {
            per_second[bucket] += 1;
        }
    }
    let promoted_at = out
        .obs
        .events_named("exec.promoted")
        .iter()
        .filter(|e| e.at > crash_at)
        .map(|e| e.at)
        .min();
    FailoverOutcome {
        per_second,
        unique_delivered: unique.len(),
        emitted: out.emitted,
        promoted_at,
        obs: out.obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CRASH: Time = Time::from_secs(24);
    const LEN: Duration = Duration::from_secs(50);

    #[test]
    fn failover_happens_within_detection_threshold() {
        let out = run(Delivery::Gapless, CRASH, LEN, 11);
        let promoted = out.promoted_at.expect("replacement promoted");
        let lag = promoted - CRASH;
        assert!(
            lag <= Duration::from_millis(3_500),
            "promotion took {lag} (2s threshold + keep-alive period expected)"
        );
    }

    #[test]
    fn gap_loses_roughly_the_detection_window() {
        let out = run(Delivery::Gap, CRASH, LEN, 11);
        let lost = out.emitted as i64 - out.unique_delivered as i64;
        // ~2s detection at 10 ev/s ≈ 20 events; allow 10–35.
        assert!(
            (10..=35).contains(&lost),
            "gap lost {lost} events (expected ≈20)"
        );
    }

    #[test]
    fn gapless_loses_nothing_and_spikes_on_catchup() {
        let out = run(Delivery::Gapless, CRASH, LEN, 11);
        let lost = out.emitted as i64 - out.unique_delivered as i64;
        assert!(lost <= 2, "gapless lost {lost} events");
        // The promotion second (or its neighbour) shows a burst well
        // above the steady 10/s.
        let promoted = out.promoted_at.expect("promoted");
        let bucket = (promoted.as_micros() / 1_000_000) as usize;
        let spike = (bucket.saturating_sub(1)..=bucket + 1)
            .filter_map(|b| out.per_second.get(b))
            .copied()
            .max()
            .unwrap_or(0);
        assert!(spike >= 20, "expected catch-up spike, saw {spike}/s");
    }

    #[test]
    fn failover_span_matches_fig7_timeline() {
        let out = run(Delivery::Gapless, CRASH, LEN, 11);
        let spans = out.obs.spans_named("failover");
        assert_eq!(spans.len(), 1, "one crash, one failover span: {spans:?}");
        let span = spans[0];
        // Opened at crash injection.
        assert_eq!(span.start, CRASH);
        // Closed by the replacement's first post-promotion delivery,
        // i.e. essentially at promotion time (replay starts there).
        let end = span.end.expect("span closed after promotion");
        let promoted = out.promoted_at.expect("promoted");
        assert!(
            end >= promoted && end <= promoted + Duration::from_millis(500),
            "span closed at {end}, promotion at {promoted}"
        );
        // The whole interruption sits inside the §8.4 envelope:
        // 2 s detection threshold plus keep-alive slack.
        let gap = span.duration().expect("closed span");
        assert!(
            gap >= Duration::from_secs(2) && gap <= Duration::from_millis(3_500),
            "failover span lasted {gap}"
        );
    }

    #[test]
    fn steady_state_rate_is_ten_per_second() {
        let out = run(Delivery::Gapless, CRASH, LEN, 11);
        // Seconds 5..20 are pre-crash steady state.
        for s in 5..20 {
            assert!(
                (8..=12).contains(&out.per_second[s]),
                "second {s}: {} events",
                out.per_second[s]
            );
        }
    }
}
