//! Routines-under-crash correctness experiment: the execution-integrity
//! suite behind `BENCH_routines.json`.
//!
//! The home under test runs a "leaving-home" routine — lights off,
//! thermostat down, door locked — staged across three actuators that
//! only the coordinating host adapts. A motion sensor triggers the
//! routine every fifth reading, and the sweep crashes the coordinator
//! (actor **and** its disk's unsynced tail) at millisecond offsets
//! around a trigger so the crash lands before staging, mid-staging,
//! between stage acks, and after the durable commit decision.
//!
//! For every run the harness asserts the two paper-level invariants:
//!
//! 1. **All-or-nothing**: cross-checking each ledger instance's staged
//!    [`rivulet_types::CommandId`]s against the actuator probes' effect
//!    logs, a firing either applied *every* step or *none* — and
//!    nothing fired for instances the ledger shows aborted.
//! 2. **Tamper-evident ledger**: reopening the coordinator's WAL after
//!    the run (including recovered runs) yields a hash chain that
//!    [`LedgerVerifier::verify`] accepts end to end; tampering with any
//!    single entry is detected at its exact index.
//!
//! Every number is reproducible bit-exactly from `(seed, crash
//! offset)` — the CI job runs the sweep twice and `cmp`s the JSON.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rivulet_core::app::{AppBuilder, CombinedWindows, CombinerSpec, OpCtx, WindowSpec};
use rivulet_core::delivery::Delivery;
use rivulet_core::deploy::{Home, HomeBuilder};
use rivulet_core::routine::RoutineSpec;
use rivulet_core::RivuletConfig;
use rivulet_devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet_net::sim::{SimConfig, SimNet};
use rivulet_obs::ObsSnapshot;
use rivulet_storage::{
    FlushPolicy, LedgerEntry, LedgerVerifier, RoutineTransition, SimBackend, StorageBackend, Wal,
    WalOptions,
};
use rivulet_types::{
    ActuationState, ActuatorId, AppId, CommandId, CommandKind, Duration, EventKind, ProcessId,
    RoutineId, Time,
};

/// The routine under test.
pub const ROUTINE: RoutineId = RoutineId(1);

/// Virtual instant of the trigger emission the crash sweep brackets
/// (the sensor's fifth-reading trigger closest to 10 s).
pub const CRASH_BASE: Time = Time::from_secs(10);

/// One routines-under-crash run configuration.
#[derive(Debug, Clone)]
pub struct RoutineScenario {
    /// Coordinator crash offset from [`CRASH_BASE`]; `None` runs the
    /// crash-free baseline.
    pub crash_offset: Option<Duration>,
    /// Virtual run length.
    pub duration: Duration,
    /// Seed for the simulator, the disks, and the ledger chain.
    pub seed: u64,
}

/// Measurements of one run.
#[derive(Debug, Clone)]
pub struct RoutineOutcome {
    /// Firings triggered at any coordinator (incl. refused ones).
    pub triggered: u64,
    /// Firings that committed.
    pub committed: u64,
    /// Firings that aborted.
    pub aborted: u64,
    /// Aborted firings whose compensation was issued.
    pub compensated: u64,
    /// Triggers refused because the acting coordinator could not reach
    /// every target (the post-crash stand-in, here).
    pub unreachable: u64,
    /// Ledger instances staged (probe ground truth).
    pub instances: usize,
    /// Instances that fired *some but not all* staged steps — the
    /// atomicity violation the suite exists to rule out.
    pub partial_firings: usize,
    /// Non-committed instances that fired anything at all.
    pub phantom_firings: usize,
    /// Entries read back from the coordinator's reopened WAL.
    pub ledger_entries: usize,
    /// First broken chain link, if verification failed.
    pub ledger_broken: Option<usize>,
    /// The recovered ledger itself (for corruption probes downstream).
    pub ledger: Vec<LedgerEntry>,
    /// Full observability snapshot of the run.
    pub obs: ObsSnapshot,
}

/// Runs one routines-under-crash scenario.
///
/// # Panics
///
/// Panics on malformed deployments (a harness bug, not a measurement).
#[must_use]
pub fn run_routine_scenario(cfg: &RoutineScenario) -> RoutineOutcome {
    let mut net = SimNet::new(SimConfig::with_seed(cfg.seed));
    net.recorder().set_enabled(true);
    let config = RivuletConfig::default()
        .with_routines(true)
        .with_routine_ledger_seed(cfg.seed)
        .with_routine_stage_timeout(Duration::from_secs(1));
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let hosts: Vec<ProcessId> = (0..3).map(|i| home.add_host(format!("host{i}"))).collect();
    let backends: Vec<Arc<SimBackend>> = (0..3)
        .map(|i| Arc::new(SimBackend::new(cfg.seed.wrapping_mul(131).wrapping_add(i))))
        .collect();
    let wal_options = WalOptions {
        flush_policy: FlushPolicy::EveryN(1),
        segment_max_bytes: 64 * 1024,
    };
    let for_factory = backends.clone();
    let mut home = home.with_storage(
        wal_options,
        Duration::from_secs(5),
        move |pid: ProcessId| {
            Arc::clone(&for_factory[pid.as_u32() as usize]) as Arc<dyn StorageBackend>
        },
    );

    let (sensor, _emissions) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_secs(1)),
        &hosts,
    );
    // All three targets are adapted by host 0 only: it is the routine
    // coordinator, and a post-crash stand-in can never stage.
    let reachers = [hosts[0]];
    let (lights, lights_probe) =
        home.add_actuator("lights", ActuationState::Switch(true), &reachers);
    let (thermostat, thermostat_probe) =
        home.add_actuator("thermostat", ActuationState::Level(21.0), &reachers);
    let (lock, lock_probe) = home.add_actuator("lock", ActuationState::Switch(false), &reachers);

    let probe = home.add_routine(
        RoutineSpec::new(ROUTINE, "leaving-home")
            .step_compensated(
                lights,
                CommandKind::Set(ActuationState::Switch(false)),
                CommandKind::Set(ActuationState::Switch(true)),
            )
            .step(thermostat, CommandKind::Set(ActuationState::Level(16.0)))
            .step_compensated(
                lock,
                CommandKind::Set(ActuationState::Switch(true)),
                CommandKind::Set(ActuationState::Switch(false)),
            ),
    );

    // Every fifth reading requests the routine; the anchor keeps the
    // active logic node on host 0 while it is alive.
    let app = AppBuilder::new(AppId(1), "scene")
        .operator(
            "leaving",
            CombinerSpec::Any,
            |ctx: &mut OpCtx, w: &CombinedWindows| {
                if w.all_events().any(|e| e.id.seq % 5 == 4) {
                    ctx.run_routine(ROUTINE);
                }
            },
        )
        .sensor(sensor, Delivery::Gapless, WindowSpec::count(1))
        .actuator(lights, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let _app_probe = home.add_app(app);
    let home: Home = home.build();

    if let Some(offset) = cfg.crash_offset {
        let h0 = home.actor_of(hosts[0]);
        let crash_at = CRASH_BASE + offset;
        net.crash_at(h0, crash_at);
        net.run_until(crash_at + Duration::from_millis(1));
        // The power loss hits the disk too: everything unsynced is
        // gone. Ledger appends sync per entry, so the chain survives.
        backends[0].crash();
        net.recover_at(h0, crash_at + Duration::from_secs(5));
    }
    net.run_until(Time::ZERO + cfg.duration);

    // Ground truth: union of every actuator's applied command ids.
    let mut fired: BTreeMap<ActuatorId, BTreeSet<CommandId>> = BTreeMap::new();
    for (id, p) in [
        (lights, &lights_probe),
        (thermostat, &thermostat_probe),
        (lock, &lock_probe),
    ] {
        fired.insert(id, p.effects().into_iter().map(|(_, c, _)| c).collect());
    }
    let mut partial_firings = 0usize;
    let mut phantom_firings = 0usize;
    let instances = probe.instances();
    for rec in &instances {
        let applied = rec
            .commands
            .iter()
            .filter(|(a, c)| fired.get(a).is_some_and(|s| s.contains(c)))
            .count();
        if applied != 0 && applied != rec.commands.len() {
            partial_firings += 1;
        }
        if applied > 0 && rec.state != RoutineTransition::Committed {
            phantom_firings += 1;
        }
    }

    // Reopen the coordinator's WAL (recovered runs included) and verify
    // the hash chain end to end.
    let (_wal, recovered) = Wal::open(
        Arc::clone(&backends[0]) as Arc<dyn StorageBackend>,
        wal_options,
    )
    .expect("reopen coordinator wal");
    let ledger = recovered.ledger;
    let ledger_broken = LedgerVerifier::verify(cfg.seed, &ledger)
        .err()
        .map(|broken| broken.index);

    RoutineOutcome {
        triggered: probe.triggered(),
        committed: probe.committed(),
        aborted: probe.aborted(),
        compensated: probe.compensated(),
        unreachable: probe.unreachable(),
        instances: instances.len(),
        partial_firings,
        phantom_firings,
        ledger_entries: ledger.len(),
        ledger_broken,
        ledger,
        obs: net.obs_snapshot(),
    }
}

/// One row of the routines-under-crash table.
#[derive(Debug, Clone)]
pub struct RoutineRow {
    /// Crash offset from [`CRASH_BASE`] in milliseconds; `None` is the
    /// crash-free baseline.
    pub crash_ms: Option<u64>,
    /// The run's measurements.
    pub outcome: RoutineOutcome,
}

/// The crash offsets (ms after [`CRASH_BASE`]) the full sweep visits:
/// before the trigger reading is delivered, during staging, between
/// stage acks, and after the durable commit decision.
pub const CRASH_OFFSETS_MS: [u64; 10] = [0, 1, 2, 3, 4, 5, 6, 8, 10, 20];

/// Runs the sweep: the crash-free baseline plus one run per crash
/// offset.
#[must_use]
pub fn routines_table(offsets_ms: &[u64], duration: Duration, seed: u64) -> Vec<RoutineRow> {
    let mut rows = vec![RoutineRow {
        crash_ms: None,
        outcome: run_routine_scenario(&RoutineScenario {
            crash_offset: None,
            duration,
            seed,
        }),
    }];
    for &ms in offsets_ms {
        rows.push(RoutineRow {
            crash_ms: Some(ms),
            outcome: run_routine_scenario(&RoutineScenario {
                crash_offset: Some(Duration::from_millis(ms)),
                duration,
                seed,
            }),
        });
    }
    rows
}

/// Tampers with every entry of `ledger` in turn and counts how many
/// corruptions [`LedgerVerifier::verify`] pinpoints at the exact
/// tampered index. Returns `(entries, exact_detections)` — the gate
/// requires them equal.
#[must_use]
pub fn corruption_exactness(seed: u64, ledger: &[LedgerEntry]) -> (usize, usize) {
    let mut exact = 0usize;
    for k in 0..ledger.len() {
        let mut tampered = ledger.to_vec();
        tampered[k].instance ^= 1;
        if LedgerVerifier::verify(seed, &tampered)
            .err()
            .is_some_and(|broken| broken.index == k)
        {
            exact += 1;
        }
    }
    (ledger.len(), exact)
}

/// Renders the sweep as a markdown table (EXPERIMENTS.md format).
#[must_use]
pub fn render_table(rows: &[RoutineRow]) -> String {
    let mut out = String::from(
        "| crash | staged | committed | aborted | compensated | partial | phantom | ledger | verified |\n\
         |-------|--------|-----------|---------|-------------|---------|---------|--------|----------|\n",
    );
    for r in rows {
        let o = &r.outcome;
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.crash_ms
                .map_or_else(|| "none".to_owned(), |ms| format!("+{ms}ms")),
            o.instances,
            o.committed,
            o.aborted,
            o.compensated,
            o.partial_firings,
            o.phantom_firings,
            o.ledger_entries,
            if o.ledger_broken.is_none() {
                "ok"
            } else {
                "BROKEN"
            },
        ));
    }
    out
}

/// Renders the sweep plus the corruption probe as the
/// `BENCH_routines.json` document.
#[must_use]
pub fn render_json(rows: &[RoutineRow], corruption: (usize, usize)) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let o = &r.outcome;
            format!(
                concat!(
                    "{{\"crash_ms\": {}, \"triggered\": {}, \"staged\": {}, ",
                    "\"committed\": {}, \"aborted\": {}, \"compensated\": {}, ",
                    "\"unreachable\": {}, \"partial_firings\": {}, ",
                    "\"phantom_firings\": {}, \"ledger_entries\": {}, ",
                    "\"ledger_ok\": {}, \"recovered_aborts\": {}, \"recommits\": {}}}"
                ),
                r.crash_ms
                    .map_or_else(|| "null".to_owned(), |ms| ms.to_string()),
                o.triggered,
                o.instances,
                o.committed,
                o.aborted,
                o.compensated,
                o.unreachable,
                o.partial_firings,
                o.phantom_firings,
                o.ledger_entries,
                o.ledger_broken.is_none(),
                o.obs.counter("routine.recovered_aborts"),
                o.obs.counter("routine.recommits"),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n  \"rows\": [\n    {}\n  ],\n",
            "  \"corruption\": {{\"entries\": {}, \"exact_detections\": {}}}\n}}\n"
        ),
        body.join(",\n    "),
        corruption.0,
        corruption.1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_commits_every_firing_and_ledger_verifies() {
        let o = run_routine_scenario(&RoutineScenario {
            crash_offset: None,
            duration: Duration::from_secs(30),
            seed: 42,
        });
        assert!(o.instances >= 4, "staged {} instances", o.instances);
        assert_eq!(o.committed as usize, o.instances, "all firings commit");
        assert_eq!(o.partial_firings, 0);
        assert_eq!(o.phantom_firings, 0);
        assert_eq!(o.ledger_broken, None, "chain verifies");
        // Staged + Committed per instance.
        assert_eq!(o.ledger_entries, o.instances * 2);
    }

    #[test]
    fn mid_staging_crash_never_fires_partially() {
        // +2 ms lands inside the staging round trip (radio ≈1 ms/hop).
        let o = run_routine_scenario(&RoutineScenario {
            crash_offset: Some(Duration::from_millis(2)),
            duration: Duration::from_secs(30),
            seed: 42,
        });
        assert_eq!(o.partial_firings, 0, "all-or-nothing under crash");
        assert_eq!(o.phantom_firings, 0);
        assert_eq!(o.ledger_broken, None, "recovered chain verifies");
        assert!(o.instances >= 4, "staged {} instances", o.instances);
    }

    #[test]
    fn corruption_is_pinpointed_exactly() {
        let o = run_routine_scenario(&RoutineScenario {
            crash_offset: None,
            duration: Duration::from_secs(30),
            seed: 42,
        });
        let (entries, exact) = corruption_exactness(42, &o.ledger);
        assert!(entries >= 8, "ledger has {entries} entries");
        assert_eq!(exact, entries, "every corruption detected at its index");
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = RoutineScenario {
            crash_offset: Some(Duration::from_millis(4)),
            duration: Duration::from_secs(20),
            seed: 7,
        };
        let a = run_routine_scenario(&cfg);
        let b = run_routine_scenario(&cfg);
        assert_eq!(a.ledger, b.ledger, "ledger is a pure function of seed");
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aborted, b.aborted);
    }
}
