//! Fig. 5 — network overhead normalized against Gap.
//!
//! Five processes; the number of event-receiving processes varies from
//! one to five; Gapless (ring) and the naive broadcast baseline are
//! normalized against Gap's bytes-on-wire for the same workload.
//! Platform background traffic (keep-alives, sync) is measured with a
//! silent sensor and subtracted, leaving exactly the "data transferred
//! over the home network for delivering an event" of §8.2.

use rivulet_core::config::ForwardingMode;
use rivulet_core::delivery::Delivery;
use rivulet_types::Duration;

use crate::common::{background_wifi_bytes, run_delivery, DeliveryScenario};

/// The protocols compared by the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Gap chain (the normalization baseline).
    Gap,
    /// Gapless ring (§4.1).
    GaplessRing,
    /// Naive broadcast-from-every-receiver baseline.
    Broadcast,
}

impl Protocol {
    fn to_config(self) -> (Delivery, ForwardingMode) {
        match self {
            Protocol::Gap => (Delivery::Gap, ForwardingMode::Ring),
            Protocol::GaplessRing => (Delivery::Gapless, ForwardingMode::Ring),
            Protocol::Broadcast => (Delivery::Gapless, ForwardingMode::EagerBroadcast),
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Protocol::Gap => write!(f, "Gap"),
            Protocol::GaplessRing => write!(f, "Gapless"),
            Protocol::Broadcast => write!(f, "Broadcast"),
        }
    }
}

/// Delivery-attributable WiFi bytes for one configuration.
#[must_use]
pub fn delivery_bytes(
    protocol: Protocol,
    receiving: usize,
    event_bytes: usize,
    duration: Duration,
) -> u64 {
    let (delivery, forwarding) = protocol.to_config();
    let mut cfg = DeliveryScenario::paper_default(delivery);
    cfg.forwarding = forwarding;
    cfg.event_bytes = event_bytes;
    cfg.duration = duration;
    // Receivers 1..=receiving, keeping the app process (0) a
    // non-receiver until all five receive.
    cfg.receivers = (0..receiving).map(|i| (i + 1) % 5).collect();
    cfg.receivers.sort_unstable();
    cfg.obs = true;
    let total = run_delivery(&cfg).obs.counter("net.wifi_bytes");
    let background = background_wifi_bytes(&cfg);
    total.saturating_sub(background)
}

/// One normalized cell of the figure.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Protocol measured.
    pub protocol: Protocol,
    /// Number of event-receiving processes.
    pub receiving: usize,
    /// Event size label.
    pub size_label: &'static str,
    /// Bytes relative to Gap for the same cell.
    pub normalized: f64,
}

/// Full sweep of the figure: receiving ∈ 1..=5, sizes 4 B / 1 KB / 20 KB.
///
/// Normalization follows the figure's dotted line: a single Gap
/// reference per event size (one receiving process forwarding one hop
/// per event). Normalizing per-cell would divide by zero at five
/// receivers, where Gap's app-bearing process hears the sensor
/// directly and sends nothing.
#[must_use]
pub fn sweep(duration: Duration) -> Vec<OverheadPoint> {
    let sizes: [(&str, usize); 3] = [("4B", 4), ("1KB", 1024), ("20KB", 20 * 1024)];
    let mut out = Vec::new();
    for (label, bytes) in sizes {
        let gap_ref = delivery_bytes(Protocol::Gap, 1, bytes, duration).max(1);
        for receiving in 1..=5 {
            for protocol in [Protocol::GaplessRing, Protocol::Broadcast] {
                let measured = delivery_bytes(protocol, receiving, bytes, duration);
                out.push(OverheadPoint {
                    protocol,
                    receiving,
                    size_label: label,
                    normalized: measured as f64 / gap_ref as f64,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: Duration = Duration::from_secs(15);

    #[test]
    fn gapless_ring_overhead_is_constant_in_receivers() {
        // The paper's key claim: ring cost is n messages regardless of
        // how many processes heard the sensor.
        let one = delivery_bytes(Protocol::GaplessRing, 1, 4, SHORT);
        let five = delivery_bytes(Protocol::GaplessRing, 5, 4, SHORT);
        let ratio = five as f64 / one.max(1) as f64;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "ring bytes should be ~flat: 1 rx {one}, 5 rx {five}"
        );
    }

    #[test]
    fn broadcast_overhead_grows_with_receivers() {
        let one = delivery_bytes(Protocol::Broadcast, 1, 4, SHORT);
        let five = delivery_bytes(Protocol::Broadcast, 5, 4, SHORT);
        assert!(
            five as f64 >= 2.5 * one as f64,
            "broadcast should blow up with receivers: {one} vs {five}"
        );
    }

    #[test]
    fn gapless_beats_broadcast_at_multiple_receivers() {
        let ring = delivery_bytes(Protocol::GaplessRing, 3, 4, SHORT);
        let bcast = delivery_bytes(Protocol::Broadcast, 3, 4, SHORT);
        assert!(ring < bcast, "ring {ring} vs broadcast {bcast}");
    }

    #[test]
    fn gap_is_cheapest() {
        let gap = delivery_bytes(Protocol::Gap, 3, 4, SHORT);
        let ring = delivery_bytes(Protocol::GaplessRing, 3, 4, SHORT);
        assert!(gap < ring, "gap {gap} vs ring {ring}");
    }

    #[test]
    fn large_events_amortize_metadata() {
        // Normalized Gapless overhead shrinks as events grow (Fig. 5's
        // closing observation).
        let small_gap = delivery_bytes(Protocol::Gap, 2, 4, SHORT).max(1);
        let small_ring = delivery_bytes(Protocol::GaplessRing, 2, 4, SHORT);
        let big_gap = delivery_bytes(Protocol::Gap, 2, 20 * 1024, SHORT).max(1);
        let big_ring = delivery_bytes(Protocol::GaplessRing, 2, 20 * 1024, SHORT);
        let small_norm = small_ring as f64 / small_gap as f64;
        let big_norm = big_ring as f64 / big_gap as f64;
        assert!(
            big_norm <= small_norm,
            "normalized overhead should not grow with event size: {small_norm} vs {big_norm}"
        );
    }
}
