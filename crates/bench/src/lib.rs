//! Workload generators and experiment scenarios reproducing every
//! table and figure of the Rivulet paper's evaluation (§8).
//!
//! Each module builds a deterministic simulated deployment, runs it,
//! and returns the measurements the corresponding figure plots. The
//! `figures` binary renders them as the paper's rows; the Criterion
//! benches wrap the same scenarios.
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`fig1`] | Fig. 1 — event-count skew across processes in a home deployment |
//! | [`fig3`] | Fig. 3 — Gap vs Gapless under scripted link loss |
//! | [`fig4`] | Fig. 4 — delivery delay vs number of processes |
//! | [`fig5`] | Fig. 5 — network overhead of Gapless and broadcast vs Gap |
//! | [`fig6`] | Fig. 6 — % events delivered under sensor-process link loss |
//! | [`fig7`] | Fig. 7 — failover timeline around an induced process crash |
//! | [`fig8`] | Fig. 8 — coordinated vs uncoordinated polling overhead |
//! | [`tables`] | Tables 1 and 3 — app and sensor surveys |
//! | [`fanout`] | encode-once fan-out + frame coalescing throughput (`BENCH_fanout.json`) |
//! | [`fault`] | correctness vs device-fault rate, repair off/on (`BENCH_fault.json`) |
//! | [`routine`] | routines under injected crashes + ledger audit (`BENCH_routines.json`) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod fanout;
pub mod fault;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod routine;
pub mod tables;
