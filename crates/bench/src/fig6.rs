//! Fig. 6 — percentage of events delivered under sensor-process link
//! loss.
//!
//! Five processes, receivers placed farthest from the app-bearing
//! process, 4-byte events at 10/s, loss rates up to 50 %, and 1–5
//! receiving processes. Gap forwards from a single receiver, so it
//! delivers `1 − loss`; Gapless retrieves events across receivers and
//! approaches `1 − lossᵐ`.

use rivulet_core::delivery::Delivery;
use rivulet_types::Duration;

use crate::common::{run_delivery, DeliveryScenario};

/// One cell: fraction of emitted events the application processed.
#[must_use]
pub fn delivered_fraction(
    delivery: Delivery,
    loss: f64,
    receiving: usize,
    duration: Duration,
    seed: u64,
) -> f64 {
    let mut cfg = DeliveryScenario::paper_default(delivery);
    cfg.loss = loss;
    cfg.duration = duration;
    // Receivers are the non-app processes 1..=receiving (app process 0
    // joins last, at receiving = 5).
    cfg.receivers = (0..receiving).map(|i| (i + 1) % 5).collect();
    cfg.receivers.sort_unstable();
    cfg.seed = seed;
    run_delivery(&cfg).delivered_fraction()
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct LossPoint {
    /// Delivery guarantee.
    pub delivery: Delivery,
    /// Link loss probability.
    pub loss: f64,
    /// Number of receiving processes.
    pub receiving: usize,
    /// Fraction delivered.
    pub fraction: f64,
}

/// The paper's loss rates.
pub const LOSS_RATES: [f64; 5] = [0.0001, 0.001, 0.01, 0.10, 0.50];

/// Full figure sweep.
#[must_use]
pub fn sweep(duration: Duration, seed: u64) -> Vec<LossPoint> {
    let mut out = Vec::new();
    for delivery in [Delivery::Gap, Delivery::Gapless] {
        for loss in LOSS_RATES {
            for receiving in [1usize, 2, 4, 5] {
                out.push(LossPoint {
                    delivery,
                    loss,
                    receiving,
                    fraction: delivered_fraction(delivery, loss, receiving, duration, seed),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: Duration = Duration::from_secs(30);

    #[test]
    fn low_loss_both_deliver_nearly_everything() {
        for delivery in [Delivery::Gap, Delivery::Gapless] {
            let f = delivered_fraction(delivery, 0.001, 2, SHORT, 7);
            assert!(f > 0.98, "{delivery}: {f}");
        }
    }

    #[test]
    fn gap_at_ten_percent_loss_delivers_about_ninety() {
        let f = delivered_fraction(Delivery::Gap, 0.10, 2, SHORT, 7);
        assert!((0.85..=0.95).contains(&f), "expected ~0.90, got {f}");
    }

    #[test]
    fn gapless_at_ten_percent_loss_recovers_across_receivers() {
        let f = delivered_fraction(Delivery::Gapless, 0.10, 2, SHORT, 7);
        assert!(f > 0.97, "expected ~0.99, got {f}");
    }

    #[test]
    fn fifty_percent_loss_matches_paper_shape() {
        // Paper: Gap ≈ 50 %; Gapless ≈ 75 % at two receivers, ~95 % at
        // five.
        let gap = delivered_fraction(Delivery::Gap, 0.50, 2, SHORT, 7);
        assert!((0.42..=0.58).contains(&gap), "gap {gap}");
        let g2 = delivered_fraction(Delivery::Gapless, 0.50, 2, SHORT, 7);
        assert!((0.65..=0.85).contains(&g2), "gapless 2rx {g2}");
        let g5 = delivered_fraction(Delivery::Gapless, 0.50, 5, SHORT, 7);
        assert!(g5 > 0.90, "gapless 5rx {g5}");
        assert!(g5 > g2 && g2 > gap, "ordering violated: {gap} {g2} {g5}");
    }
}
