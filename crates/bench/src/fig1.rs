//! Fig. 1 — event-count skew across processes in a home deployment.
//!
//! The paper deployed four motion and two door Z-Wave sensors
//! multicasting to three processes for 15 days and observed large
//! per-process skews (2357 events difference for Door 1) caused by
//! radio interference and obstructions. We replay that deployment as a
//! seeded simulation: each sensor–process link gets a loss profile
//! (ambient interference plus per-pair obstructions such as the
//! concrete wall that starves one hub of Door 1's events), and we count
//! frames received per process.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rivulet_devices::frame::RadioFrame;
use rivulet_devices::radio::{FloorPlan, Position};
use rivulet_devices::sensor::{EmissionProbe, EmissionSchedule, PayloadSpec, PushSensor};
use rivulet_net::actor::{Actor, ActorEvent, ActorId, Context};
use rivulet_net::link::ActorClass;
use rivulet_net::sim::{SimConfig, SimNet};
use rivulet_types::wire::Wire;
use rivulet_types::{Duration, EventKind, SensorId, Time};

/// A process that simply counts received events per sensor.
struct CountingProcess {
    counts: Arc<Mutex<HashMap<(SensorId, usize), u64>>>,
    index: usize,
}

impl Actor for CountingProcess {
    fn on_event(&mut self, _ctx: &mut Context<'_>, event: ActorEvent) {
        if let ActorEvent::Message { payload, .. } = event {
            if let Ok(RadioFrame::Event(ev)) = RadioFrame::from_bytes(&payload) {
                *self
                    .counts
                    .lock()
                    .expect("lock")
                    .entry((ev.id.sensor, self.index))
                    .or_insert(0) += 1;
            }
        }
    }
}

/// One sensor's row of the figure.
#[derive(Debug, Clone)]
pub struct SkewRow {
    /// Sensor label ("Motion 1", "Door 1", …).
    pub sensor: String,
    /// Events the sensor emitted.
    pub emitted: u64,
    /// Events received at each of the three processes.
    pub received: [u64; 3],
}

impl SkewRow {
    /// Largest minus smallest per-process count — the skew the figure
    /// highlights.
    #[must_use]
    pub fn skew(&self) -> u64 {
        let max = self.received.iter().max().copied().unwrap_or(0);
        let min = self.received.iter().min().copied().unwrap_or(0);
        max - min
    }
}

/// Runs the deployment replay. `days` scales the deployment length
/// (the paper ran 15 days; 1 day already shows the effect).
#[must_use]
pub fn run(days: f64, seed: u64) -> Vec<SkewRow> {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    let counts: Arc<Mutex<HashMap<(SensorId, usize), u64>>> = Arc::new(Mutex::new(HashMap::new()));

    // Three processes spread across the home.
    let mut process_actors: Vec<ActorId> = Vec::new();
    for index in 0..3 {
        let c = Arc::clone(&counts);
        let actor = net.add_actor(&format!("process{index}"), ActorClass::Process, move || {
            Box::new(CountingProcess {
                counts: Arc::clone(&c),
                index,
            })
        });
        process_actors.push(actor);
    }

    // Floor plan: processes at kitchen / living room / bedroom;
    // obstructions model the walls and copper siding of §2.1.
    let mut plan = FloorPlan::new();
    plan.set_ambient_loss(0.01);
    let proc_pos = [
        plan.place(Position::new(2.0, 2.0)),
        plan.place(Position::new(12.0, 3.0)),
        plan.place(Position::new(7.0, 12.0)),
    ];

    // Sensors: four motion (Poisson, human-triggered) and two door.
    let sensor_defs: [(&str, EventKind, Duration, Position); 6] = [
        (
            "Motion 1",
            EventKind::Motion,
            Duration::from_secs(60),
            Position::new(3.0, 4.0),
        ),
        (
            "Motion 2",
            EventKind::Motion,
            Duration::from_secs(90),
            Position::new(11.0, 2.0),
        ),
        (
            "Motion 3",
            EventKind::Motion,
            Duration::from_secs(120),
            Position::new(8.0, 10.0),
        ),
        (
            "Motion 4",
            EventKind::Motion,
            Duration::from_secs(45),
            Position::new(5.0, 8.0),
        ),
        (
            "Door 1",
            EventKind::DoorOpen,
            Duration::from_secs(300),
            Position::new(1.0, 9.0),
        ),
        (
            "Door 2",
            EventKind::DoorOpen,
            Duration::from_secs(400),
            Position::new(13.0, 8.0),
        ),
    ];

    let mut rows: Vec<(String, Arc<EmissionProbe>, SensorId)> = Vec::new();
    for (i, (name, kind, mean, pos)) in sensor_defs.iter().enumerate() {
        let sensor_id = SensorId(i as u32);
        let place = plan.place(*pos);
        // Heavy obstruction between Door 1 and process 0: the paper's
        // 2357-event skew case.
        if *name == "Door 1" {
            plan.add_obstruction(place, proc_pos[0], 0.45);
        }
        // Mild obstructions elsewhere, by distance.
        let probe = EmissionProbe::new();
        let p = Arc::clone(&probe);
        let targets = process_actors.clone();
        let schedule = EmissionSchedule::Poisson { mean: *mean };
        let payload = PayloadSpec::KindOnly(*kind);
        let sensor_actor = net.add_actor(name, ActorClass::Device, move || {
            Box::new(PushSensor::new(
                sensor_id,
                payload.clone(),
                schedule.clone(),
                targets.clone(),
                Arc::clone(&p),
            ))
        });
        // Apply floor-plan loss to each sensor→process link (distance
        // adds attenuation on top of obstructions).
        for (pi, pp) in proc_pos.iter().enumerate() {
            let base = plan.link_loss(place, *pp);
            let dist = sensor_defs[i].3.distance_to(
                [
                    Position::new(2.0, 2.0),
                    Position::new(12.0, 3.0),
                    Position::new(7.0, 12.0),
                ][pi],
            );
            let distance_loss = (dist / 40.0).min(0.6) * 0.3;
            let loss = 1.0 - (1.0 - base) * (1.0 - distance_loss);
            net.topology_mut()
                .set_loss(sensor_actor, process_actors[pi], loss);
        }
        rows.push(((*name).to_owned(), probe, sensor_id));
    }

    let horizon = Duration::from_secs((days * 86_400.0) as u64);
    net.run_until(Time::ZERO + horizon);

    let counts = counts.lock().expect("lock");
    rows.into_iter()
        .map(|(name, probe, id)| {
            let received = [
                counts.get(&(id, 0)).copied().unwrap_or(0),
                counts.get(&(id, 1)).copied().unwrap_or(0),
                counts.get(&(id, 2)).copied().unwrap_or(0),
            ];
            SkewRow {
                sensor: name,
                emitted: probe.emitted(),
                received,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_shows_skew() {
        let rows = run(0.25, 5);
        assert_eq!(rows.len(), 6);
        // Every sensor emitted and was heard somewhere.
        for row in &rows {
            assert!(row.emitted > 0, "{} emitted nothing", row.sensor);
            assert!(
                row.received.iter().sum::<u64>() > 0,
                "{} unheard",
                row.sensor
            );
        }
        // Door 1 (obstructed toward process 0) shows the largest
        // relative skew toward that process.
        let door1 = rows.iter().find(|r| r.sensor == "Door 1").unwrap();
        assert!(
            door1.received[0] < door1.received[1] && door1.received[0] < door1.received[2],
            "Door 1 counts {:?}",
            door1.received
        );
        assert!(door1.skew() > 0);
    }

    #[test]
    fn skew_is_deterministic_per_seed() {
        let a = run(0.05, 9);
        let b = run(0.05, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.received, y.received);
            assert_eq!(x.emitted, y.emitted);
        }
    }
}
