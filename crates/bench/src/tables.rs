//! Tables 1 and 3 — the application and sensor surveys — the Fig. 2
//! deployment diagram, and the fan-out coalescing counter table,
//! rendered as text for the `figures` and `bench` binaries.

use rivulet_core::app::catalog as app_catalog;
use rivulet_core::execution::placement::{chain_for, Reachability};
use rivulet_devices::catalog as device_catalog;
use rivulet_net::metrics::FanoutSnapshot;
use rivulet_types::{ActuatorId, ProcessId, SensorId};

/// Renders Table 1 (applications and their delivery guarantees).
#[must_use]
pub fn render_table1() -> String {
    let mut out =
        String::from("Table 1: desired delivery types for selected example applications\n");
    out.push_str(&format!(
        "{:<26} {:<30} {:<12} {:>8}\n",
        "Application", "Sensor type", "Category", "Delivery"
    ));
    for row in app_catalog::table1() {
        out.push_str(&format!(
            "{:<26} {:<30} {:<12} {:>8}\n",
            row.name,
            row.sensors,
            row.category.to_string(),
            row.delivery.to_string()
        ));
    }
    out
}

/// Renders Table 3 (sensor event-size classes).
#[must_use]
pub fn render_table3() -> String {
    let mut out = String::from("Table 3: classification of off-the-shelf sensors\n");
    out.push_str(&format!(
        "{:<16} {:<6} {:<14} {:>12}\n",
        "Sensor", "Mode", "Size class", "Event bytes"
    ));
    for e in device_catalog::survey() {
        out.push_str(&format!(
            "{:<16} {:<6} {:<14} {:>12}\n",
            e.name,
            match e.mode {
                device_catalog::SensingMode::Push => "push",
                device_catalog::SensingMode::Poll => "poll",
            },
            e.size_class.to_string(),
            e.event_bytes
        ));
    }
    out
}

/// Renders Fig. 2: the paper's running-example deployment — which
/// processes host active vs shadow sensor/actuator/logic nodes for the
/// door→TurnLightOnOff→light app on a hub/TV/fridge home.
#[must_use]
pub fn render_fig2() -> String {
    // Fig. 2 reachability: the door sensor talks to TV and fridge; the
    // light actuator talks to the hub only.
    let hosts = ["hub", "tv", "fridge"];
    let door = SensorId(0);
    let light = ActuatorId(0);
    let reach = vec![
        Reachability::new(ProcessId(0), vec![], vec![light]),
        Reachability::new(ProcessId(1), vec![door], vec![]),
        Reachability::new(ProcessId(2), vec![door], vec![]),
    ];
    let chain = chain_for(&reach, &[door], &[light]);
    let active_logic = chain[0];
    let mut out = String::from(
        "Figure 2: node deployment for DoorSensor => TurnLightOnOff => LightActuator
",
    );
    out.push_str(&format!(
        "placement chain: {:?} (position 0 hosts the active logic node)
",
        chain
            .iter()
            .map(|p| hosts[p.as_u32() as usize])
            .collect::<Vec<_>>()
    ));
    out.push_str(&format!(
        "{:<8} {:>14} {:>14} {:>14}
",
        "host", "DS (sensor)", "TL (logic)", "LA (actuator)"
    ));
    for (i, host) in hosts.iter().enumerate() {
        let pid = ProcessId(i as u32);
        let ds = if reach[i].sensors.contains(&door) {
            "active"
        } else {
            "shadow"
        };
        let tl = if pid == active_logic {
            "active"
        } else {
            "shadow"
        };
        let la = if reach[i].actuators.contains(&light) {
            "active"
        } else {
            "shadow"
        };
        out.push_str(&format!(
            "{host:<8} {ds:>14} {tl:>14} {la:>14}
"
        ));
    }
    out
}

/// A dead (zero) counter renders as `-` so it cannot be mistaken for a
/// small-but-live one: a column of dashes says "this path never fired",
/// which is exactly the signal that caught the dead cumulative-ack
/// wiring.
fn fmt_counter(v: u64) -> String {
    if v == 0 {
        "-".to_owned()
    } else {
        v.to_string()
    }
}

/// Renders the encode-once / frame-coalescing counters of a set of
/// labelled runs as one table (consumed by the `bench` binary next to
/// `BENCH_fanout.json`). Rows are `(label, events/s, counters)`; every
/// `<workload>/after` row also reports its speedup over the matching
/// `<workload>/before` row, so an optimized-mode regression is visible
/// as a `< 1.00x` entry right in the printed table.
#[must_use]
pub fn render_fanout_table(rows: &[(String, f64, FanoutSnapshot)]) -> String {
    let mut out = String::from(
        "Fan-out savings: frames coalesced / messages avoided / encode bytes saved / acks avoided\n",
    );
    out.push_str(&format!(
        "{:<24} {:>12} {:>10} {:>12} {:>16} {:>12} {:>9}\n",
        "run", "events/s", "frames", "msgs-avoid", "enc-bytes-saved", "acks-avoid", "speedup"
    ));
    for (label, events_per_sec, snap) in rows {
        let speedup = label
            .strip_suffix("/after")
            .and_then(|workload| {
                let twin = format!("{workload}/before");
                rows.iter().find(|(l, ..)| *l == twin)
            })
            .map_or_else(
                || "-".to_owned(),
                |(_, base, _)| {
                    if *base > 0.0 {
                        format!("{:.2}x", events_per_sec / base)
                    } else {
                        "-".to_owned()
                    }
                },
            );
        out.push_str(&format!(
            "{label:<24} {:>12.0} {:>10} {:>12} {:>16} {:>12} {speedup:>9}\n",
            events_per_sec,
            fmt_counter(snap.frames_coalesced),
            fmt_counter(snap.messages_avoided),
            fmt_counter(snap.encode_bytes_saved),
            fmt_counter(snap.acks_avoided),
        ));
    }
    out
}

/// One row of a fleet per-axis breakdown: all homes sharing one value
/// of one manifest axis, aggregated.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisRow {
    /// Manifest axis key (e.g. `loss`).
    pub axis: String,
    /// The axis value these homes share, as the manifest wrote it.
    pub value: String,
    /// Homes in this group.
    pub homes: u64,
    /// Events emitted across the group.
    pub emitted: u64,
    /// Events delivered across the group.
    pub delivered: u64,
    /// Homes that missed their delivery-correctness floor.
    pub failed: u64,
}

impl AxisRow {
    /// Group-wide delivered fraction.
    #[must_use]
    pub fn delivered_fraction(&self) -> f64 {
        if self.emitted == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.emitted as f64
    }
}

/// Renders a fleet's per-axis breakdown (delivery rate vs. each
/// manifest axis) as one table. Rows arrive grouped by axis; a blank
/// line separates axes so e.g. the link-quality sweep reads as a unit.
#[must_use]
pub fn render_axis_table(rows: &[AxisRow]) -> String {
    let mut out = String::from("Fleet breakdown: delivery rate by manifest axis\n");
    out.push_str(&format!(
        "{:<22} {:<14} {:>7} {:>10} {:>10} {:>10} {:>7}\n",
        "axis", "value", "homes", "emitted", "delivered", "rate", "failed"
    ));
    let mut last_axis: Option<&str> = None;
    for row in rows {
        if last_axis.is_some_and(|a| a != row.axis) {
            out.push('\n');
        }
        last_axis = Some(&row.axis);
        out.push_str(&format!(
            "{:<22} {:<14} {:>7} {:>10} {:>10} {:>9.1}% {:>7}\n",
            row.axis,
            row.value,
            row.homes,
            row.emitted,
            row.delivered,
            row.delivered_fraction() * 100.0,
            fmt_counter(row.failed),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_table_groups_by_axis() {
        let rows = vec![
            AxisRow {
                axis: "loss".into(),
                value: "0".into(),
                homes: 8,
                emitted: 800,
                delivered: 800,
                failed: 0,
            },
            AxisRow {
                axis: "loss".into(),
                value: "0.1".into(),
                homes: 8,
                emitted: 800,
                delivered: 792,
                failed: 0,
            },
            AxisRow {
                axis: "ack_mode".into(),
                value: "cumulative".into(),
                homes: 8,
                emitted: 800,
                delivered: 796,
                failed: 1,
            },
        ];
        let t = render_axis_table(&rows);
        assert!(t.contains("loss"));
        assert!(t.contains("ack_mode"));
        assert!(t.contains("99.0%"), "{t}");
        // Zero failures render as a dash, like every dead counter.
        assert!(t.lines().any(|l| l.trim_end().ends_with('-')), "{t}");
        // One blank separator between the two axes.
        assert_eq!(t.matches("\n\n").count(), 1, "{t}");
    }

    #[test]
    fn tables_render_all_rows() {
        let t1 = render_table1();
        assert_eq!(t1.lines().count(), 2 + 13);
        assert!(t1.contains("Intrusion-detection"));
        assert!(t1.contains("Gapless"));
        let t3 = render_table3();
        assert!(t3.contains("temperature"));
        assert!(t3.contains("ip-camera"));
    }

    #[test]
    fn fig2_matches_the_paper_walkthrough() {
        let f2 = render_fig2();
        // The hub hosts the active logic and actuator nodes; its door
        // sensor node is a shadow (it cannot hear the sensor).
        let hub_line = f2.lines().find(|l| l.starts_with("hub")).unwrap();
        assert!(
            hub_line.contains("shadow"),
            "hub DS is a shadow: {hub_line}"
        );
        assert_eq!(hub_line.matches("active").count(), 2, "{hub_line}");
        let tv_line = f2.lines().find(|l| l.starts_with("tv")).unwrap();
        assert!(tv_line.starts_with("tv"));
        assert_eq!(tv_line.matches("active").count(), 1, "TV: active DS only");
    }

    #[test]
    fn fanout_table_renders_every_row() {
        let rows = vec![
            (
                "ring/before".to_owned(),
                50_000.0,
                FanoutSnapshot::default(),
            ),
            (
                "ring/after".to_owned(),
                60_000.0,
                FanoutSnapshot {
                    frames_coalesced: 3,
                    messages_avoided: 4,
                    encode_bytes_saved: 1024,
                    acks_avoided: 7,
                },
            ),
        ];
        let t = render_fanout_table(&rows);
        assert_eq!(t.lines().count(), 2 + rows.len());
        assert!(t.contains("ring/after"));
        assert!(t.contains("1024"));
        // The optimized row reports its speedup over the before twin.
        assert!(t.contains("1.20x"), "speedup column missing: {t}");
    }

    #[test]
    fn fanout_table_dashes_zero_counters_and_unpaired_rows() {
        let rows = vec![(
            "micro/after".to_owned(),
            1_000_000.0,
            FanoutSnapshot::default(),
        )];
        let t = render_fanout_table(&rows);
        let row = t.lines().last().unwrap();
        // All four counters are zero and there is no before twin: every
        // one of them, plus the speedup cell, renders as a dash.
        assert_eq!(row.matches(" -").count(), 5, "row was: {row}");
        assert!(!row.contains(" 0 "), "zero must not render as 0: {row}");
    }
}
