//! Fig. 4 — delivery delay with increasing number of processes.
//!
//! (a) the event-receiving process is placed farthest from the
//! application-bearing process; (b) the application-bearing process
//! receives directly. One sensor, 10 events/s, event sizes from
//! Table 3, 2–5 processes, Gap vs Gapless.

use rivulet_core::delivery::Delivery;
use rivulet_types::Duration;

use crate::common::{run_delivery, DeliveryScenario, EVENT_SIZES};

/// One measured cell of the figure.
#[derive(Debug, Clone)]
pub struct DelayPoint {
    /// Delivery guarantee.
    pub delivery: Delivery,
    /// Event size label ("4B", …).
    pub size_label: &'static str,
    /// Number of processes.
    pub n_processes: usize,
    /// Mean sensor→logic delay.
    pub mean_delay: Duration,
}

/// Runs one cell.
#[must_use]
pub fn measure(
    delivery: Delivery,
    event_bytes: usize,
    n_processes: usize,
    farthest: bool,
    duration: Duration,
) -> Option<Duration> {
    let mut cfg = DeliveryScenario::paper_default(delivery);
    cfg.n_processes = n_processes;
    cfg.receivers = if farthest {
        vec![1.min(n_processes - 1)]
    } else {
        vec![0]
    };
    cfg.event_bytes = event_bytes;
    cfg.duration = duration;
    run_delivery(&cfg).mean_delay
}

/// Produces the full Fig. 4a (farthest) or 4b (direct) sweep.
#[must_use]
pub fn sweep(farthest: bool, duration: Duration) -> Vec<DelayPoint> {
    let mut out = Vec::new();
    for delivery in [Delivery::Gap, Delivery::Gapless] {
        for (label, bytes) in EVENT_SIZES {
            for n in 2..=5 {
                if let Some(mean) = measure(delivery, bytes, n, farthest, duration) {
                    out.push(DelayPoint {
                        delivery,
                        size_label: label,
                        n_processes: n,
                        mean_delay: mean,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: Duration = Duration::from_secs(15);

    #[test]
    fn gapless_delay_grows_with_ring_length() {
        let d2 = measure(Delivery::Gapless, 4, 2, true, SHORT).unwrap();
        let d5 = measure(Delivery::Gapless, 4, 5, true, SHORT).unwrap();
        assert!(
            d5 > d2,
            "Gapless must traverse a longer ring at 5 processes: {d2} vs {d5}"
        );
    }

    #[test]
    fn gap_delay_roughly_flat_in_process_count() {
        let d2 = measure(Delivery::Gap, 4, 2, true, SHORT).unwrap();
        let d5 = measure(Delivery::Gap, 4, 5, true, SHORT).unwrap();
        // One forwarding hop regardless of n (modest growth from
        // keep-alive load is acceptable, 3x is not).
        assert!(
            d5.as_micros() < d2.as_micros() * 2,
            "gap delay exploded: {d2} vs {d5}"
        );
    }

    #[test]
    fn larger_events_take_longer() {
        let small = measure(Delivery::Gapless, 4, 4, true, SHORT).unwrap();
        let large = measure(Delivery::Gapless, 20 * 1024, 4, true, SHORT).unwrap();
        assert!(large > small, "20KB {large} should exceed 4B {small}");
    }

    #[test]
    fn direct_receipt_beats_farthest() {
        let direct = measure(Delivery::Gapless, 4, 5, false, SHORT).unwrap();
        let farthest = measure(Delivery::Gapless, 4, 5, true, SHORT).unwrap();
        assert!(direct < farthest, "direct {direct} vs farthest {farthest}");
        assert!(direct <= Duration::from_millis(3), "Fig 4b range: {direct}");
    }
}
