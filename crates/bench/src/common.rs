//! Shared scenario machinery for the §8 experiments.
//!
//! The paper's testbed is five Raspberry Pis plus an "IP-based software
//! sensor" whose reachability and loss are controlled per link (§8.1).
//! [`DeliveryScenario`] is exactly that: `n` processes, one software
//! push sensor reaching a chosen subset, one no-op application whose
//! probe measures deliveries, and knobs for loss, event size, crash
//! injection, and the forwarding protocol.

use std::sync::Arc;

use rivulet_core::app::{AppBuilder, CombinerSpec, WindowSpec};
use rivulet_core::config::{AckMode, ForwardingMode};
use rivulet_core::delivery::Delivery;
use rivulet_core::deploy::{Home, HomeBuilder};
use rivulet_core::probe::{AppProbe, DeliveryRecord};
use rivulet_core::RivuletConfig;
use rivulet_devices::fault::{FaultKind, FaultPlan, FaultSpec};
use rivulet_devices::sensor::{EmissionProbe, EmissionSchedule, PayloadSpec};
use rivulet_net::metrics::FanoutSnapshot;
use rivulet_net::sim::{SimConfig, SimNet};
use rivulet_obs::ObsSnapshot;
use rivulet_types::{AppId, Duration, EventKind, ProcessId, Time};

/// Event payload sizes studied in Figs. 4–6 (Table 3 classes).
pub const EVENT_SIZES: [(&str, usize); 4] =
    [("4B", 4), ("8B", 8), ("1KB", 1024), ("20KB", 20 * 1024)];

/// Builds a [`PayloadSpec`] producing events of roughly `bytes` payload.
#[must_use]
pub fn payload_of(bytes: usize) -> PayloadSpec {
    match bytes {
        0..=4 => PayloadSpec::KindOnly(EventKind::Motion),
        5..=8 => PayloadSpec::Scalar(rivulet_devices::value::ValueModel::Constant(21.0)),
        _ => PayloadSpec::Blob {
            kind: EventKind::Image,
            len: bytes,
        },
    }
}

/// Configuration of one §8 delivery run.
#[derive(Debug, Clone)]
pub struct DeliveryScenario {
    /// Number of Rivulet processes (hosts).
    pub n_processes: usize,
    /// Indices of processes able to hear the sensor. The
    /// application-bearing process is always index 0 (it wins the
    /// placement tie-break), so `vec![1]` is the paper's "receiver
    /// placed farthest from the application-bearing process" (one full
    /// ring traversal), and `vec![0]` is Fig. 4b's direct receipt.
    pub receivers: Vec<usize>,
    /// Event payload bytes.
    pub event_bytes: usize,
    /// Delivery guarantee under test.
    pub delivery: Delivery,
    /// Gapless forwarding protocol (ring or the broadcast baseline).
    pub forwarding: ForwardingMode,
    /// Sensor event rate per second.
    pub rate_per_sec: u64,
    /// Virtual run length.
    pub duration: Duration,
    /// Loss probability applied on each sensor→receiver link.
    pub loss: f64,
    /// Crash the application-bearing process at this time, if set.
    pub crash_app_at: Option<Time>,
    /// Failure-detection threshold (2 s in §8.4).
    pub failure_timeout: Duration,
    /// Same-destination frame coalescing on the process send path.
    pub coalescing: bool,
    /// Broadcast acknowledgement mode (cumulative keep-alive
    /// watermarks vs per-event acks).
    pub ack_mode: AckMode,
    /// Delivery→execution SPSC ring (off measures the inline
    /// delivery baseline).
    pub exec_ring: bool,
    /// Payload-arena re-homing in the event store (off measures the
    /// frame-pinning clone baseline).
    pub payload_arena: bool,
    /// Adaptive WAL group-commit gating (off pins the fixed
    /// `wal_max_gated` bound).
    pub wal_adaptive: bool,
    /// Enable the observability recorder for this run (figures read
    /// their numbers from the resulting [`ObsSnapshot`]).
    pub obs: bool,
    /// Attach per-process durable storage (an in-memory simulated
    /// backend), exercising the WAL append/flush/recovery path.
    pub durable: bool,
    /// Device fault injected into the sensor, if any (with
    /// [`DeliveryScenario::fault_rate`] > 0). The fault plan derives
    /// from the run seed, so injection is reproducible per home.
    pub fault_kind: Option<FaultKind>,
    /// Per-attempt (or per-window) rate of the injected fault.
    pub fault_rate: f64,
    /// Enable the platform's device-fault repair layer.
    pub repair: bool,
    /// Enable the routine execution engine: the measurement app fires
    /// a one-step routine on the anchor actuator every tenth event,
    /// exercising staging, the hash-chained ledger, and (on crashing
    /// homes) recovery re-drive. Off leaves the run byte-identical to
    /// a build without routines.
    pub routines: bool,
    /// RNG seed.
    pub seed: u64,
}

impl DeliveryScenario {
    /// The paper's default setup: five processes, 4-byte events at
    /// 10 events/s for 200 seconds, receiver farthest from the app.
    #[must_use]
    pub fn paper_default(delivery: Delivery) -> Self {
        Self {
            n_processes: 5,
            receivers: vec![1],
            event_bytes: 4,
            delivery,
            forwarding: ForwardingMode::Ring,
            rate_per_sec: 10,
            duration: Duration::from_secs(200),
            loss: 0.0,
            crash_app_at: None,
            failure_timeout: Duration::from_secs(2),
            coalescing: true,
            ack_mode: AckMode::Cumulative,
            exec_ring: true,
            payload_arena: true,
            wal_adaptive: true,
            obs: false,
            durable: false,
            fault_kind: None,
            fault_rate: 0.0,
            repair: false,
            routines: false,
            seed: 42,
        }
    }
}

/// Measurements extracted from one run.
#[derive(Debug, Clone)]
pub struct DeliveryOutcome {
    /// Events the sensor emitted.
    pub emitted: u64,
    /// Distinct events processed by active logic nodes.
    pub unique_delivered: usize,
    /// Mean sensor→logic delay.
    pub mean_delay: Option<Duration>,
    /// Maximum observed delay.
    pub max_delay: Option<Duration>,
    /// Bytes sent on the inter-process WiFi mesh (payloads + frame
    /// headers), including platform background traffic.
    pub wifi_bytes: u64,
    /// Raw delivery records (for timelines).
    pub deliveries: Vec<DeliveryRecord>,
    /// Promotion/demotion history.
    pub transitions: Vec<(Time, ProcessId, bool)>,
    /// Encode-once / coalescing savings recorded during the run.
    pub fanout: FanoutSnapshot,
    /// Full observability snapshot (empty unless
    /// [`DeliveryScenario::obs`] was set).
    pub obs: ObsSnapshot,
}

impl DeliveryOutcome {
    /// Fraction of emitted events that reached the application.
    #[must_use]
    pub fn delivered_fraction(&self) -> f64 {
        if self.emitted == 0 {
            return 0.0;
        }
        self.unique_delivered as f64 / self.emitted as f64
    }
}

/// Runs one delivery scenario to completion.
///
/// # Panics
///
/// Panics on malformed configuration (no processes, receiver index out
/// of range).
#[must_use]
pub fn run_delivery(cfg: &DeliveryScenario) -> DeliveryOutcome {
    let (outcome, _, _) = run_delivery_with_probes(cfg);
    outcome
}

/// Like [`run_delivery`], also returning the emission and app probes
/// for custom analysis.
#[must_use]
pub fn run_delivery_with_probes(
    cfg: &DeliveryScenario,
) -> (DeliveryOutcome, Arc<EmissionProbe>, Arc<AppProbe>) {
    assert!(cfg.n_processes > 0, "need at least one process");
    assert!(
        cfg.receivers.iter().all(|r| *r < cfg.n_processes),
        "receiver index out of range"
    );
    let mut net = SimNet::new(SimConfig::with_seed(cfg.seed));
    net.recorder().set_enabled(cfg.obs);
    let mut config = RivuletConfig::default()
        .with_failure_timeout(cfg.failure_timeout)
        .with_forwarding(cfg.forwarding)
        .with_coalescing(cfg.coalescing)
        .with_ack_mode(cfg.ack_mode)
        .with_exec_ring(cfg.exec_ring)
        .with_payload_arena(cfg.payload_arena)
        .with_wal_adaptive_gating(cfg.wal_adaptive)
        .with_repair(cfg.repair);
    if cfg.routines {
        config = config
            .with_routines(true)
            .with_routine_ledger_seed(cfg.seed);
    }
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    if let Some(kind) = cfg.fault_kind {
        if cfg.fault_rate > 0.0 {
            // The sensor declared below is always SensorId(0).
            home = home.with_faults(FaultPlan::new(cfg.seed).sensor(
                rivulet_types::SensorId(0),
                FaultSpec::new(kind, cfg.fault_rate),
            ));
        }
    }
    if cfg.durable {
        let seed = cfg.seed;
        home = home.with_storage(
            rivulet_storage::WalOptions::default(),
            Duration::from_secs(10),
            move |pid| {
                Arc::new(rivulet_storage::SimBackend::new(seed ^ u64::from(pid.0)))
                    as Arc<dyn rivulet_storage::StorageBackend>
            },
        );
    }
    let pids: Vec<ProcessId> = (0..cfg.n_processes)
        .map(|i| home.add_host(format!("host{i}")))
        .collect();
    let receivers: Vec<ProcessId> = cfg.receivers.iter().map(|r| pids[*r]).collect();

    let period = Duration::from_micros(1_000_000 / cfg.rate_per_sec.max(1));
    let (sensor, emission_probe) = home.add_push_sensor(
        "software-sensor",
        payload_of(cfg.event_bytes),
        EmissionSchedule::Periodic(period),
        &receivers,
    );
    // An actuator reachable only from host 0 pins the active logic
    // node there (placement prefers the best device score, ties by
    // id), reproducing the paper's fixed application-bearing process.
    let (anchor, _) = home.add_actuator(
        "app-anchor",
        rivulet_types::ActuationState::Switch(false),
        &[pids[0]],
    );
    // With routines on, every tenth event fires a one-step routine on
    // the anchor, driving staging + ledger (and recovery on crashing
    // homes). With routines off the trigger request is dropped before
    // it has any effect, so the closure below is byte-neutral.
    if cfg.routines {
        let _ = home.add_routine(
            rivulet_core::RoutineSpec::new(rivulet_types::RoutineId(1), "fleet-scene")
                .step_compensated(
                    anchor,
                    rivulet_types::CommandKind::Set(rivulet_types::ActuationState::Switch(true)),
                    rivulet_types::CommandKind::Set(rivulet_types::ActuationState::Switch(false)),
                ),
        );
    }

    // A no-op measurement app (unless routines are on); the probe
    // records every delivery.
    let routines_on = cfg.routines;
    let app = AppBuilder::new(AppId(1), "measurement")
        .operator(
            "sink",
            CombinerSpec::Any,
            move |ctx: &mut rivulet_core::app::OpCtx, w: &rivulet_core::app::CombinedWindows| {
                if routines_on && w.all_events().any(|e| e.id.seq % 10 == 9) {
                    ctx.run_routine(rivulet_types::RoutineId(1));
                }
            },
        )
        .sensor(sensor, cfg.delivery, WindowSpec::count(1))
        .actuator(anchor, cfg.delivery)
        .done()
        .build()
        .expect("valid app");
    let app_probe = home.add_app(app);
    let home: Home = home.build();

    // Sensor→process loss on the receiving links.
    if cfg.loss > 0.0 {
        let sensor_actor = home.sensor_actor(sensor);
        for r in &receivers {
            net.topology_mut()
                .set_loss(sensor_actor, home.actor_of(*r), cfg.loss);
        }
    }
    if let Some(at) = cfg.crash_app_at {
        net.crash_at(home.actor_of(pids[0]), at);
    }

    net.run_until(Time::ZERO + cfg.duration);

    let delays = app_probe.delays();
    let outcome = DeliveryOutcome {
        emitted: emission_probe.emitted(),
        unique_delivered: app_probe.unique_delivered(),
        mean_delay: app_probe.mean_delay(),
        max_delay: delays.iter().copied().max(),
        wifi_bytes: net.metrics().wifi_bytes,
        deliveries: app_probe.deliveries(),
        transitions: app_probe.transitions(),
        fanout: net.metrics().fanout.snapshot(),
        obs: net.obs_snapshot(),
    };
    (outcome, emission_probe, app_probe)
}

/// WiFi bytes of a run identical to `cfg` but with a silent sensor —
/// the platform's background traffic (keep-alives, sync), subtracted
/// when computing per-event network overhead (Fig. 5).
#[must_use]
pub fn background_wifi_bytes(cfg: &DeliveryScenario) -> u64 {
    let mut quiet = cfg.clone();
    quiet.rate_per_sec = 1;
    let mut net = SimNet::new(SimConfig::with_seed(quiet.seed));
    net.recorder().set_enabled(true);
    let config = RivuletConfig::default()
        .with_failure_timeout(quiet.failure_timeout)
        .with_forwarding(quiet.forwarding)
        .with_coalescing(quiet.coalescing)
        .with_ack_mode(quiet.ack_mode)
        .with_exec_ring(quiet.exec_ring)
        .with_payload_arena(quiet.payload_arena)
        .with_wal_adaptive_gating(quiet.wal_adaptive);
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let pids: Vec<ProcessId> = (0..quiet.n_processes)
        .map(|i| home.add_host(format!("host{i}")))
        .collect();
    let receivers: Vec<ProcessId> = quiet.receivers.iter().map(|r| pids[*r]).collect();
    let (sensor, _) = home.add_push_sensor(
        "software-sensor",
        payload_of(quiet.event_bytes),
        EmissionSchedule::Script(Vec::new()),
        &receivers,
    );
    let (anchor, _) = home.add_actuator(
        "app-anchor",
        rivulet_types::ActuationState::Switch(false),
        &[pids[0]],
    );
    let app = AppBuilder::new(AppId(1), "measurement")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut rivulet_core::app::OpCtx, _: &rivulet_core::app::CombinedWindows| {},
        )
        .sensor(sensor, quiet.delivery, WindowSpec::count(1))
        .actuator(anchor, quiet.delivery)
        .done()
        .build()
        .expect("valid app");
    let _ = home.add_app(app);
    let _home: Home = home.build();
    net.run_until(Time::ZERO + quiet.duration);
    net.obs_snapshot().counter("net.wifi_bytes")
}

/// Renders a duration as fractional milliseconds for table output.
#[must_use]
pub fn ms(d: Option<Duration>) -> String {
    match d {
        None => "-".to_owned(),
        Some(d) => format!("{:.2}", d.as_micros() as f64 / 1_000.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_gapless_delivers_everything() {
        let mut cfg = DeliveryScenario::paper_default(Delivery::Gapless);
        cfg.duration = Duration::from_secs(20);
        let out = run_delivery(&cfg);
        assert!(out.emitted >= 195, "emitted {}", out.emitted);
        // Every event except possibly in-flight tail ones arrives.
        assert!(
            out.unique_delivered as u64 >= out.emitted - 2,
            "delivered {}/{}",
            out.unique_delivered,
            out.emitted
        );
        assert!(out.mean_delay.is_some());
    }

    #[test]
    fn failure_free_gap_delivers_everything() {
        let mut cfg = DeliveryScenario::paper_default(Delivery::Gap);
        cfg.duration = Duration::from_secs(20);
        let out = run_delivery(&cfg);
        assert!(out.unique_delivered as u64 >= out.emitted - 2);
    }

    #[test]
    fn gap_is_no_slower_than_gapless_at_farthest_placement() {
        let mut gap_cfg = DeliveryScenario::paper_default(Delivery::Gap);
        gap_cfg.duration = Duration::from_secs(20);
        let mut gapless_cfg = DeliveryScenario::paper_default(Delivery::Gapless);
        gapless_cfg.duration = Duration::from_secs(20);
        let gap = run_delivery(&gap_cfg).mean_delay.unwrap();
        let gapless = run_delivery(&gapless_cfg).mean_delay.unwrap();
        assert!(gap <= gapless, "gap {gap} vs gapless {gapless}");
    }

    #[test]
    fn direct_receipt_is_fast() {
        let mut cfg = DeliveryScenario::paper_default(Delivery::Gapless);
        cfg.receivers = vec![0];
        cfg.duration = Duration::from_secs(20);
        let out = run_delivery(&cfg);
        let mean = out.mean_delay.unwrap();
        // Fig. 4b: ~1–2 ms when the app-bearing process hears the
        // sensor directly.
        assert!(mean <= Duration::from_millis(3), "mean {mean}");
    }
}
