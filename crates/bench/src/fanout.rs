//! Fan-out throughput workloads behind `BENCH_fanout.json`.
//!
//! Two layers of measurement:
//!
//! - **Micro**: the per-activation encode path in isolation. The
//!   *naive* variant re-encodes every protocol message once per peer
//!   and sends each unframed — exactly what the process actor did
//!   before encode-once fan-out landed. The *coalesced* variant
//!   encodes each message once into pooled buffers and assembles one
//!   multi-command frame per destination from the shared parts. Both
//!   run in the same binary so the comparison is apples-to-apples.
//! - **Sim**: whole-platform runs of the §8 delivery scenario (ring
//!   and the broadcast-heavy baseline) with the optimizations toggled
//!   on and off, reporting host-side throughput, per-event network
//!   bytes, and the coalescing counters.

use std::time::Instant;

use bytes::Bytes;
use rivulet_core::config::{AckMode, ForwardingMode};
use rivulet_core::delivery::Delivery;
use rivulet_core::messages::{Frame, ProcMsg};
use rivulet_net::metrics::FanoutSnapshot;
use rivulet_obs::Recorder;
use rivulet_types::wire::{Wire, WriterPool};
use rivulet_types::{Duration, Event, EventId, EventKind, Payload, ProcessId, SensorId, Time};

use crate::common::{background_wifi_bytes, run_delivery, DeliveryScenario};

/// One micro-workload shape: an actor activation that must fan
/// `batch` broadcast messages out to `peers` destinations.
#[derive(Debug, Clone, Copy)]
pub struct MicroWorkload {
    /// Fan-out destinations per activation.
    pub peers: usize,
    /// Messages bound for each destination within one activation.
    pub batch: usize,
    /// Event payload blob size.
    pub payload_bytes: usize,
}

impl MicroWorkload {
    /// The broadcast-heavy shape: a 5-process home (4 peers) where a
    /// burst of 1 KiB camera events floods within one activation.
    #[must_use]
    pub fn broadcast_heavy() -> Self {
        Self {
            peers: 4,
            batch: 4,
            payload_bytes: 1024,
        }
    }

    /// The ring shape: one forward per activation, small payload.
    #[must_use]
    pub fn ring() -> Self {
        Self {
            peers: 1,
            batch: 1,
            payload_bytes: 8,
        }
    }
}

/// Builds the `batch` broadcast messages of one activation,
/// deterministic in `activation`.
#[must_use]
pub fn activation_msgs(w: &MicroWorkload, activation: u64) -> Vec<ProcMsg> {
    (0..w.batch as u64)
        .map(|i| {
            let seq = activation * w.batch as u64 + i;
            let payload = if w.payload_bytes > 8 {
                Payload::Blob(Bytes::from(vec![(seq & 0xff) as u8; w.payload_bytes]))
            } else {
                Payload::Scalar(seq as f64)
            };
            ProcMsg::Broadcast {
                event: Event::with_payload(
                    EventId::new(SensorId(1), seq),
                    EventKind::Image,
                    payload,
                    Time::from_millis(seq),
                ),
                origin: ProcessId(0),
            }
        })
        .collect()
}

/// The pre-optimization send path: every message is encoded afresh for
/// every peer and shipped unframed. Returns total payload bytes
/// produced (consumed by the caller so the work cannot be optimized
/// away).
#[must_use]
pub fn fan_out_naive(msgs: &[ProcMsg], peers: usize) -> u64 {
    let mut bytes = 0u64;
    for _ in 0..peers {
        for msg in msgs {
            bytes += msg.to_bytes().len() as u64;
        }
    }
    bytes
}

/// The optimized send path: each message is encoded once into a pooled
/// buffer; every destination receives cheap clones of the shared
/// parts, folded into one multi-command frame when the activation
/// queued more than one. A flood hands every destination the same
/// parts, so (as in the process outbox) the frame itself is assembled
/// once and cheap-cloned per peer.
///
/// The path carries a [`Recorder`] exactly where the production outbox
/// does; the micro benchmark passes a *disabled* recorder, which is
/// how the "disabled recorder is a no-op" claim is verified — the
/// measured throughput must stay within noise of the uninstrumented
/// baseline in `BENCH_fanout.json`.
#[must_use]
pub fn fan_out_coalesced(
    msgs: &[ProcMsg],
    peers: usize,
    pool: &mut WriterPool,
    obs: &Recorder,
) -> u64 {
    let parts: Vec<Bytes> = msgs.iter().map(|m| pool.encode(m)).collect();
    let mut bytes = 0u64;
    if parts.len() == 1 {
        for _ in 0..peers {
            bytes += parts[0].clone().len() as u64;
            obs.inc("fanout.sends");
        }
        obs.add("fanout.bytes", bytes);
        return bytes;
    }
    let mut w = pool.checkout();
    let framed = Frame::encode_parts(&mut w, &parts);
    pool.put_back(w);
    for _ in 0..peers {
        bytes += framed.clone().len() as u64;
        obs.inc("fanout.sends");
    }
    obs.add("fanout.bytes", bytes);
    obs.observe("fanout.frame_bytes", framed.len() as u64);
    bytes
}

/// Result of timing one micro variant.
#[derive(Debug, Clone, Copy)]
pub struct MicroPoint {
    /// Broadcast events fanned out per wall-clock second.
    pub events_per_sec: f64,
    /// Network payload bytes emitted per event.
    pub bytes_per_event: f64,
}

/// Times `activations` activations of `w` through one of the two send
/// paths (`coalesced` selects which). Message construction happens
/// outside the timed region — only the send path is measured.
#[must_use]
pub fn run_micro(w: &MicroWorkload, activations: u64, coalesced: bool) -> MicroPoint {
    let mut pool = WriterPool::new();
    // A disabled recorder on the timed path: the instrumentation cost
    // the production outbox pays when observability is off.
    let obs = Recorder::default();
    // A small rotation of pre-built activations keeps cache effects
    // realistic without timing event construction itself.
    let prebuilt: Vec<Vec<ProcMsg>> = (0..8).map(|a| activation_msgs(w, a)).collect();
    let mut total_bytes = 0u64;
    let start = Instant::now();
    for a in 0..activations {
        let msgs = &prebuilt[(a % prebuilt.len() as u64) as usize];
        total_bytes += if coalesced {
            fan_out_coalesced(msgs, w.peers, &mut pool, &obs)
        } else {
            fan_out_naive(msgs, w.peers)
        };
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let events = activations * w.batch as u64;
    MicroPoint {
        events_per_sec: events as f64 / elapsed,
        bytes_per_event: total_bytes as f64 / events as f64,
    }
}

/// Which whole-platform scenario a sim point runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimWorkload {
    /// Ring forwarding, failure-free.
    Ring,
    /// Ring forwarding with the application-bearing process crashing
    /// mid-run — exercises the reliable-broadcast fallback and its
    /// acknowledgement traffic.
    RingCrash,
    /// The eager-broadcast baseline (broadcast-heavy).
    Broadcast,
}

impl SimWorkload {
    /// Short label used in tables and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Ring => "ring",
            Self::RingCrash => "ring_crash",
            Self::Broadcast => "broadcast",
        }
    }
}

/// Result of one whole-platform simulation point.
#[derive(Debug, Clone)]
pub struct SimPoint {
    /// Scenario label (`ring` / `ring_crash` / `broadcast`).
    pub workload: &'static str,
    /// Whether coalescing + cumulative acks were enabled.
    pub optimized: bool,
    /// Events the sensor emitted.
    pub emitted: u64,
    /// Distinct events delivered to the application.
    pub delivered: usize,
    /// Host-side throughput: delivered events per wall-clock second of
    /// simulation execution.
    pub events_per_sec: f64,
    /// Inter-process bytes per delivered event, background subtracted.
    pub bytes_per_event: f64,
    /// Coalescing counters recorded during the run.
    pub fanout: FanoutSnapshot,
    /// Events handed through the delivery→execution SPSC ring.
    pub ring_pops: u64,
    /// Batched ring drains (pops ÷ batches = mean batch size).
    pub ring_batches: u64,
    /// Payloads re-homed into the event-payload arena.
    pub arena_allocs: u64,
    /// Arena chunk refills served by recycling a drained chunk.
    pub arena_recycled: u64,
}

/// The §8 scenario used for the sim points: 1 KiB events at 50/s for
/// 60 virtual seconds on a five-process home.
#[must_use]
pub fn sim_scenario(workload: SimWorkload, optimized: bool) -> DeliveryScenario {
    let mut cfg = DeliveryScenario::paper_default(Delivery::Gapless);
    cfg.event_bytes = 1024;
    cfg.rate_per_sec = 50;
    cfg.duration = Duration::from_secs(60);
    cfg.forwarding = if workload == SimWorkload::Broadcast {
        ForwardingMode::EagerBroadcast
    } else {
        ForwardingMode::Ring
    };
    if workload == SimWorkload::RingCrash {
        cfg.crash_app_at = Some(Time::ZERO + Duration::from_secs(20));
    }
    cfg.coalescing = optimized;
    cfg.ack_mode = if optimized {
        AckMode::Cumulative
    } else {
        AckMode::PerEvent
    };
    // Round-3 hot-path knobs ride the same optimized/unoptimized twin
    // split: the baseline twin measures inline delivery, frame-pinning
    // payload clones, and the fixed group-commit bound.
    cfg.exec_ring = optimized;
    cfg.payload_arena = optimized;
    cfg.wal_adaptive = optimized;
    cfg
}

/// Runs one sim point best-of-3 (see [`run_sim_point_best_of`]).
#[must_use]
pub fn run_sim_point(workload: SimWorkload, optimized: bool) -> SimPoint {
    run_sim_point_best_of(workload, optimized, 3)
}

/// Runs one sim point `runs` times and keeps the fastest repetition.
///
/// The simulation itself is deterministic (same seed → identical
/// deliveries, bytes, and counters); only the host wall clock varies,
/// and single-run timings are noisy enough to flip an
/// optimized-vs-unoptimized comparison. Best-of-N is the standard cure
/// (the micro bench already uses it): the minimum elapsed time is the
/// least-interfered-with measurement of the same fixed work.
#[must_use]
pub fn run_sim_point_best_of(workload: SimWorkload, optimized: bool, runs: usize) -> SimPoint {
    let mut cfg = sim_scenario(workload, optimized);
    cfg.obs = true;
    let background = background_wifi_bytes(&cfg);
    let mut best: Option<SimPoint> = None;
    for _ in 0..runs.max(1) {
        let point = run_sim_rep(&cfg, workload, optimized, background);
        if best
            .as_ref()
            .is_none_or(|b| point.events_per_sec > b.events_per_sec)
        {
            best = Some(point);
        }
    }
    best.expect("at least one run")
}

/// Runs a workload's unoptimized/optimized twins with *interleaved*
/// repetitions and returns `(unoptimized, optimized)` best points.
///
/// Best-of-N blocks run back to back are still fooled by host noise
/// that spans a whole block (frequency scaling, a neighbour burning
/// the core for a second): whichever twin lands in the slow phase
/// loses by 20% regardless of the code. Alternating single
/// repetitions exposes both twins to the same noise distribution, so
/// the best-of ratio measures the code, not the scheduler. The
/// `--assert-baseline` twin gates compare points from this runner.
#[must_use]
pub fn run_sim_twin(workload: SimWorkload, runs: usize) -> (SimPoint, SimPoint) {
    let mut twins: Vec<(DeliveryScenario, u64, Option<SimPoint>)> = [false, true]
        .into_iter()
        .map(|optimized| {
            let mut cfg = sim_scenario(workload, optimized);
            cfg.obs = true;
            let background = background_wifi_bytes(&cfg);
            (cfg, background, None)
        })
        .collect();
    for _ in 0..runs.max(1) {
        for (optimized, (cfg, background, best)) in [false, true].into_iter().zip(&mut twins) {
            let point = run_sim_rep(cfg, workload, optimized, *background);
            if best
                .as_ref()
                .is_none_or(|b: &SimPoint| point.events_per_sec > b.events_per_sec)
            {
                *best = Some(point);
            }
        }
    }
    let optimized = twins.pop().and_then(|t| t.2).expect("at least one run");
    let unoptimized = twins.pop().and_then(|t| t.2).expect("at least one run");
    (unoptimized, optimized)
}

/// One timed repetition of a prepared scenario.
fn run_sim_rep(
    cfg: &DeliveryScenario,
    workload: SimWorkload,
    optimized: bool,
    background: u64,
) -> SimPoint {
    let start = Instant::now();
    let out = run_delivery(cfg);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let foreground = out.obs.counter("net.wifi_bytes").saturating_sub(background);
    SimPoint {
        workload: workload.label(),
        optimized,
        emitted: out.emitted,
        delivered: out.unique_delivered,
        events_per_sec: out.unique_delivered as f64 / elapsed,
        bytes_per_event: foreground as f64 / out.unique_delivered.max(1) as f64,
        ring_pops: out.obs.counter("ring.pops"),
        ring_batches: out.obs.counter("ring.batches"),
        arena_allocs: out.obs.counter("arena.allocs"),
        arena_recycled: out.obs.counter("arena.recycled"),
        fanout: out.fanout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_agree_on_message_count_semantics() {
        let w = MicroWorkload::broadcast_heavy();
        let msgs = activation_msgs(&w, 0);
        assert_eq!(msgs.len(), w.batch);
        let mut pool = WriterPool::new();
        let naive = fan_out_naive(&msgs, w.peers);
        let coalesced = fan_out_coalesced(&msgs, w.peers, &mut pool, &Recorder::default());
        // Coalescing adds frame framing but removes nothing: the byte
        // totals stay within the frame-overhead margin of each other.
        assert!(naive > 0 && coalesced > 0);
        assert!(
            coalesced < naive + (w.peers * 64) as u64,
            "coalesced {coalesced} vs naive {naive}"
        );
    }

    #[test]
    fn single_message_ring_shape_sends_unframed() {
        let w = MicroWorkload::ring();
        let msgs = activation_msgs(&w, 3);
        let mut pool = WriterPool::new();
        // One part → no frame: byte-for-byte the plain encoding.
        assert_eq!(
            fan_out_coalesced(&msgs, w.peers, &mut pool, &Recorder::default()),
            msgs[0].to_bytes().len() as u64
        );
    }

    #[test]
    fn disabled_recorder_observes_nothing_enabled_recorder_counts_sends() {
        let w = MicroWorkload::broadcast_heavy();
        let msgs = activation_msgs(&w, 0);
        let mut pool = WriterPool::new();
        let off = Recorder::default();
        let _ = fan_out_coalesced(&msgs, w.peers, &mut pool, &off);
        assert_eq!(off.snapshot(), rivulet_obs::ObsSnapshot::default());
        let on = Recorder::default();
        on.set_enabled(true);
        let bytes = fan_out_coalesced(&msgs, w.peers, &mut pool, &on);
        let snap = on.snapshot();
        assert_eq!(snap.counter("fanout.sends"), w.peers as u64);
        assert_eq!(snap.counter("fanout.bytes"), bytes);
    }

    #[test]
    fn optimized_sim_point_records_savings() {
        let mut cfg = sim_scenario(SimWorkload::Broadcast, true);
        cfg.duration = Duration::from_secs(10);
        let out = run_delivery(&cfg);
        assert!(
            out.fanout.encode_bytes_saved > 0,
            "broadcast fan-out should reuse encodings: {:?}",
            out.fanout
        );
        assert!(
            out.fanout.frames_coalesced > 0,
            "same-destination traffic should coalesce: {:?}",
            out.fanout
        );
    }
}
