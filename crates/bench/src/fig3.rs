//! Fig. 3 — Gap and Gapless deliveries under scripted link losses.
//!
//! The figure traces four door events through three processes with
//! specific per-event link losses: the second event is lost on the
//! Gap forwarder's link (Gap drops it, Gapless recovers it via another
//! receiver), and the third event is lost on *every* link (neither
//! guarantee can help — the guarantee is post-ingest).

use rivulet_core::app::{AppBuilder, CombinerSpec, WindowSpec};
use rivulet_core::delivery::Delivery;
use rivulet_core::deploy::HomeBuilder;
use rivulet_core::RivuletConfig;
use rivulet_net::sim::{SimConfig, SimNet};
use rivulet_types::{AppId, EventKind, Time};

use rivulet_devices::sensor::{EmissionSchedule, PayloadSpec};

/// Outcome of the scripted trace for one guarantee.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// Which of the four scripted events reached the application
    /// (by emission index).
    pub delivered: Vec<u64>,
}

/// Runs the Fig. 3 script under the given guarantee.
///
/// Script: events at t = 2, 4, 6, 8 s; two receiving processes (p1,
/// p2); app at p0. Event #1 (0-based) is lost on p1's link; event #2 is
/// lost on both links.
#[must_use]
pub fn run(delivery: Delivery) -> TraceOutcome {
    let mut net = SimNet::new(SimConfig::with_seed(1));
    let mut home = HomeBuilder::new(&mut net).with_config(RivuletConfig::default());
    let _p0 = home.add_host("hub");
    let p1 = home.add_host("tv");
    let p2 = home.add_host("fridge");
    let script = vec![
        Time::from_secs(2),
        Time::from_secs(4),
        Time::from_secs(6),
        Time::from_secs(8),
    ];
    let (door, _) = home.add_push_sensor(
        "door",
        PayloadSpec::KindOnly(EventKind::DoorOpen),
        EmissionSchedule::Script(script),
        &[p1, p2],
    );
    let app = AppBuilder::new(AppId(1), "trace")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut rivulet_core::app::OpCtx, _: &rivulet_core::app::CombinedWindows| {},
        )
        .sensor(door, delivery, WindowSpec::count(1))
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();

    let sensor_actor = home.sensor_actor(door);
    let tv = home.actor_of(p1);
    let fridge = home.actor_of(p2);
    // Event 1 (t=4s): lost on the tv link only.
    net.set_blocked_at(Time::from_millis(3_900), sensor_actor, tv, true);
    net.set_blocked_at(Time::from_millis(4_100), sensor_actor, tv, false);
    // Event 2 (t=6s): lost on both links — nobody ingests it.
    net.set_blocked_at(Time::from_millis(5_900), sensor_actor, tv, true);
    net.set_blocked_at(Time::from_millis(5_900), sensor_actor, fridge, true);
    net.set_blocked_at(Time::from_millis(6_100), sensor_actor, tv, false);
    net.set_blocked_at(Time::from_millis(6_100), sensor_actor, fridge, false);

    net.run_until(Time::from_secs(12));

    let mut delivered: Vec<u64> = probe
        .deliveries()
        .iter()
        .map(|d| d.event.seq)
        .collect::<std::collections::BTreeSet<u64>>()
        .into_iter()
        .collect();
    delivered.sort_unstable();
    TraceOutcome { delivered }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gapless_recovers_single_link_loss_but_not_total_loss() {
        let out = run(Delivery::Gapless);
        assert_eq!(
            out.delivered,
            vec![0, 1, 3],
            "event 1 recovered via the fridge; event 2 never ingested"
        );
    }

    #[test]
    fn gap_drops_what_its_forwarder_misses() {
        let out = run(Delivery::Gap);
        // The Gap forwarder is the chain-closest receiver (tv = p1);
        // losing its link loses event 1; event 2 is lost everywhere.
        assert_eq!(out.delivered, vec![0, 3]);
    }
}
