//! Correctness-vs-fault-rate experiment: the fault-injection &
//! self-healing figure family.
//!
//! The home under test has three redundant scalar sensors sharing one
//! deterministic diurnal [`ValueModel::Sine`] (pure in emission time,
//! so ground truth is recomputable from any delivery record), one
//! fault-tolerant operator (`FTCombiner`, tolerate 1) subscribing to
//! all three, and an actuator anchoring the active logic node. Sensor
//! 0 carries the injected fault; its peers stay clean and act as the
//! repair layer's witnesses.
//!
//! **Delivery correctness** of a run is the fraction of the faulted
//! sensor's *delivered* readings that lie within [`TOLERANCE`] of the
//! ground-truth model at their emission instant — exactly what an app
//! computing on the readings would experience. Every number is
//! reproducible bit-exactly from `(seed, fault kind, rate, repair)`;
//! the module tests assert (not just print) that switching repair on
//! strictly improves correctness for the stuck, flapping, drift, and
//! ghost fault kinds.

use std::collections::BTreeSet;

use rivulet_core::app::{AppBuilder, CombinerSpec, PollSpec, WindowSpec};
use rivulet_core::delivery::Delivery;
use rivulet_core::deploy::{Home, HomeBuilder};
use rivulet_core::RivuletConfig;
use rivulet_devices::fault::{FaultKind, FaultPlan, FaultSpec};
use rivulet_devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet_devices::value::ValueModel;
use rivulet_net::sim::{SimConfig, SimNet};
use rivulet_obs::ObsSnapshot;
use rivulet_types::{AppId, Duration, EventId, ProcessId, Time};

/// Ground-truth sine parameters (shared by all three sensors).
const BASE: f64 = 21.0;
const AMPLITUDE: f64 = 5.0;
const PERIOD_SECS: f64 = 120.0;

/// A delivered reading within this distance of the model is "correct".
/// Wide enough for peer-midpoint substitution error (the sine moves
/// ~0.26/s, peers emit in the same 1 s slot), narrow enough that every
/// fault kind's corruption lands outside it.
pub const TOLERANCE: f64 = 1.0;

/// The ground-truth reading at emission instant `t`.
#[must_use]
pub fn ground_truth(t: Time) -> f64 {
    let raw = BASE + AMPLITUDE * (2.0 * std::f64::consts::PI * t.as_secs_f64() / PERIOD_SECS).sin();
    raw.max(0.0)
}

/// One correctness-vs-fault-rate run configuration.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// The fault injected into sensor 0.
    pub kind: FaultKind,
    /// Per-attempt (or per-window) fault rate.
    pub rate: f64,
    /// Whether the platform's repair layer is on.
    pub repair: bool,
    /// Virtual run length.
    pub duration: Duration,
    /// Seed for both the simulator and the fault plan.
    pub seed: u64,
}

impl FaultScenario {
    /// The default experiment shape: 2 sine periods at 1 event/s.
    #[must_use]
    pub fn new(kind: FaultKind, rate: f64, repair: bool) -> Self {
        Self {
            kind,
            rate,
            repair,
            duration: Duration::from_secs(240),
            seed: 42,
        }
    }
}

/// Measurements of one run, restricted to the faulted sensor.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// Genuine (non-ghost) events the faulted sensor emitted.
    pub emitted: u64,
    /// Distinct delivered events from the faulted sensor.
    pub delivered: usize,
    /// Delivered events within [`TOLERANCE`] of ground truth.
    pub correct: usize,
    /// Ghost events the plan injected at the faulted sensor.
    pub ghosts_injected: usize,
    /// Ghost events that reached the app.
    pub ghosts_delivered: usize,
    /// Emissions the plan suppressed (missed + battery).
    pub suppressed: u64,
    /// Full observability snapshot of the run.
    pub obs: ObsSnapshot,
}

impl FaultOutcome {
    /// Delivery correctness: fraction of delivered faulted-sensor
    /// readings matching ground truth (1.0 when nothing arrived — an
    /// empty delivery set contains no wrong readings).
    #[must_use]
    pub fn correctness(&self) -> f64 {
        if self.delivered == 0 {
            return 1.0;
        }
        self.correct as f64 / self.delivered as f64
    }

    /// Recall: correct deliveries over genuine emissions.
    #[must_use]
    pub fn recall(&self) -> f64 {
        if self.emitted == 0 {
            return 1.0;
        }
        (self.correct as f64 / self.emitted as f64).min(1.0)
    }
}

/// Runs one correctness-vs-fault-rate scenario.
#[must_use]
pub fn run_fault(cfg: &FaultScenario) -> FaultOutcome {
    let mut net = SimNet::new(SimConfig::with_seed(cfg.seed));
    net.recorder().set_enabled(true);
    let config = RivuletConfig::default().with_repair(cfg.repair);
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let hosts: Vec<ProcessId> = (0..3).map(|i| home.add_host(format!("host{i}"))).collect();

    let model = ValueModel::Sine {
        base: BASE,
        amplitude: AMPLITUDE,
        period_secs: PERIOD_SECS,
    };
    let mut sensors = Vec::new();
    let mut probes = Vec::new();
    for i in 0..3 {
        let (id, probe) = home.add_push_sensor(
            format!("thermo{i}"),
            PayloadSpec::Scalar(model.clone()),
            EmissionSchedule::Periodic(Duration::from_secs(1)),
            &hosts,
        );
        sensors.push(id);
        probes.push(probe);
    }
    let (anchor, _) = home.add_actuator(
        "anchor",
        rivulet_types::ActuationState::Switch(false),
        &[hosts[0]],
    );

    let mut op = AppBuilder::new(AppId(1), "ft-average").operator(
        "Average",
        CombinerSpec::FaultTolerant { tolerate: 1 },
        |_: &mut rivulet_core::app::OpCtx, _: &rivulet_core::app::CombinedWindows| {},
    );
    for s in &sensors {
        op = op.sensor(*s, Delivery::Gapless, WindowSpec::count(1));
    }
    let app = op
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let app_probe = home.add_app(app);

    let plan = FaultPlan::new(cfg.seed).sensor(sensors[0], FaultSpec::new(cfg.kind, cfg.rate));
    let home = home.with_faults(plan);
    let fault_probe = home.fault_probe();
    let _home: Home = home.build();

    net.run_until(Time::ZERO + cfg.duration);

    let faulted = sensors[0];
    let ghost_ids: BTreeSet<EventId> = fault_probe.ghosts().into_iter().collect();
    let mut seen: BTreeSet<EventId> = BTreeSet::new();
    let mut correct = 0usize;
    for record in app_probe.deliveries() {
        if record.event.sensor != faulted || !seen.insert(record.event) {
            continue;
        }
        let Some(value) = record.value else { continue };
        if (value - ground_truth(record.emitted_at)).abs() <= TOLERANCE {
            correct += 1;
        }
    }
    let delivered = seen.len();
    let ghosts_delivered = seen.iter().filter(|id| ghost_ids.contains(id)).count();
    FaultOutcome {
        emitted: probes[0].emitted().saturating_sub(ghost_ids.len() as u64),
        delivered,
        correct,
        ghosts_injected: ghost_ids.len(),
        ghosts_delivered,
        suppressed: fault_probe.missed() + fault_probe.battery_skips(),
        obs: net.obs_snapshot(),
    }
}

/// Stall-repair scenario: one poll sensor whose answers are suppressed
/// with probability `rate` per attempt. With repair on, the health
/// model's stall detector issues out-of-band re-polls (extra attempts,
/// so more chances at an unsuppressed answer).
#[must_use]
pub fn run_repoll(rate: f64, repair: bool, seed: u64) -> FaultOutcome {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    net.recorder().set_enabled(true);
    let config = RivuletConfig::default()
        .with_repair(repair)
        .with_repair_stall_timeout(Duration::from_secs(2));
    let mut home = HomeBuilder::new(&mut net).with_config(config);
    let hosts: Vec<ProcessId> = (0..2).map(|i| home.add_host(format!("host{i}"))).collect();
    let (sensor, poll_probe) = home.add_poll_sensor(
        "meter",
        ValueModel::Constant(21.0),
        Duration::from_millis(30),
        &hosts,
    );
    let (anchor, _) = home.add_actuator(
        "anchor",
        rivulet_types::ActuationState::Switch(false),
        &[hosts[0]],
    );
    let app = AppBuilder::new(AppId(1), "poll-sink")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut rivulet_core::app::OpCtx, _: &rivulet_core::app::CombinedWindows| {},
        )
        .polled_sensor(
            sensor,
            Delivery::Gapless,
            WindowSpec::count(1),
            PollSpec::every(Duration::from_secs(5)),
        )
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let app_probe = home.add_app(app);

    let plan = FaultPlan::new(seed).sensor(sensor, FaultSpec::new(FaultKind::Missed, rate));
    let home = home.with_faults(plan);
    let fault_probe = home.fault_probe();
    let _home: Home = home.build();

    net.run_until(Time::from_secs(120));

    let mut seen: BTreeSet<EventId> = BTreeSet::new();
    let mut correct = 0usize;
    for record in app_probe.deliveries() {
        if record.event.sensor != sensor || !seen.insert(record.event) {
            continue;
        }
        if record.value.is_some_and(|v| (v - 21.0).abs() <= TOLERANCE) {
            correct += 1;
        }
    }
    FaultOutcome {
        emitted: poll_probe.answered(),
        delivered: seen.len(),
        correct,
        ghosts_injected: 0,
        ghosts_delivered: 0,
        suppressed: fault_probe.missed(),
        obs: net.obs_snapshot(),
    }
}

/// One row of the correctness-vs-fault-rate table: the same `(kind,
/// rate, seed)` run with repair off and on.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Fault kind injected.
    pub kind: FaultKind,
    /// Fault rate.
    pub rate: f64,
    /// Repair-off outcome.
    pub off: FaultOutcome,
    /// Repair-on outcome.
    pub on: FaultOutcome,
}

/// Runs the full sweep: every value-carrying fault kind at each rate,
/// repair off vs on, plus the missed-kind re-poll row.
#[must_use]
pub fn correctness_table(rates: &[f64], duration: Duration, seed: u64) -> Vec<FaultRow> {
    let mut rows = Vec::new();
    for kind in [
        FaultKind::StuckAt,
        FaultKind::Flapping,
        FaultKind::Drift,
        FaultKind::Ghost,
    ] {
        for &rate in rates {
            let mut base = FaultScenario::new(kind, rate, false);
            base.duration = duration;
            base.seed = seed;
            let mut healed = base.clone();
            healed.repair = true;
            rows.push(FaultRow {
                kind,
                rate,
                off: run_fault(&base),
                on: run_fault(&healed),
            });
        }
    }
    for &rate in rates {
        rows.push(FaultRow {
            kind: FaultKind::Missed,
            rate,
            off: run_repoll(rate, false, seed),
            on: run_repoll(rate, true, seed),
        });
    }
    rows
}

/// Renders the sweep as a markdown table (EXPERIMENTS.md format).
#[must_use]
pub fn render_table(rows: &[FaultRow]) -> String {
    let mut out = String::from(
        "| kind | rate | delivered (off/on) | correctness off | correctness on | repairs |\n\
         |------|------|--------------------|-----------------|----------------|---------|\n",
    );
    for r in rows {
        let repairs = r.on.obs.counter("repair.substitutions")
            + r.on.obs.counter("repair.outlier_drops")
            + r.on.obs.counter("repair.quarantined_drops")
            + r.on.obs.counter("repair.repolls");
        out.push_str(&format!(
            "| {} | {:.2} | {}/{} | {:.4} | {:.4} | {} |\n",
            r.kind.name(),
            r.rate,
            r.off.delivered,
            r.on.delivered,
            r.off.correctness(),
            r.on.correctness(),
            repairs,
        ));
    }
    out
}

/// Renders the sweep as the `BENCH_fault.json` document.
#[must_use]
pub fn render_json(rows: &[FaultRow]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"kind\": \"{}\", \"rate\": {:.2}, ",
                    "\"off\": {{\"delivered\": {}, \"correct\": {}, \"correctness\": {:.4}}}, ",
                    "\"on\": {{\"delivered\": {}, \"correct\": {}, \"correctness\": {:.4}, ",
                    "\"substitutions\": {}, \"repolls\": {}, \"quarantines\": {}}}}}"
                ),
                r.kind.name(),
                r.rate,
                r.off.delivered,
                r.off.correct,
                r.off.correctness(),
                r.on.delivered,
                r.on.correct,
                r.on.correctness(),
                r.on.obs.counter("repair.substitutions"),
                r.on.obs.counter("repair.repolls"),
                r.on.obs.counter("repair.quarantines"),
            )
        })
        .collect();
    format!(
        "{{\n  \"tolerance\": {TOLERANCE},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        body.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(kind: FaultKind, rate: f64) -> (FaultOutcome, FaultOutcome) {
        let mut base = FaultScenario::new(kind, rate, false);
        base.duration = Duration::from_secs(120);
        let mut healed = base.clone();
        healed.repair = true;
        (run_fault(&base), run_fault(&healed))
    }

    #[test]
    fn clean_run_is_fully_correct_with_and_without_repair() {
        let (off, on) = row(FaultKind::StuckAt, 0.0);
        assert!(off.delivered > 100, "delivered {}", off.delivered);
        assert_eq!(off.correct, off.delivered, "no fault, no error");
        assert_eq!(on.correct, on.delivered, "repair harmless when clean");
        assert_eq!(on.delivered, off.delivered, "repair toggles nothing");
        assert_eq!(on.obs.counter("repair.substitutions"), 0);
    }

    #[test]
    fn repair_strictly_improves_stuck_correctness() {
        let (off, on) = row(FaultKind::StuckAt, 0.5);
        assert!(off.correctness() < 1.0, "fault must bite: {:?}", off);
        assert!(
            on.correctness() > off.correctness(),
            "repair on {:.4} vs off {:.4}",
            on.correctness(),
            off.correctness()
        );
        assert!(on.obs.counter("repair.substitutions") > 0);
    }

    #[test]
    fn repair_strictly_improves_flapping_correctness() {
        let (off, on) = row(FaultKind::Flapping, 0.5);
        assert!(off.correctness() < 1.0, "fault must bite: {:?}", off);
        assert!(
            on.correctness() > off.correctness(),
            "repair on {:.4} vs off {:.4}",
            on.correctness(),
            off.correctness()
        );
        assert!(on.obs.counter("repair.substitutions") > 0);
    }

    #[test]
    fn repair_strictly_improves_drift_correctness() {
        let (off, on) = row(FaultKind::Drift, 0.5);
        assert!(off.correctness() < 1.0, "fault must bite: {:?}", off);
        assert!(
            on.correctness() > off.correctness(),
            "repair on {:.4} vs off {:.4}",
            on.correctness(),
            off.correctness()
        );
        assert!(on.obs.counter("repair.substitutions") > 0);
    }

    #[test]
    fn repair_strictly_improves_ghost_correctness_and_quarantines() {
        let (off, on) = row(FaultKind::Ghost, 0.5);
        assert!(off.ghosts_injected > 20, "ghosts {}", off.ghosts_injected);
        assert!(off.ghosts_delivered > 0, "ghosts reach the app unrepaired");
        assert!(off.correctness() < 1.0, "ghost readings are wrong");
        assert!(
            on.correctness() > off.correctness(),
            "repair on {:.4} vs off {:.4}",
            on.correctness(),
            off.correctness()
        );
        assert!(
            on.obs.counter("repair.quarantines") > 0,
            "a 50% ghost storm exhausts the outlier budget"
        );
    }

    #[test]
    fn repoll_recovers_missed_poll_answers() {
        let off = run_repoll(0.6, false, 42);
        let on = run_repoll(0.6, true, 42);
        assert!(off.suppressed > 0, "missed fault must bite");
        assert!(on.obs.counter("repair.repolls") > 0, "stall detector fired");
        assert!(
            on.correct >= off.correct,
            "re-polls never lose readings: on {} vs off {}",
            on.correct,
            off.correct
        );
    }
}
