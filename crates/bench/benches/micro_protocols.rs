//! Micro-benchmarks of the protocol building blocks: wire codec
//! throughput, ring-message handling, event-store operations, and
//! Marzullo interval intersection. These bound the per-event CPU cost
//! that the paper attributes to its "wimpy" in-home compute devices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rivulet_core::app::marzullo;
use rivulet_core::delivery::gapless::GaplessState;
use rivulet_core::messages::ProcMsg;
use rivulet_core::store::EventStore;
use rivulet_types::wire::Wire;
use rivulet_types::{Event, EventId, EventKind, Payload, ProcessId, SensorId, Time};
use std::hint::black_box;

fn event_of(bytes: usize, seq: u64) -> Event {
    let payload = match bytes {
        0..=4 => Payload::Empty,
        5..=8 => Payload::Scalar(21.5),
        n => Payload::zeros(n),
    };
    Event::with_payload(
        EventId::new(SensorId(1), seq),
        EventKind::Reading,
        payload,
        Time::from_millis(seq),
    )
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    for bytes in [4usize, 1024, 20 * 1024] {
        let event = event_of(bytes, 7);
        let msg = ProcMsg::Ring {
            event,
            seen: vec![ProcessId(0), ProcessId(1)],
            need: (0..5).map(ProcessId).collect(),
        };
        let encoded = msg.to_bytes();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", bytes), &msg, |b, msg| {
            b.iter(|| black_box(msg.to_bytes()))
        });
        group.bench_with_input(BenchmarkId::new("decode", bytes), &encoded, |b, buf| {
            b.iter(|| black_box(ProcMsg::from_bytes(buf).expect("valid")))
        });
    }
    group.finish();
}

fn bench_ring_handling(c: &mut Criterion) {
    c.bench_function("gapless_ring_step", |b| {
        let view: Vec<ProcessId> = (0..5).map(ProcessId).collect();
        let mut seq = 0u64;
        let mut state = GaplessState::new(ProcessId(1), 1_000_000, true);
        b.iter(|| {
            seq += 1;
            let outcome = state.on_ring(
                event_of(4, seq),
                vec![ProcessId(0)],
                view.clone(),
                &view,
                Some(ProcessId(2)),
            );
            black_box(outcome.actions.len())
        })
    });
}

fn bench_event_store(c: &mut Criterion) {
    c.bench_function("event_store_insert", |b| {
        let mut store = EventStore::new(100_000);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            black_box(store.insert(event_of(4, seq)))
        })
    });
    c.bench_function("event_store_diff_1k_behind", |b| {
        let mut store = EventStore::new(1_000_000);
        for seq in 0..10_000 {
            store.insert(event_of(4, seq));
        }
        let peer = vec![(SensorId(1), 9_000u64)];
        b.iter(|| black_box(store.diff_for(&peer).len()))
    });
}

fn bench_marzullo(c: &mut Criterion) {
    let mut group = c.benchmark_group("marzullo");
    for n in [4usize, 16, 64] {
        let intervals: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let base = 20.0 + (i as f64) * 0.01;
                (base, base + 1.0)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &intervals, |b, iv| {
            b.iter(|| black_box(marzullo(iv, iv.len() / 4)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_wire_codec,
    bench_ring_handling,
    bench_event_store,
    bench_marzullo
);
criterion_main!(benches);
