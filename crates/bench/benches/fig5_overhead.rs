//! Criterion bench regenerating Fig. 5 (network overhead of Gapless
//! and naive broadcast, normalized against Gap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rivulet_bench::fig5::{self, Protocol};
use rivulet_types::Duration;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let run_len = Duration::from_secs(15);
    println!("\nFig 5 (bytes normalized against the Gap reference):");
    for p in fig5::sweep(run_len) {
        println!(
            "  {:>10} {:>6} rx={} {:>8.2}x",
            p.protocol.to_string(),
            p.size_label,
            p.receiving,
            p.normalized
        );
    }

    let mut group = c.benchmark_group("fig5_overhead_scenario");
    for protocol in [Protocol::Gap, Protocol::GaplessRing, Protocol::Broadcast] {
        for receiving in [1usize, 5] {
            group.bench_with_input(
                BenchmarkId::new(protocol.to_string(), receiving),
                &receiving,
                |b, &receiving| {
                    b.iter(|| black_box(fig5::delivery_bytes(protocol, receiving, 4, run_len)))
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5
}
criterion_main!(benches);
