//! Criterion bench regenerating Fig. 4 (delivery delay vs process
//! count). Each measurement runs the full simulated scenario and
//! reports the resulting mean delay once per cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rivulet_bench::fig4;
use rivulet_core::delivery::Delivery;
use rivulet_types::Duration;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let run_len = Duration::from_secs(20);
    // Print the 4a table once.
    println!("\nFig 4a (mean delay, receiver farthest):");
    for p in fig4::sweep(true, run_len) {
        println!(
            "  {:>8} {:>6} n={} {:>9.2} ms",
            p.delivery.to_string(),
            p.size_label,
            p.n_processes,
            p.mean_delay.as_micros() as f64 / 1_000.0
        );
    }

    let mut group = c.benchmark_group("fig4_delay_scenario");
    for delivery in [Delivery::Gap, Delivery::Gapless] {
        for n in [2usize, 5] {
            group.bench_with_input(BenchmarkId::new(delivery.to_string(), n), &n, |b, &n| {
                b.iter(|| black_box(fig4::measure(delivery, 4, n, true, run_len)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
}
criterion_main!(benches);
