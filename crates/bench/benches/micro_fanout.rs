//! Micro-benchmark of the process fan-out path: the pre-optimization
//! per-peer re-encode vs encode-once + frame coalescing, over the
//! ring and broadcast-heavy activation shapes. The same workload
//! functions back the `bench` binary that emits `BENCH_fanout.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rivulet_bench::fanout::{activation_msgs, fan_out_coalesced, fan_out_naive, MicroWorkload};
use rivulet_obs::Recorder;
use rivulet_types::wire::WriterPool;
use std::hint::black_box;

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_fanout");
    for (label, w) in [
        ("broadcast_heavy", MicroWorkload::broadcast_heavy()),
        ("ring", MicroWorkload::ring()),
    ] {
        let msgs = activation_msgs(&w, 0);
        group.throughput(Throughput::Elements(w.batch as u64));
        group.bench_with_input(BenchmarkId::new("naive", label), &msgs, |b, msgs| {
            b.iter(|| black_box(fan_out_naive(msgs, w.peers)));
        });
        group.bench_with_input(BenchmarkId::new("encode_once", label), &msgs, |b, msgs| {
            let mut pool = WriterPool::new();
            // Disabled recorder: measures the no-op instrumentation
            // cost alongside the encode path, as in production.
            let obs = Recorder::default();
            b.iter(|| black_box(fan_out_coalesced(msgs, w.peers, &mut pool, &obs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
