//! Criterion bench regenerating Fig. 1 (event-count skew in a home
//! deployment replay). The measured quantity is the cost of simulating
//! the deployment; the skew table itself is printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    // Print the figure once so bench logs double as results.
    let rows = rivulet_bench::fig1::run(0.25, 5);
    println!("\nFig 1 (0.25 simulated days):");
    for row in &rows {
        println!(
            "  {:<10} emitted {:>5} received {:?} skew {}",
            row.sensor,
            row.emitted,
            row.received,
            row.skew()
        );
    }

    c.bench_function("fig1_deployment_replay_6h", |b| {
        b.iter(|| black_box(rivulet_bench::fig1::run(black_box(0.25), 5)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1
}
criterion_main!(benches);
