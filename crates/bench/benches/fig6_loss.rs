//! Criterion bench regenerating Fig. 6 (% events delivered under
//! sensor-process link loss).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rivulet_bench::fig6;
use rivulet_core::delivery::Delivery;
use rivulet_types::Duration;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let run_len = Duration::from_secs(20);
    println!("\nFig 6 (% delivered):");
    for p in fig6::sweep(run_len, 7) {
        println!(
            "  {:>8} loss={:>6.2}% rx={} {:>6.1}%",
            p.delivery.to_string(),
            p.loss * 100.0,
            p.receiving,
            p.fraction * 100.0
        );
    }

    let mut group = c.benchmark_group("fig6_loss_scenario");
    for delivery in [Delivery::Gap, Delivery::Gapless] {
        group.bench_with_input(
            BenchmarkId::new(delivery.to_string(), "50pct_2rx"),
            &delivery,
            |b, &delivery| {
                b.iter(|| black_box(fig6::delivered_fraction(delivery, 0.5, 2, run_len, 7)))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6
}
criterion_main!(benches);
