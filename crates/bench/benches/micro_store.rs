//! Micro-benchmark of the per-process [`EventStore`] hot paths —
//! insert, watermark collection, anti-entropy diffing, and retirement
//! pruning — across the flat (single-shard) and sharded layouts.
//!
//! The sharded layout exists to shrink the per-operation BTreeMap that
//! any one sensor's traffic touches: with S shards, a home with N
//! sensors pays `log(N/S)` on the outer lookup instead of `log(N)`,
//! and the k-way merge on read-side scans only runs for the rare
//! full-store iteration (watermarks, diffs). This bench pins both
//! layouts against the same workload so a regression in either shows
//! up as a cross-layout gap.
//!
//! CI runs this in smoke mode (`cargo bench --bench micro_store --
//! --test`) so the loops stay wired without paying full sample counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rivulet_core::store::EventStore;
use rivulet_types::{Event, EventId, EventKind, SensorId, Time};
use std::hint::black_box;

const SENSORS: u32 = 64;
const EVENTS_PER_SENSOR: u64 = 64;
const CAP_PER_SENSOR: usize = 128;

/// `(name, shard count)` — 1 shard is the original flat layout.
const LAYOUTS: [(&str, usize); 3] = [("flat", 1), ("sharded_4", 4), ("sharded_8", 8)];

fn ev(sensor: u32, seq: u64) -> Event {
    Event::new(
        EventId::new(SensorId(sensor), seq),
        EventKind::Motion,
        Time::from_millis(seq),
    )
}

/// A store pre-filled with `EVENTS_PER_SENSOR` events on each of
/// `SENSORS` sensors, interleaved the way ring traffic arrives
/// (round-robin across sensors, ascending sequence).
fn filled(shards: usize) -> EventStore {
    let mut store = EventStore::with_shards(CAP_PER_SENSOR, shards);
    for seq in 0..EVENTS_PER_SENSOR {
        for sensor in 0..SENSORS {
            store.insert(ev(sensor, seq));
        }
    }
    store
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_insert");
    g.throughput(Throughput::Elements(u64::from(SENSORS) * EVENTS_PER_SENSOR));
    for (name, shards) in LAYOUTS {
        g.bench_with_input(BenchmarkId::from_parameter(name), &shards, |b, &shards| {
            b.iter(|| {
                let mut store = EventStore::with_shards(CAP_PER_SENSOR, shards);
                for seq in 0..EVENTS_PER_SENSOR {
                    for sensor in 0..SENSORS {
                        store.insert(black_box(ev(sensor, seq)));
                    }
                }
                black_box(store.len())
            });
        });
    }
    g.finish();
}

fn bench_watermarks(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_watermarks");
    g.throughput(Throughput::Elements(u64::from(SENSORS)));
    for (name, shards) in LAYOUTS {
        let store = filled(shards);
        g.bench_with_input(BenchmarkId::from_parameter(name), &store, |b, store| {
            b.iter(|| black_box(store.watermarks()));
        });
    }
    g.finish();
}

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_diff_for");
    g.throughput(Throughput::Elements(u64::from(SENSORS)));
    for (name, shards) in LAYOUTS {
        let store = filled(shards);
        // A peer that is halfway behind on every sensor: the diff has
        // to materialize EVENTS_PER_SENSOR / 2 events per sensor.
        let peer: Vec<(SensorId, u64)> = (0..SENSORS)
            .map(|s| (SensorId(s), EVENTS_PER_SENSOR / 2))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(name), &store, |b, store| {
            b.iter(|| black_box(store.diff_for(&peer)));
        });
    }
    g.finish();
}

fn bench_retirement(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_prune_through");
    g.throughput(Throughput::Elements(u64::from(SENSORS)));
    for (name, shards) in LAYOUTS {
        g.bench_with_input(BenchmarkId::from_parameter(name), &shards, |b, &shards| {
            // The vendored criterion has no `iter_batched`, so the
            // fill is measured alongside the prune; the layouts still
            // compare like-for-like because both pay the same fill.
            b.iter(|| {
                let mut store = filled(shards);
                let mut pruned = 0;
                for sensor in 0..SENSORS {
                    pruned += store.prune_through(SensorId(sensor), EVENTS_PER_SENSOR / 2);
                }
                black_box(pruned)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_watermarks,
    bench_diff,
    bench_retirement
);
criterion_main!(benches);
