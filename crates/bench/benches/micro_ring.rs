//! Micro-benchmark of the round-3 hot-path primitives: the bounded
//! SPSC delivery→execution ring ([`SpscRing`]) and the event-payload
//! arena ([`PayloadArena`]).
//!
//! The ring replaces a `VecDeque` handoff on the delivery hot path,
//! so the interesting comparisons are (a) single push/pop round trips
//! against a `VecDeque` doing the same work and (b) batched drains
//! (`pop_batch`), which is how the process actually empties the ring.
//! The arena replaces per-event `Bytes::from(Vec<u8>)` payload copies
//! with bump allocation into recycled chunks, so it is pinned against
//! exactly that baseline at typical sensor-payload sizes.
//!
//! CI runs this in smoke mode (`cargo bench --bench micro_ring --
//! --test`) so the loops stay wired without paying full sample counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rivulet_net::ring::SpscRing;
use rivulet_types::PayloadArena;
use std::collections::VecDeque;
use std::hint::black_box;

const ITEMS: u64 = 4096;
const BATCH: usize = 64;

fn bench_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_push_pop");
    g.throughput(Throughput::Elements(ITEMS));
    g.bench_function("spsc_ring", |b| {
        let ring: SpscRing<u64> = SpscRing::with_capacity(1024);
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..ITEMS {
                ring.push(black_box(i)).expect("never full: popped below");
                sum += ring.pop().expect("just pushed");
            }
            black_box(sum)
        });
    });
    g.bench_function("vecdeque", |b| {
        let mut queue: VecDeque<u64> = VecDeque::with_capacity(1024);
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..ITEMS {
                queue.push_back(black_box(i));
                sum += queue.pop_front().expect("just pushed");
            }
            black_box(sum)
        });
    });
    g.finish();
}

fn bench_batched_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_batched_drain");
    g.throughput(Throughput::Elements(ITEMS));
    g.bench_function("spsc_pop_batch", |b| {
        let ring: SpscRing<u64> = SpscRing::with_capacity(BATCH * 2);
        let mut scratch: Vec<u64> = Vec::with_capacity(BATCH);
        b.iter(|| {
            let mut sum = 0u64;
            let mut produced = 0u64;
            while produced < ITEMS {
                for _ in 0..BATCH {
                    ring.push(black_box(produced)).expect("drained each round");
                    produced += 1;
                }
                scratch.clear();
                let popped = ring.pop_batch(&mut scratch, BATCH);
                sum += scratch.iter().take(popped).sum::<u64>();
            }
            black_box(sum)
        });
    });
    g.bench_function("vecdeque_drain", |b| {
        let mut queue: VecDeque<u64> = VecDeque::with_capacity(BATCH * 2);
        b.iter(|| {
            let mut sum = 0u64;
            let mut produced = 0u64;
            while produced < ITEMS {
                for _ in 0..BATCH {
                    queue.push_back(black_box(produced));
                    produced += 1;
                }
                sum += queue.drain(..).sum::<u64>();
            }
            black_box(sum)
        });
    });
    g.finish();
}

fn bench_arena_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("arena_alloc");
    // 1 KiB is the paper's sensor-event payload size; 64 B covers the
    // scalar-reading end.
    for payload_bytes in [64usize, 1024] {
        g.throughput(Throughput::Bytes(ITEMS * payload_bytes as u64));
        let data = vec![0xA5u8; payload_bytes];
        g.bench_with_input(
            BenchmarkId::new("arena", payload_bytes),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut arena = PayloadArena::new();
                    let mut held = Vec::with_capacity(ITEMS as usize);
                    for _ in 0..ITEMS {
                        held.push(arena.alloc(black_box(data)));
                    }
                    black_box(held.len())
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("bytes_from_vec", payload_bytes),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut held = Vec::with_capacity(ITEMS as usize);
                    for _ in 0..ITEMS {
                        held.push(bytes::Bytes::from(black_box(data).clone()));
                    }
                    black_box(held.len())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_push_pop,
    bench_batched_drain,
    bench_arena_alloc
);
criterion_main!(benches);
