//! Criterion bench regenerating Fig. 8 (coordinated vs uncoordinated
//! polling overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rivulet_bench::fig8::{self, Mode};
use rivulet_types::Duration;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let run_len = Duration::from_secs(120);
    println!("\nFig 8 (polls vs optimal):");
    for mode in [Mode::Gap, Mode::Coordinated, Mode::Uncoordinated] {
        for p in fig8::run(mode, run_len, 3) {
            println!(
                "  {:>16} {:<14} {:>5.2}x",
                mode.to_string(),
                p.sensor,
                p.normalized
            );
        }
    }

    let mut group = c.benchmark_group("fig8_polling_scenario");
    for mode in [Mode::Gap, Mode::Coordinated, Mode::Uncoordinated] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.to_string()),
            &mode,
            |b, &mode| b.iter(|| black_box(fig8::run(mode, run_len, 3))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8
}
criterion_main!(benches);
