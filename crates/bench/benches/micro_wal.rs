//! Micro-benchmark of the WAL flush policies: per-event fsync vs
//! group commit.
//!
//! The interesting numbers are in *virtual* disk time (the
//! deterministic [`SimBackend`] latency model), printed as a table
//! before the wall-clock loops: appends per virtual second and the p99
//! virtual append latency. Per-event fsync pays the ~500 µs flush on
//! every append; group commit amortizes it across the batch, which is
//! exactly why the runtime defaults to batching with a tick-driven
//! backstop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rivulet_storage::{FlushPolicy, SimBackend, StorageBackend, Wal, WalOptions};
use rivulet_types::{Duration, Event, EventId, EventKind, SensorId, Time};
use std::hint::black_box;
use std::sync::Arc;

fn ev(seq: u64) -> Event {
    Event::new(
        EventId::new(SensorId(1), seq),
        EventKind::Motion,
        Time::from_millis(seq),
    )
}

fn wal_with(policy: FlushPolicy) -> (Wal, Arc<SimBackend>) {
    let backend = Arc::new(SimBackend::new(1));
    let options = WalOptions {
        flush_policy: policy,
        segment_max_bytes: 4 * 1024 * 1024,
    };
    let (wal, _) =
        Wal::open(Arc::clone(&backend) as Arc<dyn StorageBackend>, options).expect("open wal");
    (wal, backend)
}

const POLICIES: [(&str, FlushPolicy); 3] = [
    ("per_event", FlushPolicy::PerEvent),
    ("every_8", FlushPolicy::EveryN(8)),
    ("every_64", FlushPolicy::EveryN(64)),
];

/// Deterministic virtual-time comparison: appends/sec against the
/// simulated disk and the p99 latency an appender observes.
fn virtual_time_report() {
    const N: u64 = 10_000;
    println!("wal flush policy comparison over {N} appends (virtual disk time):");
    for (name, policy) in POLICIES {
        let (mut wal, backend) = wal_with(policy);
        let mut latencies: Vec<Duration> = Vec::with_capacity(N as usize);
        let mut prev = Duration::ZERO;
        for seq in 0..N {
            wal.append_event(&ev(seq)).expect("append");
            let busy = backend.busy();
            latencies.push(busy - prev);
            prev = busy;
        }
        wal.flush().expect("drain final batch");
        let total = backend.busy();
        latencies.sort_unstable();
        let p50 = latencies[latencies.len() / 2];
        let p99 = latencies[(latencies.len() * 99) / 100];
        let appends_per_vsec = N as f64 * 1e6 / total.as_micros() as f64;
        let (_, syncs, _) = backend.op_counts();
        println!(
            "  {name:>9}: {appends_per_vsec:>10.0} appends/s  append p50 {p50} p99 {p99}  \
             total disk {total}  fsyncs {syncs}"
        );
    }
}

fn bench_micro_wal(c: &mut Criterion) {
    virtual_time_report();

    // Wall-clock loops: CPU cost of the append path (framing, CRC,
    // buffering, simulated backend bookkeeping) per policy.
    let mut group = c.benchmark_group("micro_wal");
    group.throughput(Throughput::Elements(1));
    for (name, policy) in POLICIES {
        group.bench_with_input(BenchmarkId::new("append", name), &policy, |b, &policy| {
            let (mut wal, _backend) = wal_with(policy);
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                black_box(wal.append_event(&ev(seq)).expect("append"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_micro_wal);
criterion_main!(benches);
