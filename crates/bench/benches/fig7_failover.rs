//! Criterion bench regenerating Fig. 7 (failover timeline around an
//! induced process crash), plus the DESIGN.md ablation sweeping the
//! failure-detection threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rivulet_bench::fig7;
use rivulet_core::delivery::Delivery;
use rivulet_types::{Duration, Time};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let crash = Time::from_secs(24);
    let run_len = Duration::from_secs(50);
    println!("\nFig 7 (crash at t=24s):");
    for delivery in [Delivery::Gap, Delivery::Gapless] {
        let out = fig7::run(delivery, crash, run_len, 11);
        println!(
            "  {:>8}: emitted {} delivered {} promoted_at {:?}",
            delivery.to_string(),
            out.emitted,
            out.unique_delivered,
            out.promoted_at
        );
    }

    let mut group = c.benchmark_group("fig7_failover_scenario");
    for delivery in [Delivery::Gap, Delivery::Gapless] {
        group.bench_with_input(
            BenchmarkId::new(delivery.to_string(), "crash24"),
            &delivery,
            |b, &delivery| b.iter(|| black_box(fig7::run(delivery, crash, run_len, 11))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7
}
criterion_main!(benches);
