//! Determinism contract of the observability layer: two simulation
//! runs with the same seed, topology, and fault script must export
//! byte-identical `ObsSnapshot` JSON, and the live driver must export
//! the same metric families in Prometheus text form.

use rivulet_bench::common::{run_delivery, DeliveryScenario};
use rivulet_core::delivery::Delivery;
use rivulet_types::{Duration, Time};

/// The Fig. 7-shaped scenario used for determinism checks: crash plus
/// replay exercises counters, histograms, events, and spans at once.
fn crash_scenario() -> DeliveryScenario {
    let mut cfg = DeliveryScenario::paper_default(Delivery::Gapless);
    cfg.receivers = vec![0, 1, 2, 3, 4];
    cfg.crash_app_at = Some(Time::from_secs(24));
    cfg.duration = Duration::from_secs(40);
    cfg.obs = true;
    cfg.durable = true;
    cfg.seed = 11;
    cfg
}

#[test]
fn same_seed_runs_export_identical_json() {
    let cfg = crash_scenario();
    let a = run_delivery(&cfg).obs;
    let b = run_delivery(&cfg).obs;
    assert_eq!(a, b, "snapshots must be structurally equal");
    assert_eq!(a.to_json(), b.to_json(), "JSON must be byte-identical");
    assert_eq!(
        a.to_prometheus(),
        b.to_prometheus(),
        "Prometheus text must be byte-identical"
    );
}

#[test]
fn different_seeds_differ() {
    // Link loss makes the run actually consume randomness; a loss-free
    // schedule is identical under every seed.
    let mut cfg = crash_scenario();
    cfg.loss = 0.3;
    let mut other = cfg.clone();
    other.seed = 12;
    let a = run_delivery(&cfg).obs;
    let b = run_delivery(&other).obs;
    assert_ne!(
        a.to_json(),
        b.to_json(),
        "a different seed should perturb at least the timeline"
    );
}

#[test]
fn snapshot_contains_every_migrated_layer() {
    let snap = run_delivery(&crash_scenario()).obs;
    // Network layer.
    assert!(snap.counter("net.messages_sent") > 0);
    assert!(snap.counter("net.wifi_bytes") > 0);
    assert!(snap.histogram("net.payload_bytes").is_some());
    assert_eq!(snap.events_named("net.crash").len(), 1);
    // Application layer.
    assert!(snap.counter("app.deliveries") > 0);
    assert!(snap.histogram("app.delay_us").is_some());
    assert!(!snap.events_named("app.delivery").is_empty());
    assert!(!snap.events_named("exec.promoted").is_empty());
    // Storage layer (Gapless runs the WAL).
    assert!(snap.counter("wal.appends") > 0);
    assert!(snap.counter("wal.flushes") > 0);
    assert!(snap.counter("wal.recoveries") > 0);
    // Store residency sampled on ticks.
    assert!(snap.histogram("store.len").is_some());
    // The induced crash opened (and the promotion closed) a span.
    let spans = snap.spans_named("failover");
    assert_eq!(spans.len(), 1);
    assert!(spans[0].end.is_some(), "span closed by replacement app");
}

#[test]
fn disabled_recorder_exports_empty_snapshot() {
    let mut cfg = crash_scenario();
    cfg.obs = false;
    let snap = run_delivery(&cfg).obs;
    assert_eq!(snap, rivulet_obs::ObsSnapshot::default());
    assert!(snap.to_prometheus().is_empty());
}
