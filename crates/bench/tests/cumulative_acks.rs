//! End-to-end regression test for the cumulative-ack retirement path.
//!
//! The original wiring shipped dead: `on_cumulative_ack` never fired
//! in simulation runs, so `acks_avoided` stayed zero and every
//! broadcast receipt paid a per-event ack even in `AckMode::Cumulative`.
//! No test noticed, because nothing asserted the counter was *live*.
//! These tests pin the fix at the whole-platform level: an optimized
//! sim run must retire pending broadcasts via keep-alive watermarks
//! (counted as avoided acks at the origin), and the unoptimized
//! per-event twin must keep the counter at exactly zero.

use rivulet_bench::fanout::{run_sim_point, SimWorkload};

#[test]
fn optimized_broadcast_run_retires_events_via_cumulative_acks() {
    let p = run_sim_point(SimWorkload::Broadcast, true);
    assert!(p.delivered > 0, "sanity: the run must deliver events");
    assert!(
        p.fanout.acks_avoided > 0,
        "cumulative acks retired nothing in an optimized broadcast run \
         (delivered {}): the watermark-retirement path is dead again",
        p.delivered
    );
}

#[test]
fn optimized_ring_run_retires_tracked_events() {
    // Ring-origin events are tracked (registered pending without a
    // flood) and must also retire through received watermarks.
    let p = run_sim_point(SimWorkload::Ring, true);
    assert!(
        p.fanout.acks_avoided > 0,
        "ring-tracked events never retired via cumulative acks"
    );
}

#[test]
fn per_event_twin_reports_zero_avoided_acks() {
    // The unoptimized twin runs AckMode::PerEvent: every receipt acks
    // individually, so nothing is "avoided" and a nonzero counter here
    // would mean the baseline is quietly running the optimization.
    let p = run_sim_point(SimWorkload::Broadcast, false);
    assert!(p.delivered > 0, "sanity: the run must deliver events");
    assert_eq!(
        p.fanout.acks_avoided, 0,
        "per-event baseline must not count avoided acks"
    );
}
