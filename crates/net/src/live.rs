//! Threaded wall-clock driver.
//!
//! [`LiveNet`] runs each actor on its own OS thread, routing messages
//! through crossbeam channels — the closest software analogue of the
//! paper's deployment, where each Rivulet process is a JVM service on
//! its own Raspberry Pi. The runnable examples use this driver to
//! demonstrate the platform operating concurrently in real time.
//!
//! Fault injection (crash, recovery, link loss, partitions) uses the
//! same vocabulary as the simulator, but is invoked imperatively from
//! the controlling thread rather than scheduled in virtual time.
//!
//! Unlike [`crate::sim`], runs under this driver are **not**
//! deterministic: thread scheduling and wall-clock timer jitter are
//! real. All quantitative experiments therefore use the simulator; the
//! live driver exists to show the same protocol code working outside
//! simulation.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rivulet_types::Time;

use crate::actor::{Actor, ActorEvent, ActorId, Context, Effect};
use crate::link::{ActorClass, DropReason};
use crate::metrics::NetMetrics;

/// Configuration of a live run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveConfig {
    /// Base seed for per-actor RNGs (live runs are still not
    /// deterministic; the seed only fixes the loss coin-flips given an
    /// ordering).
    pub seed: u64,
}

enum ThreadInput {
    Event(ActorEvent),
    Crash,
    Recover,
    Stop,
}

/// Directed-link state shared across actor threads.
#[derive(Debug, Default, Clone, Copy)]
struct LiveLink {
    loss: f64,
    blocked: bool,
}

#[derive(Debug, Default)]
struct SharedTopology {
    links: HashMap<(ActorId, ActorId), LiveLink>,
    /// Partition group per actor; empty = no partition.
    partition: HashMap<ActorId, u32>,
}

impl SharedTopology {
    fn passable(&self, from: ActorId, to: ActorId, rng: &mut StdRng) -> Result<(), DropReason> {
        if !self.partition.is_empty() {
            // Actors absent from every group are unaffected (the
            // partition severs the WiFi mesh, not device radios).
            if let (Some(ga), Some(gb)) = (self.partition.get(&from), self.partition.get(&to)) {
                if ga != gb {
                    return Err(DropReason::Blocked);
                }
            }
        }
        let link = self.links.get(&(from, to)).copied().unwrap_or_default();
        if link.blocked {
            return Err(DropReason::Blocked);
        }
        if link.loss > 0.0 && rng.gen_bool(link.loss.min(1.0)) {
            return Err(DropReason::RandomLoss);
        }
        Ok(())
    }
}

struct Router {
    start: Instant,
    inboxes: RwLock<Vec<Sender<ThreadInput>>>,
    classes: RwLock<Vec<ActorClass>>,
    topology: RwLock<SharedTopology>,
    metrics: Mutex<NetMetrics>,
}

impl Router {
    fn now(&self) -> Time {
        Time::from_micros(u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX))
    }

    fn route(&self, rng: &mut StdRng, from: ActorId, to: ActorId, payload: Bytes) {
        let (wifi, known) = {
            let classes = self.classes.read();
            match (classes.get(from.0 as usize), classes.get(to.0 as usize)) {
                (Some(a), Some(b)) => {
                    (*a == ActorClass::Process && *b == ActorClass::Process, true)
                }
                _ => (false, false),
            }
        };
        if !known {
            return;
        }
        self.metrics.lock().record_send(from, payload.len(), wifi);
        let verdict = self.topology.read().passable(from, to, rng);
        match verdict {
            Ok(()) => {
                let sender = self.inboxes.read()[to.0 as usize].clone();
                // A full or disconnected inbox behaves like a crashed
                // destination; the paper's fault model permits this.
                if sender
                    .send(ThreadInput::Event(ActorEvent::Message { from, payload }))
                    .is_ok()
                {
                    self.metrics.lock().record_delivery();
                } else {
                    self.metrics.lock().record_drop(DropReason::DestinationDown);
                }
            }
            Err(reason) => self.metrics.lock().record_drop(reason),
        }
    }
}

/// A handle to a running live network.
///
/// Dropping the handle stops all actor threads.
pub struct LiveNet {
    router: Arc<Router>,
    handles: Vec<JoinHandle<()>>,
    seed: u64,
}

impl std::fmt::Debug for LiveNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveNet")
            .field("actors", &self.handles.len())
            .finish()
    }
}

impl LiveNet {
    /// Creates an empty live network.
    #[must_use]
    pub fn new(config: LiveConfig) -> Self {
        Self {
            router: Arc::new(Router {
                start: Instant::now(),
                inboxes: RwLock::new(Vec::new()),
                classes: RwLock::new(Vec::new()),
                topology: RwLock::new(SharedTopology::default()),
                metrics: Mutex::new(NetMetrics::new()),
            }),
            handles: Vec::new(),
            seed: config.seed,
        }
    }

    /// Spawns an actor on its own thread, returning its id. The actor
    /// receives [`ActorEvent::Start`] immediately.
    pub fn add_actor<F>(&mut self, name: &str, class: ActorClass, factory: F) -> ActorId
    where
        F: FnMut() -> Box<dyn Actor> + Send + 'static,
    {
        let id = {
            let mut classes = self.router.classes.write();
            let id = ActorId(classes.len() as u32);
            classes.push(class);
            id
        };
        let (tx, rx) = channel::unbounded();
        self.router.inboxes.write().push(tx);
        let router = Arc::clone(&self.router);
        let seed = self.seed.wrapping_add(u64::from(id.0));
        let thread_name = format!("rivulet-{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || actor_thread(router, id, factory, rx, seed))
            .expect("spawn actor thread");
        self.handles.push(handle);
        id
    }

    /// Wall-clock time since the network started.
    #[must_use]
    pub fn now(&self) -> Time {
        self.router.now()
    }

    /// A snapshot of the accumulated network counters.
    #[must_use]
    pub fn metrics(&self) -> NetMetrics {
        self.router.metrics.lock().clone()
    }

    /// The unified observability handle shared by this driver and every
    /// process deployed on it. Disabled by default; enable it to
    /// collect an [`rivulet_obs::ObsSnapshot`] (or a Prometheus text
    /// dump) from a live run.
    #[must_use]
    pub fn recorder(&self) -> rivulet_obs::Recorder {
        self.router.metrics.lock().obs.clone()
    }

    /// Exports the unified observability snapshot accumulated so far
    /// (see [`NetMetrics::obs_snapshot`]).
    #[must_use]
    pub fn obs_snapshot(&self) -> rivulet_obs::ObsSnapshot {
        self.router.metrics.lock().obs_snapshot()
    }

    /// Sets the loss probability on the directed link `from → to`.
    pub fn set_loss(&self, from: ActorId, to: ActorId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        let mut topo = self.router.topology.write();
        topo.links.entry((from, to)).or_default().loss = loss;
    }

    /// Blocks or unblocks the directed link `from → to`.
    pub fn set_blocked(&self, from: ActorId, to: ActorId, blocked: bool) {
        let mut topo = self.router.topology.write();
        topo.links.entry((from, to)).or_default().blocked = blocked;
    }

    /// Imposes a partition; actors absent from all groups form an
    /// implicit extra group.
    pub fn set_partition(&self, groups: &[Vec<ActorId>]) {
        let mut topo = self.router.topology.write();
        topo.partition.clear();
        for (g, members) in groups.iter().enumerate() {
            for m in members {
                topo.partition.insert(*m, g as u32);
            }
        }
    }

    /// Heals any active partition.
    pub fn heal_partition(&self) {
        self.router.topology.write().partition.clear();
    }

    /// Crashes `actor`: its state is dropped and messages to it are
    /// discarded until [`LiveNet::recover`].
    pub fn crash(&self, actor: ActorId) {
        let _ = self.router.inboxes.read()[actor.0 as usize].send(ThreadInput::Crash);
        let now = self.router.now();
        let metrics = self.router.metrics.lock();
        let key = u64::from(actor.0);
        metrics.obs.event("net.crash", now, key, 0);
        metrics.obs.span_open("failover", key, now);
    }

    /// Recovers a crashed `actor`, rebuilding it from its factory.
    pub fn recover(&self, actor: ActorId) {
        let _ = self.router.inboxes.read()[actor.0 as usize].send(ThreadInput::Recover);
        let now = self.router.now();
        self.router
            .metrics
            .lock()
            .obs
            .event("net.recover", now, u64::from(actor.0), 0);
    }

    /// Injects a message into `to` as if sent by `from`; lets external
    /// harness code participate in the protocol.
    pub fn inject(&self, from: ActorId, to: ActorId, payload: Bytes) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.router.route(&mut rng, from, to, payload);
    }

    /// Stops all actor threads and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn stop_all(&self) {
        for tx in self.router.inboxes.read().iter() {
            let _ = tx.send(ThreadInput::Stop);
        }
    }
}

impl Drop for LiveNet {
    fn drop(&mut self) {
        self.stop_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct PendingTimer {
    deadline: Time,
    token: u64,
    gen: u64,
}

fn actor_thread<F>(
    router: Arc<Router>,
    id: ActorId,
    mut factory: F,
    rx: Receiver<ThreadInput>,
    seed: u64,
) where
    F: FnMut() -> Box<dyn Actor> + Send + 'static,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut instance: Option<Box<dyn Actor>> = Some(factory());
    let mut timers: Vec<PendingTimer> = Vec::new();
    let mut timer_gens: HashMap<u64, u64> = HashMap::new();
    let mut pending_start = true;

    loop {
        // Deliver Start after build/rebuild.
        if pending_start {
            pending_start = false;
            if let Some(actor) = instance.as_mut() {
                let halted = run_handler(
                    &router,
                    id,
                    actor.as_mut(),
                    ActorEvent::Start,
                    &mut rng,
                    &mut timers,
                    &mut timer_gens,
                );
                if halted {
                    instance = None;
                }
            }
        }

        // Fire due timers.
        let now = router.now();
        let mut fired = Vec::new();
        timers.retain(|t| {
            if t.deadline <= now && timer_gens.get(&t.token).copied().unwrap_or(0) == t.gen {
                fired.push(t.token);
                false
            } else {
                t.deadline > now // silently discard cancelled timers
            }
        });
        for token in fired {
            router.metrics.lock().record_timer();
            if let Some(actor) = instance.as_mut() {
                let halted = run_handler(
                    &router,
                    id,
                    actor.as_mut(),
                    ActorEvent::Timer { token },
                    &mut rng,
                    &mut timers,
                    &mut timer_gens,
                );
                if halted {
                    instance = None;
                }
            }
        }

        // Wait for the next input or timer deadline.
        let next_deadline = timers
            .iter()
            .filter(|t| timer_gens.get(&t.token).copied().unwrap_or(0) == t.gen)
            .map(|t| t.deadline)
            .min();
        let wait = match next_deadline {
            Some(deadline) => deadline.duration_since(router.now()).to_std(),
            None => std::time::Duration::from_millis(50),
        };
        match rx.recv_timeout(wait) {
            Ok(ThreadInput::Event(event)) => {
                if let Some(actor) = instance.as_mut() {
                    let halted = run_handler(
                        &router,
                        id,
                        actor.as_mut(),
                        event,
                        &mut rng,
                        &mut timers,
                        &mut timer_gens,
                    );
                    if halted {
                        instance = None;
                    }
                } else {
                    router
                        .metrics
                        .lock()
                        .record_drop(DropReason::DestinationDown);
                }
            }
            Ok(ThreadInput::Crash) => {
                instance = None;
                timers.clear();
                timer_gens.clear();
            }
            Ok(ThreadInput::Recover) => {
                if instance.is_none() {
                    instance = Some(factory());
                    pending_start = true;
                }
            }
            Ok(ThreadInput::Stop) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

/// Runs one handler and applies its effects; returns `true` if the
/// actor halted itself.
fn run_handler(
    router: &Arc<Router>,
    id: ActorId,
    actor: &mut dyn Actor,
    event: ActorEvent,
    rng: &mut StdRng,
    timers: &mut Vec<PendingTimer>,
    timer_gens: &mut HashMap<u64, u64>,
) -> bool {
    let mut ctx = Context::new(id, router.now(), rng);
    actor.on_event(&mut ctx, event);
    let effects = std::mem::take(&mut ctx.effects);
    let mut halted = false;
    for effect in effects {
        match effect {
            Effect::Send { to, payload } => router.route(rng, id, to, payload),
            Effect::SetTimer { token, after } => {
                let gen = timer_gens.get(&token).copied().unwrap_or(0);
                timers.push(PendingTimer {
                    deadline: router.now() + after,
                    token,
                    gen,
                });
            }
            Effect::CancelTimer { token } => {
                *timer_gens.entry(token).or_insert(0) += 1;
            }
            Effect::Halt => halted = true,
        }
    }
    halted
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::Duration;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Echo;
    impl Actor for Echo {
        fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
            if let ActorEvent::Message { from, payload } = event {
                ctx.send(from, payload);
            }
        }
    }

    struct Pinger {
        peer: ActorId,
        replies: Arc<AtomicU64>,
    }
    impl Actor for Pinger {
        fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
            match event {
                ActorEvent::Start => {
                    ctx.set_timer(Duration::from_millis(5), 1);
                }
                ActorEvent::Timer { .. } => {
                    ctx.send(self.peer, Bytes::from_static(b"ping"));
                    ctx.set_timer(Duration::from_millis(5), 1);
                }
                ActorEvent::Message { .. } => {
                    self.replies.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }

    fn wait_until(deadline_ms: u64, mut done: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed().as_millis() < u128::from(deadline_ms) {
            if done() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        done()
    }

    #[test]
    fn ping_pong_over_threads() {
        let mut net = LiveNet::new(LiveConfig::default());
        let echo = net.add_actor("echo", ActorClass::Process, || Box::new(Echo));
        let replies = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&replies);
        net.add_actor("ping", ActorClass::Process, move || {
            Box::new(Pinger {
                peer: echo,
                replies: Arc::clone(&r),
            })
        });
        assert!(
            wait_until(2_000, || replies.load(Ordering::SeqCst) >= 3),
            "expected at least 3 echo replies"
        );
        let m = net.metrics();
        assert!(m.messages_sent >= 6);
        net.shutdown();
    }

    #[test]
    fn blocked_link_stops_traffic_and_unblock_restores() {
        let mut net = LiveNet::new(LiveConfig::default());
        let echo = net.add_actor("echo", ActorClass::Process, || Box::new(Echo));
        let replies = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&replies);
        let ping = net.add_actor("ping", ActorClass::Process, move || {
            Box::new(Pinger {
                peer: echo,
                replies: Arc::clone(&r),
            })
        });
        net.set_blocked(ping, echo, true);
        std::thread::sleep(std::time::Duration::from_millis(100));
        let before = replies.load(Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert_eq!(
            replies.load(Ordering::SeqCst),
            before,
            "blocked link leaked"
        );
        net.set_blocked(ping, echo, false);
        assert!(
            wait_until(2_000, || replies.load(Ordering::SeqCst) > before),
            "unblocking should restore traffic"
        );
        net.shutdown();
    }

    #[test]
    fn crash_and_recover_round_trip() {
        let mut net = LiveNet::new(LiveConfig::default());
        let echo = net.add_actor("echo", ActorClass::Process, || Box::new(Echo));
        let replies = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&replies);
        net.add_actor("ping", ActorClass::Process, move || {
            Box::new(Pinger {
                peer: echo,
                replies: Arc::clone(&r),
            })
        });
        assert!(wait_until(2_000, || replies.load(Ordering::SeqCst) >= 1));
        net.crash(echo);
        std::thread::sleep(std::time::Duration::from_millis(100));
        let during = replies.load(Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(100));
        // Allow at most a couple of in-flight replies to straggle in.
        assert!(
            replies.load(Ordering::SeqCst) <= during + 2,
            "crashed echo kept replying"
        );
        net.recover(echo);
        let resumed = replies.load(Ordering::SeqCst);
        assert!(
            wait_until(2_000, || replies.load(Ordering::SeqCst) > resumed),
            "recovered echo should reply again"
        );
        net.shutdown();
    }

    #[test]
    fn live_driver_exports_prometheus_snapshot() {
        let mut net = LiveNet::new(LiveConfig::default());
        net.recorder().set_enabled(true);
        let echo = net.add_actor("echo", ActorClass::Process, || Box::new(Echo));
        let replies = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&replies);
        net.add_actor("ping", ActorClass::Process, move || {
            Box::new(Pinger {
                peer: echo,
                replies: Arc::clone(&r),
            })
        });
        assert!(wait_until(2_000, || replies.load(Ordering::SeqCst) >= 3));
        net.crash(echo);
        let snap = net.obs_snapshot();
        assert!(snap.counter("net.messages_sent") >= 6);
        assert_eq!(snap.events_named("net.crash").len(), 1);
        assert_eq!(snap.spans_named("failover").len(), 1);
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE net_messages_sent counter"));
        assert!(text.contains("# TYPE net_payload_bytes histogram"));
        net.shutdown();
    }

    #[test]
    fn partition_blocks_cross_group() {
        let mut net = LiveNet::new(LiveConfig::default());
        let echo = net.add_actor("echo", ActorClass::Process, || Box::new(Echo));
        let replies = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&replies);
        let ping = net.add_actor("ping", ActorClass::Process, move || {
            Box::new(Pinger {
                peer: echo,
                replies: Arc::clone(&r),
            })
        });
        net.set_partition(&[vec![ping], vec![echo]]);
        std::thread::sleep(std::time::Duration::from_millis(150));
        let before = replies.load(Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(150));
        assert!(replies.load(Ordering::SeqCst) <= before + 1);
        net.heal_partition();
        assert!(
            wait_until(2_000, || replies.load(Ordering::SeqCst) > before + 1),
            "healing should restore traffic"
        );
        net.shutdown();
    }
}
