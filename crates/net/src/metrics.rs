//! Network accounting, bridged into the unified observability layer.
//!
//! The Fig. 5 experiment of the paper compares the *network overhead* —
//! "the amount of data transferred over the home network for delivering
//! an event" — of Gap, Gapless, and naive broadcast. [`NetMetrics`]
//! charges every routed message (payload + frame header) to the sending
//! actor and to the link class it crossed, and mirrors every count into
//! a shared [`rivulet_obs::Recorder`] under the `net.*` and `fanout.*`
//! names cataloged in `OBSERVABILITY.md`. Experiments read the
//! [`rivulet_obs::ObsSnapshot`] produced by [`NetMetrics::obs_snapshot`]
//! (via the drivers' `obs_snapshot()`); the public counter fields
//! remain for driver-internal assertions and cheap in-test peeking.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rivulet_obs::{ObsSnapshot, Recorder};
use rivulet_types::wire::FRAME_HEADER_BYTES;

use crate::actor::ActorId;
use crate::link::DropReason;

/// Observability counter name for a drop reason.
#[must_use]
pub fn drop_counter_name(reason: DropReason) -> &'static str {
    match reason {
        DropReason::RandomLoss => "net.drops.random_loss",
        DropReason::Blocked => "net.drops.blocked",
        DropReason::DestinationDown => "net.drops.destination_down",
    }
}

/// Shared counters for the encode-once / frame-coalescing fan-out
/// path.
///
/// The savings happen inside process actors (the core crate), but are
/// reported alongside the network accounting, so the `Arc` is handed to
/// every process at deployment and read back through
/// [`NetMetrics::fanout`]. Plain relaxed atomics: counters only, no
/// synchronization semantics.
#[derive(Debug, Default)]
pub struct FanoutStats {
    frames_coalesced: AtomicU64,
    messages_avoided: AtomicU64,
    encode_bytes_saved: AtomicU64,
    acks_avoided: AtomicU64,
}

/// A point-in-time copy of [`FanoutStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanoutSnapshot {
    /// Multi-command frames emitted (each replaced ≥ 2 messages).
    pub frames_coalesced: u64,
    /// Network messages that never existed thanks to coalescing
    /// (messages folded into frames minus the frames themselves).
    pub messages_avoided: u64,
    /// Encode work skipped by encode-once fan-out: bytes that were
    /// cheap-cloned to additional destinations instead of re-encoded.
    pub encode_bytes_saved: u64,
    /// Per-event `BroadcastAck` messages replaced by cumulative
    /// keep-alive watermarks.
    pub acks_avoided: u64,
}

impl FanoutStats {
    /// Records one emitted frame that folded `msgs` messages together.
    pub fn record_frame(&self, msgs: usize) {
        self.frames_coalesced.fetch_add(1, Ordering::Relaxed);
        self.messages_avoided
            .fetch_add(msgs.saturating_sub(1) as u64, Ordering::Relaxed);
    }

    /// Records `bytes` of encoding skipped by cheap-cloning an already
    /// encoded message to extra destinations.
    pub fn record_encode_reuse(&self, bytes: u64) {
        self.encode_bytes_saved.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one broadcast receipt acknowledged cumulatively instead
    /// of with a dedicated ack message.
    pub fn record_ack_avoided(&self) {
        self.acks_avoided.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` per-event acknowledgements retired at once by a
    /// single cumulative keep-alive watermark.
    pub fn record_acks_avoided(&self, n: u64) {
        self.acks_avoided.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies the counters.
    #[must_use]
    pub fn snapshot(&self) -> FanoutSnapshot {
        FanoutSnapshot {
            frames_coalesced: self.frames_coalesced.load(Ordering::Relaxed),
            messages_avoided: self.messages_avoided.load(Ordering::Relaxed),
            encode_bytes_saved: self.encode_bytes_saved.load(Ordering::Relaxed),
            acks_avoided: self.acks_avoided.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters in place, preserving every handle to the
    /// `Arc` (processes keep recording into the same instance after a
    /// metrics reset).
    pub fn reset(&self) {
        self.frames_coalesced.store(0, Ordering::Relaxed);
        self.messages_avoided.store(0, Ordering::Relaxed);
        self.encode_bytes_saved.store(0, Ordering::Relaxed);
        self.acks_avoided.store(0, Ordering::Relaxed);
    }
}

/// Counters accumulated over one driver run.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    /// Messages handed to the network (whether or not delivered).
    pub messages_sent: u64,
    /// Messages actually delivered to their destination actor.
    pub messages_delivered: u64,
    /// Messages dropped, by reason.
    pub drops: HashMap<DropReason, u64>,
    /// Bytes (payload + frame header) sent on inter-process links.
    pub wifi_bytes: u64,
    /// Bytes (payload + frame header) sent on device radio links.
    pub radio_bytes: u64,
    /// Bytes sent per actor (payload + frame header, either class).
    pub bytes_by_sender: HashMap<ActorId, u64>,
    /// Timers fired.
    pub timers_fired: u64,
    /// Encode-once / coalescing savings recorded by process actors
    /// (shared: cloning the metrics clones the handle, not the
    /// counters).
    pub fanout: Arc<FanoutStats>,
    /// Unified observability handle every count is mirrored into
    /// (shared: cloning the metrics clones the handle). Disabled by
    /// default, so mirroring is a no-op unless a harness enables it.
    pub obs: Recorder,
}

impl NetMetrics {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message of `payload_len` bytes sent by `from` over a
    /// link of the given class (`wifi == true` for inter-process).
    pub fn record_send(&mut self, from: ActorId, payload_len: usize, wifi: bool) {
        self.messages_sent += 1;
        let total = (payload_len + FRAME_HEADER_BYTES) as u64;
        if wifi {
            self.wifi_bytes += total;
        } else {
            self.radio_bytes += total;
        }
        *self.bytes_by_sender.entry(from).or_insert(0) += total;
        self.obs.inc("net.messages_sent");
        self.obs.add(
            if wifi {
                "net.wifi_bytes"
            } else {
                "net.radio_bytes"
            },
            total,
        );
        self.obs.observe("net.payload_bytes", payload_len as u64);
    }

    /// Records a successful delivery.
    pub fn record_delivery(&mut self) {
        self.messages_delivered += 1;
        self.obs.inc("net.messages_delivered");
    }

    /// Records a dropped message.
    pub fn record_drop(&mut self, reason: DropReason) {
        *self.drops.entry(reason).or_insert(0) += 1;
        self.obs.inc(drop_counter_name(reason));
    }

    /// Records a timer firing.
    pub fn record_timer(&mut self) {
        self.timers_fired += 1;
        self.obs.inc("net.timers_fired");
    }

    /// Total bytes sent across both link classes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.wifi_bytes + self.radio_bytes
    }

    /// Total messages dropped across all reasons.
    #[must_use]
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Exports the unified observability snapshot, folding the
    /// process-side [`FanoutStats`] atomics in as `fanout.*` counters
    /// so one snapshot carries the complete network story.
    #[must_use]
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let mut snap = self.obs.snapshot();
        if self.obs.is_enabled() {
            let fanout = self.fanout.snapshot();
            snap.set_counter("fanout.frames_coalesced", fanout.frames_coalesced);
            snap.set_counter("fanout.messages_avoided", fanout.messages_avoided);
            snap.set_counter("fanout.encode_bytes_saved", fanout.encode_bytes_saved);
            snap.set_counter("fanout.acks_avoided", fanout.acks_avoided);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_charges_header_and_class() {
        let mut m = NetMetrics::new();
        m.record_send(ActorId(1), 100, true);
        m.record_send(ActorId(1), 4, false);
        assert_eq!(m.messages_sent, 2);
        assert_eq!(m.wifi_bytes, (100 + FRAME_HEADER_BYTES) as u64);
        assert_eq!(m.radio_bytes, (4 + FRAME_HEADER_BYTES) as u64);
        assert_eq!(m.total_bytes(), m.wifi_bytes + m.radio_bytes);
        assert_eq!(
            m.bytes_by_sender[&ActorId(1)],
            (104 + 2 * FRAME_HEADER_BYTES) as u64
        );
    }

    #[test]
    fn drops_tallied_by_reason() {
        let mut m = NetMetrics::new();
        m.record_drop(DropReason::RandomLoss);
        m.record_drop(DropReason::RandomLoss);
        m.record_drop(DropReason::Blocked);
        assert_eq!(m.drops[&DropReason::RandomLoss], 2);
        assert_eq!(m.drops[&DropReason::Blocked], 1);
        assert_eq!(m.total_drops(), 3);
    }

    #[test]
    fn fanout_stats_accumulate_and_reset() {
        let m = NetMetrics::new();
        let stats = Arc::clone(&m.fanout);
        stats.record_frame(3);
        stats.record_frame(2);
        stats.record_encode_reuse(120);
        stats.record_ack_avoided();
        let snap = m.fanout.snapshot();
        assert_eq!(snap.frames_coalesced, 2);
        assert_eq!(snap.messages_avoided, 3, "(3-1) + (2-1)");
        assert_eq!(snap.encode_bytes_saved, 120);
        assert_eq!(snap.acks_avoided, 1);
        // Cloned metrics share the same counters.
        let clone = m.clone();
        stats.record_ack_avoided();
        assert_eq!(clone.fanout.snapshot().acks_avoided, 2);
        stats.reset();
        assert_eq!(m.fanout.snapshot(), FanoutSnapshot::default());
    }

    #[test]
    fn obs_mirrors_counts_and_folds_fanout() {
        let mut m = NetMetrics::new();
        m.obs.set_enabled(true);
        m.record_send(ActorId(1), 100, true);
        m.record_send(ActorId(1), 4, false);
        m.record_delivery();
        m.record_drop(DropReason::Blocked);
        m.record_timer();
        m.fanout.record_frame(3);
        let snap = m.obs_snapshot();
        assert_eq!(snap.counter("net.messages_sent"), 2);
        assert_eq!(snap.counter("net.wifi_bytes"), m.wifi_bytes);
        assert_eq!(snap.counter("net.radio_bytes"), m.radio_bytes);
        assert_eq!(snap.counter("net.messages_delivered"), 1);
        assert_eq!(snap.counter("net.drops.blocked"), 1);
        assert_eq!(snap.counter("net.timers_fired"), 1);
        assert_eq!(snap.counter("fanout.frames_coalesced"), 1);
        assert_eq!(snap.counter("fanout.messages_avoided"), 2);
        assert_eq!(snap.histogram("net.payload_bytes").unwrap().count(), 2);
    }

    #[test]
    fn disabled_obs_snapshot_is_empty() {
        let mut m = NetMetrics::new();
        m.record_send(ActorId(1), 100, true);
        m.fanout.record_frame(2);
        let snap = m.obs_snapshot();
        assert_eq!(snap.counter("net.messages_sent"), 0);
        assert_eq!(snap.counter("fanout.frames_coalesced"), 0);
    }

    #[test]
    fn delivery_and_timer_counters() {
        let mut m = NetMetrics::new();
        m.record_delivery();
        m.record_timer();
        m.record_timer();
        assert_eq!(m.messages_delivered, 1);
        assert_eq!(m.timers_fired, 2);
    }
}
