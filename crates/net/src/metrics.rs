//! Network accounting used by the overhead experiments.
//!
//! The Fig. 5 experiment of the paper compares the *network overhead* —
//! "the amount of data transferred over the home network for delivering
//! an event" — of Gap, Gapless, and naive broadcast. [`NetMetrics`]
//! charges every routed message (payload + frame header) to the sending
//! actor and to the link class it crossed, so the harness can report
//! exactly that quantity.

use std::collections::HashMap;

use rivulet_types::wire::FRAME_HEADER_BYTES;

use crate::actor::ActorId;
use crate::link::DropReason;

/// Counters accumulated over one driver run.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    /// Messages handed to the network (whether or not delivered).
    pub messages_sent: u64,
    /// Messages actually delivered to their destination actor.
    pub messages_delivered: u64,
    /// Messages dropped, by reason.
    pub drops: HashMap<DropReason, u64>,
    /// Bytes (payload + frame header) sent on inter-process links.
    pub wifi_bytes: u64,
    /// Bytes (payload + frame header) sent on device radio links.
    pub radio_bytes: u64,
    /// Bytes sent per actor (payload + frame header, either class).
    pub bytes_by_sender: HashMap<ActorId, u64>,
    /// Timers fired.
    pub timers_fired: u64,
}

impl NetMetrics {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message of `payload_len` bytes sent by `from` over a
    /// link of the given class (`wifi == true` for inter-process).
    pub fn record_send(&mut self, from: ActorId, payload_len: usize, wifi: bool) {
        self.messages_sent += 1;
        let total = (payload_len + FRAME_HEADER_BYTES) as u64;
        if wifi {
            self.wifi_bytes += total;
        } else {
            self.radio_bytes += total;
        }
        *self.bytes_by_sender.entry(from).or_insert(0) += total;
    }

    /// Records a successful delivery.
    pub fn record_delivery(&mut self) {
        self.messages_delivered += 1;
    }

    /// Records a dropped message.
    pub fn record_drop(&mut self, reason: DropReason) {
        *self.drops.entry(reason).or_insert(0) += 1;
    }

    /// Records a timer firing.
    pub fn record_timer(&mut self) {
        self.timers_fired += 1;
    }

    /// Total bytes sent across both link classes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.wifi_bytes + self.radio_bytes
    }

    /// Total messages dropped across all reasons.
    #[must_use]
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_charges_header_and_class() {
        let mut m = NetMetrics::new();
        m.record_send(ActorId(1), 100, true);
        m.record_send(ActorId(1), 4, false);
        assert_eq!(m.messages_sent, 2);
        assert_eq!(m.wifi_bytes, (100 + FRAME_HEADER_BYTES) as u64);
        assert_eq!(m.radio_bytes, (4 + FRAME_HEADER_BYTES) as u64);
        assert_eq!(m.total_bytes(), m.wifi_bytes + m.radio_bytes);
        assert_eq!(
            m.bytes_by_sender[&ActorId(1)],
            (104 + 2 * FRAME_HEADER_BYTES) as u64
        );
    }

    #[test]
    fn drops_tallied_by_reason() {
        let mut m = NetMetrics::new();
        m.record_drop(DropReason::RandomLoss);
        m.record_drop(DropReason::RandomLoss);
        m.record_drop(DropReason::Blocked);
        assert_eq!(m.drops[&DropReason::RandomLoss], 2);
        assert_eq!(m.drops[&DropReason::Blocked], 1);
        assert_eq!(m.total_drops(), 3);
    }

    #[test]
    fn delivery_and_timer_counters() {
        let mut m = NetMetrics::new();
        m.record_delivery();
        m.record_timer();
        m.record_timer();
        assert_eq!(m.messages_delivered, 1);
        assert_eq!(m.timers_fired, 2);
    }
}
