//! Deterministic discrete-event simulation driver.
//!
//! [`SimNet`] executes a set of [`Actor`]s over virtual time with a
//! seeded RNG. All nondeterminism — link loss, latency jitter sources,
//! actor randomness — flows from the single seed in [`SimConfig`], so a
//! run is a pure function of `(actors, topology, seed, fault script)`.
//! This is what makes the paper's fault-injection experiments (link
//! loss sweeps, process crashes, partitions) exactly reproducible.
//!
//! Faults are injected with a *fault script*: [`SimNet::crash_at`],
//! [`SimNet::recover_at`], [`SimNet::partition_at`], and
//! [`SimNet::set_loss_at`] schedule control actions at virtual times,
//! mirroring how the paper's testbed runs "induce a process failure at
//! t = 24 seconds" (Fig. 7).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rivulet_types::{Duration, Time};

use crate::actor::{Actor, ActorEvent, ActorId, Context, Effect};
use crate::link::{ActorClass, DropReason, Topology, Verdict};
use crate::metrics::NetMetrics;
use crate::trace::{Trace, TraceEvent};

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Safety cap on events processed by a single `run_*` call; a
    /// protocol bug causing a zero-latency message storm panics
    /// instead of hanging.
    pub max_events_per_run: u64,
}

impl SimConfig {
    /// Configuration with the given seed and default limits.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            max_events_per_run: 50_000_000,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

/// A factory rebuilding an actor after crash–recovery. Recovered
/// actors start from fresh state, matching the volatile-state
/// crash-recovery model of paper §3.1.
type Factory = Box<dyn FnMut() -> Box<dyn Actor> + Send>;

struct Slot {
    name: String,
    factory: Factory,
    instance: Option<Box<dyn Actor>>,
    /// Bumped on every recovery; in-flight messages and timers
    /// addressed to an older incarnation are dropped (their TCP
    /// connections died with the process).
    incarnation: u32,
    /// Cancellation generation per timer token.
    timer_gens: HashMap<u64, u64>,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("name", &self.name)
            .field("up", &self.instance.is_some())
            .field("incarnation", &self.incarnation)
            .finish()
    }
}

#[derive(Debug)]
enum Pending {
    Deliver {
        from: ActorId,
        to: ActorId,
        to_inc: u32,
        payload: Bytes,
    },
    Timer {
        actor: ActorId,
        inc: u32,
        token: u64,
        gen: u64,
    },
    Control(Control),
    Start {
        actor: ActorId,
        inc: u32,
    },
}

#[derive(Debug)]
enum Control {
    Crash(ActorId),
    Recover(ActorId),
    Partition(Vec<Vec<ActorId>>),
    Heal,
    SetLoss {
        from: ActorId,
        to: ActorId,
        loss: f64,
    },
    SetBlocked {
        from: ActorId,
        to: ActorId,
        blocked: bool,
    },
    Burst {
        from: Option<ActorId>,
        to: Option<ActorId>,
        spec: BurstSpec,
    },
}

/// A broker-style link-degradation burst: while active, matching sends
/// suffer extra delay, probabilistic duplication, and probabilistic
/// reordering (an additional randomized delay that scrambles arrival
/// order). Scheduled with [`SimNet::burst_at`].
#[derive(Debug, Clone, PartialEq)]
pub struct BurstSpec {
    /// How long the burst lasts from its scheduled start.
    pub duration: Duration,
    /// Deterministic extra latency added to every matching send.
    pub extra_delay: Duration,
    /// Probability a matching send is delivered twice.
    pub dup_prob: f64,
    /// Probability a matching send gets an additional uniformly random
    /// delay in `[0, 2 × extra_delay]`, reordering it against its
    /// neighbours.
    pub reorder_prob: f64,
}

impl BurstSpec {
    /// A delay-only burst.
    #[must_use]
    pub fn delay(duration: Duration, extra: Duration) -> Self {
        Self {
            duration,
            extra_delay: extra,
            dup_prob: 0.0,
            reorder_prob: 0.0,
        }
    }
}

/// A scheduled [`BurstSpec`] that has started and not yet expired.
#[derive(Debug)]
struct ActiveBurst {
    from: Option<ActorId>,
    to: Option<ActorId>,
    until: Time,
    spec: BurstSpec,
}

impl ActiveBurst {
    fn matches(&self, from: ActorId, to: ActorId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Heap entry ordered by (time, sequence number); the sequence number
/// makes ordering of simultaneous events deterministic.
#[derive(Debug)]
struct Scheduled {
    at: Time,
    seq: u64,
    pending: Pending,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The deterministic simulation driver.
///
/// See the [crate-level documentation](crate) for an end-to-end
/// example.
#[derive(Debug)]
pub struct SimNet {
    topology: Topology,
    slots: Vec<Slot>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    now: Time,
    seq: u64,
    rng: StdRng,
    metrics: NetMetrics,
    trace: Trace,
    max_events: u64,
    /// Link-degradation bursts currently in force (lazily pruned).
    bursts: Vec<ActiveBurst>,
}

impl SimNet {
    /// Creates an empty simulated network.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Self {
            topology: Topology::new(),
            slots: Vec::new(),
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(config.seed),
            metrics: NetMetrics::new(),
            trace: Trace::new(),
            max_events: config.max_events_per_run,
            bursts: Vec::new(),
        }
    }

    /// Registers an actor built by `factory`, returning its id. The
    /// actor receives [`ActorEvent::Start`] at the current time; the
    /// factory is kept so crash–recovery can rebuild the actor from
    /// fresh state.
    pub fn add_actor<F>(&mut self, name: &str, class: ActorClass, mut factory: F) -> ActorId
    where
        F: FnMut() -> Box<dyn Actor> + Send + 'static,
    {
        let id = self.topology.register(class);
        debug_assert_eq!(id.0 as usize, self.slots.len());
        let instance = factory();
        self.slots.push(Slot {
            name: name.to_owned(),
            factory: Box::new(factory),
            instance: Some(instance),
            incarnation: 0,
            timer_gens: HashMap::new(),
        });
        self.push(self.now, Pending::Start { actor: id, inc: 0 });
        id
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Whether `actor` is currently up.
    #[must_use]
    pub fn is_up(&self, actor: ActorId) -> bool {
        self.slots[actor.0 as usize].instance.is_some()
    }

    /// The display name given to `actor` at registration.
    #[must_use]
    pub fn name_of(&self, actor: ActorId) -> &str {
        &self.slots[actor.0 as usize].name
    }

    /// Accumulated network counters.
    #[must_use]
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Resets the network counters (e.g. after a warm-up phase). The
    /// shared fan-out stats handle and observability recorder are
    /// preserved — process actors hold clones of both — and their
    /// contents are zeroed in place.
    pub fn reset_metrics(&mut self) {
        let fanout = std::sync::Arc::clone(&self.metrics.fanout);
        fanout.reset();
        let obs = self.metrics.obs.clone();
        obs.reset();
        self.metrics = NetMetrics::new();
        self.metrics.fanout = fanout;
        self.metrics.obs = obs;
    }

    /// The unified observability handle shared by this driver and every
    /// process deployed on it. Disabled by default; enable it before a
    /// run to collect an [`rivulet_obs::ObsSnapshot`].
    #[must_use]
    pub fn recorder(&self) -> rivulet_obs::Recorder {
        self.metrics.obs.clone()
    }

    /// Exports the unified observability snapshot for this run (see
    /// [`NetMetrics::obs_snapshot`]).
    #[must_use]
    pub fn obs_snapshot(&self) -> rivulet_obs::ObsSnapshot {
        self.metrics.obs_snapshot()
    }

    /// The driver trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the driver trace (to enable/clear it).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The link topology, for configuring ranges/loss before a run.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Read access to the link topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Schedules a crash of `actor` at virtual time `at`.
    pub fn crash_at(&mut self, actor: ActorId, at: Time) {
        self.push(at, Pending::Control(Control::Crash(actor)));
    }

    /// Schedules a recovery of `actor` at virtual time `at`. The actor
    /// is rebuilt from its factory (fresh volatile state) and receives
    /// [`ActorEvent::Start`].
    pub fn recover_at(&mut self, actor: ActorId, at: Time) {
        self.push(at, Pending::Control(Control::Recover(actor)));
    }

    /// Schedules a network partition into `groups` at `at`.
    pub fn partition_at(&mut self, at: Time, groups: Vec<Vec<ActorId>>) {
        self.push(at, Pending::Control(Control::Partition(groups)));
    }

    /// Schedules healing of any partition at `at`.
    pub fn heal_at(&mut self, at: Time) {
        self.push(at, Pending::Control(Control::Heal));
    }

    /// Schedules a change of the directed link loss rate at `at`.
    pub fn set_loss_at(&mut self, at: Time, from: ActorId, to: ActorId, loss: f64) {
        self.push(at, Pending::Control(Control::SetLoss { from, to, loss }));
    }

    /// Schedules blocking/unblocking of a directed link at `at`.
    pub fn set_blocked_at(&mut self, at: Time, from: ActorId, to: ActorId, blocked: bool) {
        self.push(
            at,
            Pending::Control(Control::SetBlocked { from, to, blocked }),
        );
    }

    /// Schedules a link-degradation burst starting at `at`. `from`/`to`
    /// restrict the burst to one directed link; `None` matches any
    /// endpoint (a whole-home broker brown-out). While active, matching
    /// sends pay `spec.extra_delay`, are duplicated with
    /// `spec.dup_prob`, and are reordered with `spec.reorder_prob`
    /// (counted as `fault.link.delayed` / `.duplicated` / `.reordered`).
    pub fn burst_at(
        &mut self,
        at: Time,
        from: Option<ActorId>,
        to: Option<ActorId>,
        spec: BurstSpec,
    ) {
        self.push(at, Pending::Control(Control::Burst { from, to, spec }));
    }

    /// Runs the simulation until the queue is exhausted or virtual time
    /// would pass `deadline`; on return, `now() == deadline` (unless an
    /// event cap fired). Returns the number of events processed.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_events_per_run` events are processed,
    /// which indicates a zero-latency message storm.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let mut processed = 0u64;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            processed += 1;
            assert!(
                processed <= self.max_events,
                "simulation livelock suspected at {} (> max events per run)",
                self.now
            );
            let Reverse(item) = self.queue.pop().expect("peeked");
            debug_assert!(item.at >= self.now, "time went backwards");
            self.now = item.at;
            self.dispatch(item.pending);
        }
        self.now = deadline;
        processed
    }

    /// Runs for `d` of virtual time past the current instant.
    pub fn run_for(&mut self, d: Duration) -> u64 {
        self.run_until(self.now + d)
    }

    fn push(&mut self, at: Time, pending: Pending) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, pending }));
    }

    fn dispatch(&mut self, pending: Pending) {
        match pending {
            Pending::Start { actor, inc } => {
                if self.slots[actor.0 as usize].incarnation == inc {
                    self.fire(actor, ActorEvent::Start);
                }
            }
            Pending::Deliver {
                from,
                to,
                to_inc,
                payload,
            } => {
                let slot = &self.slots[to.0 as usize];
                if slot.instance.is_none() || slot.incarnation != to_inc {
                    self.metrics.record_drop(DropReason::DestinationDown);
                    self.trace.record(
                        self.now,
                        TraceEvent::Dropped {
                            from,
                            to,
                            reason: DropReason::DestinationDown,
                        },
                    );
                    return;
                }
                self.metrics.record_delivery();
                self.trace
                    .record(self.now, TraceEvent::Delivered { from, to });
                self.fire(to, ActorEvent::Message { from, payload });
            }
            Pending::Timer {
                actor,
                inc,
                token,
                gen,
            } => {
                let slot = &self.slots[actor.0 as usize];
                if slot.instance.is_none() || slot.incarnation != inc {
                    return;
                }
                if slot.timer_gens.get(&token).copied().unwrap_or(0) != gen {
                    return; // cancelled
                }
                self.metrics.record_timer();
                self.fire(actor, ActorEvent::Timer { token });
            }
            Pending::Control(control) => self.apply_control(control),
        }
    }

    fn apply_control(&mut self, control: Control) {
        match control {
            Control::Crash(actor) => {
                let slot = &mut self.slots[actor.0 as usize];
                if slot.instance.take().is_some() {
                    self.trace.record(self.now, TraceEvent::Crashed { actor });
                    let key = u64::from(actor.0);
                    self.metrics.obs.event("net.crash", self.now, key, 0);
                    // Failover span: opened at the crash, closed by the
                    // process runtime at the first post-promotion
                    // application activity.
                    self.metrics.obs.span_open("failover", key, self.now);
                }
            }
            Control::Recover(actor) => {
                let slot = &mut self.slots[actor.0 as usize];
                if slot.instance.is_none() {
                    slot.incarnation += 1;
                    slot.timer_gens.clear();
                    slot.instance = Some((slot.factory)());
                    let inc = slot.incarnation;
                    self.trace.record(self.now, TraceEvent::Recovered { actor });
                    self.metrics.obs.event(
                        "net.recover",
                        self.now,
                        u64::from(actor.0),
                        u64::from(inc),
                    );
                    self.push(self.now, Pending::Start { actor, inc });
                }
            }
            Control::Partition(groups) => self.topology.set_partition(&groups),
            Control::Heal => self.topology.heal_partition(),
            Control::SetLoss { from, to, loss } => self.topology.set_loss(from, to, loss),
            Control::SetBlocked { from, to, blocked } => {
                self.topology.set_blocked(from, to, blocked);
            }
            Control::Burst { from, to, spec } => {
                let key = u64::from(from.map_or(u32::MAX, |a| a.0));
                self.metrics.obs.event("fault.link.burst", self.now, key, 0);
                self.bursts.push(ActiveBurst {
                    from,
                    to,
                    until: self.now + spec.duration,
                    spec,
                });
            }
        }
    }

    /// Runs one event handler and applies its effects.
    fn fire(&mut self, actor: ActorId, event: ActorEvent) {
        let mut instance = self.slots[actor.0 as usize]
            .instance
            .take()
            .expect("fire() requires a live actor");
        let mut ctx = Context::new(actor, self.now, &mut self.rng);
        instance.on_event(&mut ctx, event);
        let effects = std::mem::take(&mut ctx.effects);
        // Put the instance back before applying effects, unless the
        // actor halted itself.
        let mut halted = false;
        for effect in &effects {
            if matches!(effect, Effect::Halt) {
                halted = true;
            }
        }
        if !halted {
            self.slots[actor.0 as usize].instance = Some(instance);
        }
        for effect in effects {
            self.apply_effect(actor, effect);
        }
    }

    /// Applies active bursts to a routed delivery: returns the
    /// (possibly delayed) arrival time plus an optional duplicate
    /// arrival time. The driver RNG is consulted only while a matching
    /// burst is in force, so runs that never schedule a burst are
    /// bit-identical to runs on a burst-free driver.
    fn apply_bursts(&mut self, from: ActorId, to: ActorId, at: Time) -> (Time, Option<Time>) {
        if self.bursts.is_empty() {
            return (at, None);
        }
        let now = self.now;
        self.bursts.retain(|b| b.until > now);
        let mut at = at;
        let mut dup = None;
        for b in &self.bursts {
            if !b.matches(from, to) {
                continue;
            }
            if b.spec.extra_delay > Duration::ZERO {
                at += b.spec.extra_delay;
                self.metrics.obs.inc("fault.link.delayed");
            }
            if b.spec.reorder_prob > 0.0 && self.rng.gen::<f64>() < b.spec.reorder_prob {
                let jitter = b.spec.extra_delay.mul_f64(2.0 * self.rng.gen::<f64>());
                at += jitter;
                self.metrics.obs.inc("fault.link.reordered");
            }
            if b.spec.dup_prob > 0.0 && self.rng.gen::<f64>() < b.spec.dup_prob {
                dup = Some(at);
                self.metrics.obs.inc("fault.link.duplicated");
            }
        }
        (at, dup)
    }

    fn apply_effect(&mut self, actor: ActorId, effect: Effect) {
        match effect {
            Effect::Send { to, payload } => {
                assert!(
                    (to.0 as usize) < self.slots.len(),
                    "send to unregistered actor {to}"
                );
                let wifi = self.topology.class_of(actor) == ActorClass::Process
                    && self.topology.class_of(to) == ActorClass::Process;
                self.metrics.record_send(actor, payload.len(), wifi);
                self.trace.record(
                    self.now,
                    TraceEvent::Sent {
                        from: actor,
                        to,
                        bytes: payload.len(),
                    },
                );
                let verdict = self.topology.route(
                    &mut self.rng,
                    self.now,
                    actor,
                    to,
                    payload.len(),
                    true, // liveness is re-checked at delivery time
                );
                match verdict {
                    Verdict::Deliver(at) => {
                        let (at, duplicate_at) = self.apply_bursts(actor, to, at);
                        let to_inc = self.slots[to.0 as usize].incarnation;
                        if let Some(dup_at) = duplicate_at {
                            self.push(
                                dup_at,
                                Pending::Deliver {
                                    from: actor,
                                    to,
                                    to_inc,
                                    payload: payload.clone(),
                                },
                            );
                        }
                        self.push(
                            at,
                            Pending::Deliver {
                                from: actor,
                                to,
                                to_inc,
                                payload,
                            },
                        );
                    }
                    Verdict::Drop(reason) => {
                        self.metrics.record_drop(reason);
                        self.trace.record(
                            self.now,
                            TraceEvent::Dropped {
                                from: actor,
                                to,
                                reason,
                            },
                        );
                    }
                }
            }
            Effect::SetTimer { token, after } => {
                let slot = &self.slots[actor.0 as usize];
                let gen = slot.timer_gens.get(&token).copied().unwrap_or(0);
                let inc = slot.incarnation;
                self.push(
                    self.now + after,
                    Pending::Timer {
                        actor,
                        inc,
                        token,
                        gen,
                    },
                );
            }
            Effect::CancelTimer { token } => {
                let slot = &mut self.slots[actor.0 as usize];
                *slot.timer_gens.entry(token).or_insert(0) += 1;
            }
            Effect::Halt => {
                // Instance already dropped in fire().
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Counts events it receives and optionally replies.
    struct Probe {
        peer: Option<ActorId>,
        starts: Arc<AtomicU64>,
        messages: Arc<AtomicU64>,
        timers: Arc<AtomicU64>,
    }

    impl Probe {
        fn new() -> (Self, Arc<AtomicU64>, Arc<AtomicU64>, Arc<AtomicU64>) {
            let s = Arc::new(AtomicU64::new(0));
            let m = Arc::new(AtomicU64::new(0));
            let t = Arc::new(AtomicU64::new(0));
            (
                Self {
                    peer: None,
                    starts: Arc::clone(&s),
                    messages: Arc::clone(&m),
                    timers: Arc::clone(&t),
                },
                s,
                m,
                t,
            )
        }
    }

    impl Actor for Probe {
        fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
            match event {
                ActorEvent::Start => {
                    self.starts.fetch_add(1, Ordering::SeqCst);
                    if let Some(peer) = self.peer {
                        ctx.send(peer, Bytes::from_static(b"hello"));
                    }
                }
                ActorEvent::Message { .. } => {
                    self.messages.fetch_add(1, Ordering::SeqCst);
                }
                ActorEvent::Timer { .. } => {
                    self.timers.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }

    #[test]
    fn message_delivery_advances_virtual_time() {
        let mut net = SimNet::new(SimConfig::with_seed(1));
        let (probe, _, msgs, _) = Probe::new();
        let receiver = net.add_actor("rx", ActorClass::Process, {
            let mut probe = Some(probe);
            move || Box::new(probe.take().expect("built once"))
        });
        let (mut sender, ..) = Probe::new();
        sender.peer = Some(receiver);
        let mut s = Some(sender);
        net.add_actor("tx", ActorClass::Process, move || {
            Box::new(s.take().expect("built once"))
        });
        net.run_until(Time::from_secs(1));
        assert_eq!(msgs.load(Ordering::SeqCst), 1);
        assert_eq!(net.now(), Time::from_secs(1));
        assert_eq!(net.metrics().messages_sent, 1);
        assert_eq!(net.metrics().messages_delivered, 1);
    }

    /// An actor that arms a periodic timer and counts firings.
    struct Ticker {
        period: Duration,
        fired: Arc<AtomicU64>,
        cancel_after: Option<u64>,
    }

    impl Actor for Ticker {
        fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
            match event {
                ActorEvent::Start => ctx.set_timer(self.period, 1),
                ActorEvent::Timer { token: 1 } => {
                    let n = self.fired.fetch_add(1, Ordering::SeqCst) + 1;
                    if self.cancel_after == Some(n) {
                        ctx.set_timer(self.period, 1);
                        ctx.cancel_timer(1);
                    } else {
                        ctx.set_timer(self.period, 1);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn periodic_timer_fires_expected_count() {
        let mut net = SimNet::new(SimConfig::with_seed(2));
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        net.add_actor("tick", ActorClass::Process, move || {
            Box::new(Ticker {
                period: Duration::from_millis(100),
                fired: Arc::clone(&f),
                cancel_after: None,
            })
        });
        net.run_until(Time::from_secs(1));
        // Timers at 100ms..1000ms inclusive = 10 firings.
        assert_eq!(fired.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn cancel_timer_stops_future_firings() {
        let mut net = SimNet::new(SimConfig::with_seed(2));
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        net.add_actor("tick", ActorClass::Process, move || {
            Box::new(Ticker {
                period: Duration::from_millis(100),
                fired: Arc::clone(&f),
                cancel_after: Some(3),
            })
        });
        net.run_until(Time::from_secs(1));
        assert_eq!(fired.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn crash_drops_inflight_and_recovery_restarts_fresh() {
        let mut net = SimNet::new(SimConfig::with_seed(3));
        let (probe, starts, msgs, _) = Probe::new();
        let mut p = Some(probe);
        let starts2 = Arc::clone(&starts);
        let msgs2 = Arc::clone(&msgs);
        let rx = net.add_actor("rx", ActorClass::Process, move || {
            // First build uses the probe with shared counters; rebuilds
            // construct an identical fresh probe sharing the counters.
            match p.take() {
                Some(probe) => Box::new(probe),
                None => {
                    let fresh = Probe {
                        peer: None,
                        starts: Arc::clone(&starts2),
                        messages: Arc::clone(&msgs2),
                        timers: Arc::new(AtomicU64::new(0)),
                    };
                    Box::new(fresh)
                }
            }
        });
        // Sender that fires one message per 100ms.
        struct Spammer {
            to: ActorId,
        }
        impl Actor for Spammer {
            fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
                match event {
                    ActorEvent::Start => ctx.set_timer(Duration::from_millis(100), 1),
                    ActorEvent::Timer { .. } => {
                        ctx.send(self.to, Bytes::from_static(b"x"));
                        ctx.set_timer(Duration::from_millis(100), 1);
                    }
                    _ => {}
                }
            }
        }
        net.add_actor("tx", ActorClass::Process, move || {
            Box::new(Spammer { to: rx })
        });
        net.crash_at(rx, Time::from_millis(450));
        net.recover_at(rx, Time::from_millis(850));
        net.run_until(Time::from_secs(1));
        // Start at t=0 and again on recovery.
        assert_eq!(starts.load(Ordering::SeqCst), 2);
        // Messages at ~102,202,302,402 delivered (4), 502..802 dropped,
        // 902, 1002(>1s? timer at 1000 sends, delivery 1002 > deadline).
        let delivered = msgs.load(Ordering::SeqCst);
        assert_eq!(delivered, 5, "4 before crash + 1 after recovery");
        assert!(net.metrics().drops[&DropReason::DestinationDown] >= 3);
        assert!(net.is_up(rx));
    }

    #[test]
    fn crash_is_idempotent_and_recover_noop_when_up() {
        let mut net = SimNet::new(SimConfig::with_seed(4));
        let (probe, starts, ..) = Probe::new();
        let mut p = Some(probe);
        let a = net.add_actor("a", ActorClass::Process, move || match p.take() {
            Some(probe) => Box::new(probe),
            None => panic!("should not rebuild"),
        });
        net.recover_at(a, Time::from_millis(10)); // already up: no-op
        net.run_until(Time::from_secs(1));
        assert_eq!(starts.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn partition_script_blocks_and_heals() {
        let mut net = SimNet::new(SimConfig::with_seed(5));
        let (rx_probe, _, msgs, _) = Probe::new();
        let mut p = Some(rx_probe);
        let rx = net.add_actor("rx", ActorClass::Process, move || {
            Box::new(p.take().expect("once"))
        });
        struct Spammer {
            to: ActorId,
        }
        impl Actor for Spammer {
            fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
                match event {
                    ActorEvent::Start => ctx.set_timer(Duration::from_millis(100), 1),
                    ActorEvent::Timer { .. } => {
                        ctx.send(self.to, Bytes::from_static(b"x"));
                        ctx.set_timer(Duration::from_millis(100), 1);
                    }
                    _ => {}
                }
            }
        }
        let tx = net.add_actor("tx", ActorClass::Process, move || {
            Box::new(Spammer { to: rx })
        });
        net.partition_at(Time::from_millis(250), vec![vec![tx], vec![rx]]);
        net.heal_at(Time::from_millis(650));
        net.run_until(Time::from_secs(1));
        // Sends at 100,200 delivered; 300..600 blocked; 700..1000 delivered
        // (1000 delivers at 1002 > deadline, so 700,800,900 = 3).
        assert_eq!(msgs.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn scheduled_loss_change_applies() {
        let mut net = SimNet::new(SimConfig::with_seed(6));
        let (rx_probe, _, msgs, _) = Probe::new();
        let mut p = Some(rx_probe);
        let rx = net.add_actor("rx", ActorClass::Process, move || {
            Box::new(p.take().expect("once"))
        });
        struct Spammer {
            to: ActorId,
        }
        impl Actor for Spammer {
            fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
                match event {
                    ActorEvent::Start => ctx.set_timer(Duration::from_millis(10), 1),
                    ActorEvent::Timer { .. } => {
                        ctx.send(self.to, Bytes::from_static(b"x"));
                        ctx.set_timer(Duration::from_millis(10), 1);
                    }
                    _ => {}
                }
            }
        }
        let tx = net.add_actor("tx", ActorClass::Device, move || {
            Box::new(Spammer { to: rx })
        });
        net.set_loss_at(Time::from_millis(500), tx, rx, 1.0);
        net.run_until(Time::from_secs(1));
        let got = msgs.load(Ordering::SeqCst);
        // ~50 sends before the loss change, none after.
        assert!((45..=50).contains(&got), "got {got}");
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        fn run(seed: u64) -> (u64, u64) {
            let mut net = SimNet::new(SimConfig::with_seed(seed));
            let (rx_probe, _, msgs, _) = Probe::new();
            let mut p = Some(rx_probe);
            let rx = net.add_actor("rx", ActorClass::Process, move || {
                Box::new(p.take().expect("once"))
            });
            struct Spammer {
                to: ActorId,
            }
            impl Actor for Spammer {
                fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
                    match event {
                        ActorEvent::Start => ctx.set_timer(Duration::from_millis(5), 1),
                        ActorEvent::Timer { .. } => {
                            ctx.send(self.to, Bytes::from_static(b"x"));
                            ctx.set_timer(Duration::from_millis(5), 1);
                        }
                        _ => {}
                    }
                }
            }
            let tx = net.add_actor("tx", ActorClass::Device, move || {
                Box::new(Spammer { to: rx })
            });
            net.topology_mut().set_loss(tx, rx, 0.3);
            net.run_until(Time::from_secs(2));
            (msgs.load(Ordering::SeqCst), net.metrics().total_drops())
        }
        assert_eq!(run(42), run(42));
        assert_ne!(
            run(42).0,
            run(43).0,
            "different seeds should differ (w.h.p.)"
        );
    }

    #[test]
    fn name_and_topology_accessors() {
        let mut net = SimNet::new(SimConfig::default());
        let (probe, ..) = Probe::new();
        let mut p = Some(probe);
        let a = net.add_actor("hub", ActorClass::Process, move || {
            Box::new(p.take().expect("once"))
        });
        assert_eq!(net.name_of(a), "hub");
        assert_eq!(net.topology().class_of(a), ActorClass::Process);
        net.topology_mut().set_link(a, a, LinkConfig::severed());
        assert!(net.topology().link(a, a).blocked);
    }

    #[test]
    fn reset_metrics_zeroes_counters() {
        let mut net = SimNet::new(SimConfig::with_seed(1));
        let (probe, ..) = Probe::new();
        let mut p = Some(probe);
        let rx = net.add_actor("rx", ActorClass::Process, move || {
            Box::new(p.take().expect("once"))
        });
        let (mut tx_probe, ..) = Probe::new();
        tx_probe.peer = Some(rx);
        let mut q = Some(tx_probe);
        net.add_actor("tx", ActorClass::Process, move || {
            Box::new(q.take().expect("once"))
        });
        net.run_until(Time::from_secs(1));
        assert!(net.metrics().messages_sent > 0);
        net.reset_metrics();
        assert_eq!(net.metrics().messages_sent, 0);
    }
}
