//! Network substrates for the Rivulet smart-home platform.
//!
//! The paper evaluates Rivulet on five Raspberry Pi hosts sharing one
//! home WiFi router, with Z-Wave/Zigbee radios linking sensors to a
//! subset of the hosts (paper §8.1). This crate provides the equivalent
//! substrate in software, twice:
//!
//! * [`sim`] — a **deterministic discrete-event simulator**. Virtual
//!   time, a seeded RNG, per-link latency/loss/partition models, and
//!   process crash–recovery. Every experiment in the repository runs on
//!   this driver, making the paper's fault-injection studies (Figs 3,
//!   6, 7) exactly reproducible from a seed.
//! * [`live`] — a **threaded wall-clock driver** with the same actor
//!   interface, used by the runnable examples to demonstrate real
//!   concurrent operation.
//!
//! Protocol code is written once against the [`actor::Actor`] trait and
//! the [`actor::Context`] capability surface, and runs unchanged on
//! either driver.
//!
//! # Fault model
//!
//! Matching the paper's assumptions (§3.1):
//!
//! * Inter-process links are reliable and in-order while up (TCP), but
//!   the network may partition arbitrarily; messages in flight across a
//!   partition are lost.
//! * Sensor–process links are lossy best-effort multicast.
//! * Processes are crash–recovery: a crashed actor loses its volatile
//!   state and is rebuilt by its factory on recovery.
//!
//! # Example
//!
//! ```
//! use rivulet_net::actor::{Actor, ActorEvent, Context};
//! use rivulet_net::sim::{SimConfig, SimNet};
//! use rivulet_net::link::ActorClass;
//! use bytes::Bytes;
//!
//! struct Echo;
//! impl Actor for Echo {
//!     fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
//!         if let ActorEvent::Message { from, payload } = event {
//!             ctx.send(from, payload); // echo back
//!         }
//!     }
//! }
//!
//! struct Pinger { peer: rivulet_net::actor::ActorId, got: bool }
//! impl Actor for Pinger {
//!     fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
//!         match event {
//!             ActorEvent::Start => ctx.send(self.peer, Bytes::from_static(b"ping")),
//!             ActorEvent::Message { .. } => self.got = true,
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut net = SimNet::new(SimConfig::with_seed(42));
//! let echo = net.add_actor("echo", ActorClass::Process, || Box::new(Echo));
//! let _ping = net.add_actor("ping", ActorClass::Process, move || {
//!     Box::new(Pinger { peer: echo, got: false })
//! });
//! net.run_until(rivulet_types::Time::from_secs(1));
//! assert!(net.metrics().messages_sent >= 2);
//! ```

#![deny(unsafe_code)] // allowed, with documented invariants, in `ring` only
#![warn(missing_docs, missing_debug_implementations)]

pub mod actor;
pub mod link;
pub mod live;
pub mod metrics;
pub mod ring;
pub mod sim;
pub mod trace;
