//! The actor interface shared by the simulated and live drivers.
//!
//! Everything that participates in a home deployment — Rivulet
//! processes, sensors, actuators — is an [`Actor`]: a state machine
//! that reacts to [`ActorEvent`]s and interacts with the world only
//! through its [`Context`]. Keeping the capability surface this narrow
//! is what lets the same protocol code run deterministically under the
//! simulator and concurrently under the live driver.

use std::fmt;

use bytes::Bytes;
use rand::rngs::StdRng;
use rivulet_types::{Duration, Time};

/// Identity of an actor within one driver instance.
///
/// Distinct from [`rivulet_types::ProcessId`]: every Rivulet process is
/// an actor, but so is every emulated sensor and actuator. The mapping
/// between the two identifier spaces is maintained by the deployment
/// layer in `rivulet-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// Returns the raw index of this actor.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor{}", self.0)
    }
}

/// Inputs an actor can receive from its driver.
#[derive(Debug)]
pub enum ActorEvent {
    /// The actor has just (re)started. Received once at driver start
    /// and again after each crash–recovery.
    Start,
    /// A message arrived from another actor.
    Message {
        /// The sending actor.
        from: ActorId,
        /// Opaque payload (protocol messages use the wire codec).
        payload: Bytes,
    },
    /// A timer previously set via [`Context::set_timer`] fired.
    Timer {
        /// The token the actor chose when setting the timer.
        token: u64,
    },
}

/// A state machine executed by one of the drivers.
///
/// Implementations must be deterministic given the event sequence and
/// the RNG provided by the context; this is what makes simulated runs
/// reproducible from a seed.
pub trait Actor: Send {
    /// Reacts to one input event. All side effects go through `ctx`.
    fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent);
}

/// Side effects an actor requests from its driver.
///
/// Collected by the [`Context`] during an `on_event` call and applied
/// by the driver afterwards.
#[derive(Debug)]
pub(crate) enum Effect {
    Send { to: ActorId, payload: Bytes },
    SetTimer { token: u64, after: Duration },
    CancelTimer { token: u64 },
    Halt,
}

/// The capability surface through which actors interact with the world.
///
/// A fresh context is constructed for every event delivery; effects are
/// buffered and applied by the driver once the handler returns, so an
/// actor never observes its own sends in the same step.
pub struct Context<'a> {
    self_id: ActorId,
    now: Time,
    rng: &'a mut StdRng,
    pub(crate) effects: Vec<Effect>,
}

impl fmt::Debug for Context<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("self_id", &self.self_id)
            .field("now", &self.now)
            .field("pending_effects", &self.effects.len())
            .finish()
    }
}

impl<'a> Context<'a> {
    pub(crate) fn new(self_id: ActorId, now: Time, rng: &'a mut StdRng) -> Self {
        Self {
            self_id,
            now,
            rng,
            effects: Vec::new(),
        }
    }

    /// This actor's own identity.
    #[must_use]
    pub fn id(&self) -> ActorId {
        self.self_id
    }

    /// The current time (virtual under the simulator, wall-clock under
    /// the live driver).
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The driver's seeded random-number generator. Actors must draw
    /// all randomness from here to stay reproducible.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `payload` to `to` over the connecting link. Delivery is
    /// subject to the link's latency, loss, and partition state.
    pub fn send(&mut self, to: ActorId, payload: Bytes) {
        self.effects.push(Effect::Send { to, payload });
    }

    /// Arms a timer that will fire as `ActorEvent::Timer { token }`
    /// after `after` elapses. Multiple timers may share a token; a
    /// token identifies a *class* of timers for cancellation.
    pub fn set_timer(&mut self, after: Duration, token: u64) {
        self.effects.push(Effect::SetTimer { token, after });
    }

    /// Cancels every pending timer of this actor carrying `token`.
    pub fn cancel_timer(&mut self, token: u64) {
        self.effects.push(Effect::CancelTimer { token });
    }

    /// Requests that the driver stop executing this actor (used by
    /// scripted workloads that finish early). The actor can be revived
    /// by a driver-level recovery.
    pub fn halt(&mut self) {
        self.effects.push(Effect::Halt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_buffers_effects_in_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Context::new(ActorId(0), Time::from_secs(1), &mut rng);
        ctx.send(ActorId(1), Bytes::from_static(b"a"));
        ctx.set_timer(Duration::from_millis(10), 7);
        ctx.cancel_timer(7);
        ctx.halt();
        assert_eq!(ctx.effects.len(), 4);
        assert!(matches!(
            ctx.effects[0],
            Effect::Send { to: ActorId(1), .. }
        ));
        assert!(matches!(ctx.effects[1], Effect::SetTimer { token: 7, .. }));
        assert!(matches!(ctx.effects[2], Effect::CancelTimer { token: 7 }));
        assert!(matches!(ctx.effects[3], Effect::Halt));
    }

    #[test]
    fn context_reports_identity_and_time() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Context::new(ActorId(3), Time::from_millis(250), &mut rng);
        assert_eq!(ctx.id(), ActorId(3));
        assert_eq!(ctx.now(), Time::from_millis(250));
        // RNG is usable and deterministic for a fixed seed.
        use rand::Rng;
        let v: u64 = ctx.rng().gen();
        let mut rng2 = StdRng::seed_from_u64(1);
        let mut ctx2 = Context::new(ActorId(3), Time::from_millis(250), &mut rng2);
        let v2: u64 = ctx2.rng().gen();
        assert_eq!(v, v2);
    }

    #[test]
    fn actor_id_display() {
        assert_eq!(ActorId(5).to_string(), "actor5");
        assert_eq!(ActorId(5).as_u32(), 5);
    }
}
