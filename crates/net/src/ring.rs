//! Bounded single-producer/single-consumer ring buffers.
//!
//! The per-home hot path hands events from the **delivery** stage
//! (gap/gapless/rbcast ingestion) to the **execution** stage (operator
//! DAG evaluation). Routing that handoff through a shared queue with a
//! lock — or even an MPMC channel — puts a synchronization point in
//! the middle of every activation. [`SpscRing`] replaces it with the
//! classic lock-free bounded ring: one producer, one consumer,
//! cache-line-padded head/tail counters so the two sides never false-
//! share, and batched pops so the consumer amortizes its acquire load
//! over many events.
//!
//! The ring is deliberately minimal: fixed power-of-two capacity,
//! `push` fails (returning the value) when full so callers can fall
//! back instead of blocking, and `pop_batch` drains up to `max` items
//! per acquire.
//!
//! # SPSC contract
//!
//! At most one thread may call [`SpscRing::push`] and at most one
//! thread may call [`SpscRing::pop`]/[`SpscRing::pop_batch`]
//! concurrently. The same thread may be both producer and consumer
//! (the deterministic sim driver runs each home's stages on one
//! thread; the live driver runs them on the actor's thread), in which
//! case the contract holds trivially and the atomics are uncontended.

#![allow(unsafe_code)] // slot storage; invariants documented on `SpscRing`

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An atomic counter alone on its cache line, so the producer's tail
/// stores never invalidate the consumer's head line and vice versa.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCounter(AtomicUsize);

/// A bounded lock-free single-producer/single-consumer ring.
///
/// # Safety invariants
///
/// * `head <= tail` always; `tail - head <= capacity`.
/// * Slot `i % capacity` is initialized exactly when
///   `head <= i < tail`: the producer writes a slot before publishing
///   it with a release store of `tail`; the consumer reads a slot
///   after an acquire load of `tail` and releases it with a release
///   store of `head` *after* moving the value out.
/// * With one producer and one consumer, a slot is therefore never
///   accessed by both sides at once, which makes the `UnsafeCell`
///   accesses race-free.
pub struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Index mask; capacity is a power of two.
    mask: usize,
    /// Next slot the consumer will read (monotonic, wraps via mask).
    head: PaddedCounter,
    /// Next slot the producer will write (monotonic, wraps via mask).
    tail: PaddedCounter,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly
// one other thread (invariants above), so it is Send/Sync whenever the
// element itself may move between threads.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Creates a ring holding at least `capacity` items (rounded up to
    /// the next power of two, minimum 2).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Self {
            slots,
            mask: cap - 1,
            head: PaddedCounter::default(),
            tail: PaddedCounter::default(),
        }
    }

    /// The fixed number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Items currently queued. Exact when called from either endpoint
    /// thread; a snapshot otherwise.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tail
            .0
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.0.load(Ordering::Acquire))
    }

    /// Whether the ring holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value`, or returns it in `Err` if the ring is full.
    ///
    /// Producer-side only (see the SPSC contract in the module docs).
    pub fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return Err(value);
        }
        // SAFETY: `tail - head <= mask` proves slot `tail & mask` is
        // free (the consumer has released it), and only this producer
        // writes slots.
        unsafe {
            (*self.slots[tail & self.mask].get()).write(value);
        }
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Dequeues one item, or `None` if the ring is empty.
    ///
    /// Consumer-side only (see the SPSC contract in the module docs).
    pub fn pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail` proves the slot was published by the
        // producer's release store; moving the value out before the
        // release store of `head` keeps the slot-initialization
        // invariant.
        let value = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Dequeues up to `max` items into `out`, returning how many were
    /// moved. One acquire load covers the whole batch — this is the
    /// consumer's fast path.
    ///
    /// Consumer-side only (see the SPSC contract in the module docs).
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        let avail = tail.wrapping_sub(head);
        let n = avail.min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        for i in 0..n {
            // SAFETY: as in `pop`; every index in `head..head + n` is
            // published and not yet released.
            let value =
                unsafe { (*self.slots[head.wrapping_add(i) & self.mask].get()).assume_init_read() };
            out.push(value);
        }
        self.head.0.store(head.wrapping_add(n), Ordering::Release);
        n
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drop any items still queued. `&mut self` means no concurrent
        // endpoint exists.
        while self.pop().is_some() {}
    }
}

impl<T> fmt::Debug for SpscRing<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpscRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let ring = SpscRing::with_capacity(8);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(SpscRing::<u8>::with_capacity(0).capacity(), 2);
        assert_eq!(SpscRing::<u8>::with_capacity(5).capacity(), 8);
        assert_eq!(SpscRing::<u8>::with_capacity(1024).capacity(), 1024);
    }

    #[test]
    fn push_fails_when_full_and_returns_value() {
        let ring = SpscRing::with_capacity(2);
        ring.push("a").unwrap();
        ring.push("b").unwrap();
        assert_eq!(ring.push("c"), Err("c"));
        assert_eq!(ring.pop(), Some("a"));
        ring.push("c").unwrap();
        assert_eq!(ring.pop(), Some("b"));
        assert_eq!(ring.pop(), Some("c"));
    }

    #[test]
    fn pop_batch_drains_up_to_max() {
        let ring = SpscRing::with_capacity(16);
        for i in 0..10 {
            ring.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(ring.pop_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(ring.pop_batch(&mut out, 100), 6);
        assert_eq!(out.len(), 10);
        assert_eq!(ring.pop_batch(&mut out, 4), 0);
    }

    #[test]
    fn wraparound_preserves_order() {
        let ring = SpscRing::with_capacity(4);
        // Cycle through the ring many times its capacity.
        let mut next_pop = 0u64;
        for i in 0..1000u64 {
            ring.push(i).unwrap();
            if i % 3 == 0 {
                while let Some(v) = ring.pop() {
                    assert_eq!(v, next_pop);
                    next_pop += 1;
                }
            }
        }
        let mut out = Vec::new();
        ring.pop_batch(&mut out, usize::MAX);
        for v in out {
            assert_eq!(v, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, 1000);
    }

    #[test]
    fn drop_releases_queued_items() {
        let marker = Arc::new(());
        {
            let ring = SpscRing::with_capacity(8);
            for _ in 0..5 {
                ring.push(Arc::clone(&marker)).unwrap();
            }
            assert_eq!(Arc::strong_count(&marker), 6);
        }
        assert_eq!(Arc::strong_count(&marker), 1, "drop freed queued items");
    }

    #[test]
    fn cross_thread_stress_transfers_everything_in_order() {
        let ring = Arc::new(SpscRing::with_capacity(64));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    let mut v = i;
                    loop {
                        match ring.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                // Yield, not spin: the test must also
                                // finish promptly on a 1-core host.
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut expected = 0u64;
                let mut batch = Vec::new();
                while expected < 20_000 {
                    batch.clear();
                    if ring.pop_batch(&mut batch, 128) == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    for v in &batch {
                        assert_eq!(*v, expected);
                        expected += 1;
                    }
                }
                expected
            })
        };
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), 20_000);
        assert!(ring.is_empty());
    }
}
