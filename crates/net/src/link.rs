//! Link and topology models for the home network.
//!
//! Two very different kinds of links exist in a smart home (paper
//! §2.1): the WiFi/TCP mesh between Rivulet processes — reliable and
//! in-order while up, but partitionable — and the low-power radio links
//! (Z-Wave, Zigbee, BLE) between sensors/actuators and processes —
//! range-limited, lossy, best-effort. [`Topology`] holds the state of
//! every ordered pair of actors and answers, per message, "does it
//! arrive, and when?".

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;
use rivulet_types::{Duration, Time};

use crate::actor::ActorId;

/// The broad class of an actor, determining the default parameters of
/// its links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActorClass {
    /// A Rivulet process (hub, TV, fridge, phone, …): linked to other
    /// processes via reliable in-order WiFi/TCP.
    Process,
    /// A sensor or actuator: linked to processes via lossy low-power
    /// radio; cannot talk to other devices.
    Device,
}

/// Parameters of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Fixed propagation + protocol-stack latency per message.
    pub base_latency: Duration,
    /// Additional latency per payload byte, in **nanoseconds**
    /// (serialization + transfer; dominates for the 10–20 KB camera
    /// events of Table 3). Stored as nanos because realistic values
    /// (0.4 µs/byte for 20 Mbit/s WiFi) are sub-microsecond.
    pub per_byte_nanos: u64,
    /// Independent probability that a given message is silently lost.
    /// Ignored for [`ActorClass::Process`]↔`Process` links, which are
    /// TCP-reliable while up.
    pub loss: f64,
    /// Whether the link is administratively down (out of radio range,
    /// or severed by the current network partition).
    pub blocked: bool,
}

impl LinkConfig {
    /// Default inter-process WiFi/TCP link: ~2 ms base latency and
    /// ~0.4 µs/byte (≈ 20 Mbit/s effective), calibrated so that a
    /// one-hop 4 B event costs ~2 ms and a 20 KB camera frame ~10 ms,
    /// matching the delay ranges of paper Fig. 4.
    #[must_use]
    pub fn wifi() -> Self {
        Self {
            base_latency: Duration::from_micros(2_000),
            per_byte_nanos: PER_BYTE_WIFI_NANOS,
            loss: 0.0,
            blocked: false,
        }
    }

    /// Default sensor-radio link: ~1 ms base latency (Z-Wave frame
    /// time), ~2 µs/byte (low-power radios are slow), no loss until the
    /// experiment injects some.
    #[must_use]
    pub fn radio() -> Self {
        Self {
            base_latency: Duration::from_micros(1_000),
            per_byte_nanos: PER_BYTE_RADIO_NANOS,
            loss: 0.0,
            blocked: false,
        }
    }

    /// A severed link (out of range / different radio technology).
    #[must_use]
    pub fn severed() -> Self {
        Self {
            blocked: true,
            ..Self::radio()
        }
    }

    /// Latency for a message of `bytes` payload bytes.
    #[must_use]
    pub fn latency_for(&self, bytes: usize) -> Duration {
        let transfer_nanos = self.per_byte_nanos.saturating_mul(bytes as u64);
        self.base_latency + Duration::from_micros(transfer_nanos / 1_000)
    }
}

/// Per-byte latency of the WiFi mesh (400 ns/byte ≈ 20 Mbit/s).
const PER_BYTE_WIFI_NANOS: u64 = 400;
/// Per-byte latency of device radios (2 µs/byte ≈ 4 Mbit/s).
const PER_BYTE_RADIO_NANOS: u64 = 2_000;

/// What the topology decided about one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver at the given time.
    Deliver(Time),
    /// Silently dropped (loss, partition, out of range, dead endpoint).
    Drop(DropReason),
}

/// Why a message was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Random loss on a lossy link.
    RandomLoss,
    /// The link is blocked (range/partition/down).
    Blocked,
    /// The destination actor is crashed.
    DestinationDown,
}

/// The state of every link in the emulated home.
#[derive(Debug)]
pub struct Topology {
    classes: Vec<ActorClass>,
    /// Sparse overrides; pairs not present use the class-derived default.
    overrides: HashMap<(ActorId, ActorId), LinkConfig>,
    /// Partition group of each actor; `None` = no partition active.
    partition: Option<Vec<u32>>,
    /// Last scheduled delivery per ordered pair, for FIFO links.
    last_delivery: HashMap<(ActorId, ActorId), Time>,
}

impl Topology {
    /// Creates an empty topology.
    #[must_use]
    pub fn new() -> Self {
        Self {
            classes: Vec::new(),
            overrides: HashMap::new(),
            partition: None,
            last_delivery: HashMap::new(),
        }
    }

    /// Registers a new actor of the given class, returning its id.
    pub fn register(&mut self, class: ActorClass) -> ActorId {
        let id = ActorId(self.classes.len() as u32);
        self.classes.push(class);
        id
    }

    /// Number of registered actors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether no actor has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The class of `actor`.
    ///
    /// # Panics
    ///
    /// Panics if `actor` was not registered.
    #[must_use]
    pub fn class_of(&self, actor: ActorId) -> ActorClass {
        self.classes[actor.0 as usize]
    }

    /// The default link parameters between two classes.
    fn default_link(&self, from: ActorId, to: ActorId) -> LinkConfig {
        match (self.class_of(from), self.class_of(to)) {
            (ActorClass::Process, ActorClass::Process) => LinkConfig::wifi(),
            (ActorClass::Device, ActorClass::Device) => LinkConfig::severed(),
            _ => LinkConfig::radio(),
        }
    }

    /// Current effective configuration of the directed link `from → to`.
    #[must_use]
    pub fn link(&self, from: ActorId, to: ActorId) -> LinkConfig {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or_else(|| self.default_link(from, to))
    }

    /// Replaces the configuration of the directed link `from → to`.
    pub fn set_link(&mut self, from: ActorId, to: ActorId, config: LinkConfig) {
        self.overrides.insert((from, to), config);
    }

    /// Replaces the configuration of the link in both directions.
    pub fn set_link_bidir(&mut self, a: ActorId, b: ActorId, config: LinkConfig) {
        self.set_link(a, b, config);
        self.set_link(b, a, config);
    }

    /// Sets the loss probability of the directed link `from → to`,
    /// keeping its other parameters.
    pub fn set_loss(&mut self, from: ActorId, to: ActorId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        let mut cfg = self.link(from, to);
        cfg.loss = loss;
        self.set_link(from, to, cfg);
    }

    /// Blocks or unblocks the directed link `from → to`.
    pub fn set_blocked(&mut self, from: ActorId, to: ActorId, blocked: bool) {
        let mut cfg = self.link(from, to);
        cfg.blocked = blocked;
        self.set_link(from, to, cfg);
    }

    /// Imposes a network partition: actors in different groups cannot
    /// exchange messages. Actors absent from every group are
    /// **unaffected** (they can talk to everyone): a home WiFi-router
    /// failure partitions the IP mesh but not the device radios.
    /// Replaces any previous partition.
    pub fn set_partition(&mut self, groups: &[Vec<ActorId>]) {
        let mut assignment = vec![u32::MAX; self.classes.len()];
        for (g, members) in groups.iter().enumerate() {
            for m in members {
                assignment[m.0 as usize] = g as u32;
            }
        }
        self.partition = Some(assignment);
    }

    /// Heals any active partition.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// Whether a partition currently separates `a` and `b`.
    #[must_use]
    pub fn partitioned(&self, a: ActorId, b: ActorId) -> bool {
        match &self.partition {
            None => false,
            Some(assign) => {
                let (ga, gb) = (assign[a.0 as usize], assign[b.0 as usize]);
                ga != u32::MAX && gb != u32::MAX && ga != gb
            }
        }
    }

    /// Decides the fate of a message of `bytes` payload bytes sent at
    /// `now` from `from` to `to`. Inter-process links are FIFO: the
    /// returned delivery time never precedes that of an earlier message
    /// on the same ordered pair.
    pub fn route(
        &mut self,
        rng: &mut StdRng,
        now: Time,
        from: ActorId,
        to: ActorId,
        bytes: usize,
        destination_up: bool,
    ) -> Verdict {
        if !destination_up {
            return Verdict::Drop(DropReason::DestinationDown);
        }
        if self.partitioned(from, to) {
            return Verdict::Drop(DropReason::Blocked);
        }
        let cfg = self.link(from, to);
        if cfg.blocked {
            return Verdict::Drop(DropReason::Blocked);
        }
        if cfg.loss > 0.0 && rng.gen_bool(cfg.loss.min(1.0)) {
            return Verdict::Drop(DropReason::RandomLoss);
        }
        let mut at = now + cfg.latency_for(bytes);
        // FIFO ordering for the reliable inter-process mesh.
        let fifo =
            self.class_of(from) == ActorClass::Process && self.class_of(to) == ActorClass::Process;
        if fifo {
            let last = self.last_delivery.entry((from, to)).or_insert(Time::ZERO);
            if at <= *last {
                at = *last + Duration::from_micros(1);
            }
            *last = at;
        }
        Verdict::Deliver(at)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn topo3() -> (Topology, ActorId, ActorId, ActorId) {
        let mut t = Topology::new();
        let p0 = t.register(ActorClass::Process);
        let p1 = t.register(ActorClass::Process);
        let d = t.register(ActorClass::Device);
        (t, p0, p1, d)
    }

    #[test]
    fn class_defaults() {
        let (t, p0, p1, d) = topo3();
        assert_eq!(t.link(p0, p1), LinkConfig::wifi());
        assert_eq!(t.link(d, p0), LinkConfig::radio());
        assert_eq!(t.link(p0, d), LinkConfig::radio());
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn device_to_device_is_severed() {
        let mut t = Topology::new();
        let d0 = t.register(ActorClass::Device);
        let d1 = t.register(ActorClass::Device);
        assert!(t.link(d0, d1).blocked);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            t.route(&mut rng, Time::ZERO, d0, d1, 4, true),
            Verdict::Drop(DropReason::Blocked)
        );
    }

    #[test]
    fn latency_grows_with_size() {
        let cfg = LinkConfig::radio();
        assert!(cfg.latency_for(20_000) > cfg.latency_for(4));
        assert_eq!(cfg.latency_for(0), cfg.base_latency);
    }

    #[test]
    fn loss_drops_expected_fraction() {
        let (mut t, _, p1, d) = topo3();
        t.set_loss(d, p1, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut delivered = 0;
        for _ in 0..10_000 {
            if matches!(
                t.route(&mut rng, Time::ZERO, d, p1, 4, true),
                Verdict::Deliver(_)
            ) {
                delivered += 1;
            }
        }
        // 50% ± 3% over 10k trials.
        assert!(
            (4_700..=5_300).contains(&delivered),
            "delivered {delivered}"
        );
    }

    #[test]
    #[should_panic(expected = "loss must be a probability")]
    fn loss_out_of_range_panics() {
        let (mut t, p0, p1, _) = topo3();
        t.set_loss(p0, p1, 1.5);
    }

    #[test]
    fn partition_blocks_cross_group_only() {
        let (mut t, p0, p1, d) = topo3();
        t.set_partition(&[vec![p0], vec![p1, d]]);
        assert!(t.partitioned(p0, p1));
        assert!(!t.partitioned(p1, d));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            t.route(&mut rng, Time::ZERO, p0, p1, 4, true),
            Verdict::Drop(DropReason::Blocked)
        );
        assert!(matches!(
            t.route(&mut rng, Time::ZERO, d, p1, 4, true),
            Verdict::Deliver(_)
        ));
        t.heal_partition();
        assert!(!t.partitioned(p0, p1));
    }

    #[test]
    fn crashed_destination_drops() {
        let (mut t, p0, p1, _) = topo3();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            t.route(&mut rng, Time::ZERO, p0, p1, 4, false),
            Verdict::Drop(DropReason::DestinationDown)
        );
    }

    #[test]
    fn process_links_are_fifo() {
        let (mut t, p0, p1, _) = topo3();
        // Send a large message then a small one: the small one must not
        // overtake on the FIFO TCP link.
        let mut rng = StdRng::seed_from_u64(0);
        let big = t.route(&mut rng, Time::ZERO, p0, p1, 1_000_000, true);
        let small = t.route(&mut rng, Time::ZERO, p0, p1, 1, true);
        let (Verdict::Deliver(t_big), Verdict::Deliver(t_small)) = (big, small) else {
            panic!("both should deliver");
        };
        assert!(t_small > t_big, "FIFO violated: {t_small:?} <= {t_big:?}");
    }

    #[test]
    fn radio_links_are_not_fifo() {
        let (mut t, p0, _, d) = topo3();
        let mut rng = StdRng::seed_from_u64(0);
        let big = t.route(&mut rng, Time::ZERO, d, p0, 1_000_000, true);
        let small = t.route(&mut rng, Time::ZERO, d, p0, 1, true);
        let (Verdict::Deliver(t_big), Verdict::Deliver(t_small)) = (big, small) else {
            panic!("both should deliver");
        };
        assert!(t_small < t_big, "radio should not serialize FIFO");
    }

    #[test]
    fn overrides_and_blocking() {
        let (mut t, p0, _, d) = topo3();
        t.set_blocked(d, p0, true);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            t.route(&mut rng, Time::ZERO, d, p0, 4, true),
            Verdict::Drop(DropReason::Blocked)
        );
        t.set_blocked(d, p0, false);
        assert!(matches!(
            t.route(&mut rng, Time::ZERO, d, p0, 4, true),
            Verdict::Deliver(_)
        ));
        let custom = LinkConfig {
            base_latency: Duration::from_millis(9),
            per_byte_nanos: 0,
            loss: 0.0,
            blocked: false,
        };
        t.set_link_bidir(d, p0, custom);
        assert_eq!(t.link(d, p0), custom);
        assert_eq!(t.link(p0, d), custom);
    }
}
