//! Optional per-message tracing for interactive debugging.
//!
//! [`Trace`] is the driver-local debugging tap: a raw log of every
//! send/deliver/drop/crash/recover a driver performed, with full actor
//! identities, for dissecting a single run by hand or in tests.
//!
//! It is **not** the experiment surface. Timeline measurements — the
//! Fig. 7 events-over-time plot, failover spans, crash markers — come
//! from the unified observability layer (`rivulet-obs`): drivers emit
//! `net.crash`/`net.recover` timeline events and the process runtime
//! emits `app.delivery`/`exec.promoted` into the shared
//! [`rivulet_obs::Recorder`], and harnesses read the resulting
//! [`rivulet_obs::ObsSnapshot`]. Keep `Trace` disabled unless you need
//! message-level forensics; it stores one entry per network occurrence
//! rather than aggregate counters.

use rivulet_types::Time;

use crate::actor::ActorId;
use crate::link::DropReason;

/// One recorded occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message left `from` toward `to`.
    Sent {
        /// Sender.
        from: ActorId,
        /// Destination.
        to: ActorId,
        /// Payload length in bytes.
        bytes: usize,
    },
    /// A message was delivered to `to`.
    Delivered {
        /// Sender.
        from: ActorId,
        /// Destination.
        to: ActorId,
    },
    /// A message was dropped in flight.
    Dropped {
        /// Sender.
        from: ActorId,
        /// Destination.
        to: ActorId,
        /// Why.
        reason: DropReason,
    },
    /// An actor crashed.
    Crashed {
        /// The actor.
        actor: ActorId,
    },
    /// An actor recovered.
    Recovered {
        /// The actor.
        actor: ActorId,
    },
}

/// A time-stamped log of driver occurrences.
///
/// Disabled by default; enabling it costs one `Vec` push per network
/// occurrence, which is acceptable for the 200-second home-scale runs
/// of the evaluation.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    entries: Vec<(Time, TraceEvent)>,
}

impl Trace {
    /// Creates a disabled trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` at `now` (no-op while disabled).
    pub fn record(&mut self, now: Time, event: TraceEvent) {
        if self.enabled {
            self.entries.push((now, event));
        }
    }

    /// All recorded entries in chronological order of recording.
    #[must_use]
    pub fn entries(&self) -> &[(Time, TraceEvent)] {
        &self.entries
    }

    /// Iterates over entries within `[from, to)`.
    pub fn between(&self, from: Time, to: Time) -> impl Iterator<Item = &(Time, TraceEvent)> {
        self.entries
            .iter()
            .filter(move |(t, _)| *t >= from && *t < to)
    }

    /// Discards all recorded entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new();
        assert!(!tr.is_enabled());
        tr.record(Time::ZERO, TraceEvent::Crashed { actor: ActorId(0) });
        assert!(tr.entries().is_empty());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        tr.record(
            Time::from_secs(1),
            TraceEvent::Crashed { actor: ActorId(0) },
        );
        tr.record(
            Time::from_secs(2),
            TraceEvent::Recovered { actor: ActorId(0) },
        );
        tr.record(
            Time::from_secs(3),
            TraceEvent::Sent {
                from: ActorId(0),
                to: ActorId(1),
                bytes: 4,
            },
        );
        assert_eq!(tr.entries().len(), 3);
        let window: Vec<_> = tr.between(Time::from_secs(2), Time::from_secs(3)).collect();
        assert_eq!(window.len(), 1);
        assert!(matches!(window[0].1, TraceEvent::Recovered { .. }));
        tr.clear();
        assert!(tr.entries().is_empty());
    }
}
