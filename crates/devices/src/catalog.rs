//! The off-the-shelf device survey of the paper.
//!
//! Table 3 classifies commodity smart-home sensors into small (4–8 B)
//! and large (1–20 KB) event classes; §8.5 lists the polling
//! characteristics of the four Z-Wave poll-based sensors used in the
//! coordinated-polling experiment. This module encodes both so the
//! harness can regenerate the tables and instantiate the exact Fig. 8
//! device mix.

use rivulet_types::{Duration, EventKind, SizeClass};

use crate::radio::RadioTech;
use crate::value::ValueModel;

/// How a sensor produces events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensingMode {
    /// Emits spontaneously on physical phenomena.
    Push,
    /// Produces a value only when polled.
    Poll,
}

/// One row of the device survey.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Human name (e.g. `"temperature"`).
    pub name: &'static str,
    /// Push or poll.
    pub mode: SensingMode,
    /// Event size class (Table 3).
    pub size_class: SizeClass,
    /// Representative event payload bytes.
    pub event_bytes: usize,
    /// Radio technology of typical hardware.
    pub tech: RadioTech,
    /// Event kind stamped on emissions.
    pub kind: EventKind,
    /// For poll sensors: hardware time to answer one poll (§8.5).
    pub poll_latency: Option<Duration>,
    /// For poll sensors: the epoch length the Fig. 8 application
    /// requests (3× the poll latency in the paper's setup).
    pub fig8_epoch: Option<Duration>,
}

/// The survey rows (Table 3 plus the §8.5 poll-based sensors).
#[must_use]
pub fn survey() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "temperature",
            mode: SensingMode::Poll,
            size_class: SizeClass::Small,
            event_bytes: 8,
            tech: RadioTech::ZWave,
            kind: EventKind::Reading,
            poll_latency: Some(Duration::from_millis(600)),
            fig8_epoch: Some(Duration::from_millis(1_800)),
        },
        CatalogEntry {
            name: "luminance",
            mode: SensingMode::Poll,
            size_class: SizeClass::Small,
            event_bytes: 8,
            tech: RadioTech::ZWave,
            kind: EventKind::Reading,
            poll_latency: Some(Duration::from_millis(600)),
            fig8_epoch: Some(Duration::from_millis(1_800)),
        },
        CatalogEntry {
            name: "humidity",
            mode: SensingMode::Poll,
            size_class: SizeClass::Small,
            event_bytes: 8,
            tech: RadioTech::ZWave,
            kind: EventKind::Reading,
            poll_latency: Some(Duration::from_secs(4)),
            fig8_epoch: Some(Duration::from_secs(12)),
        },
        CatalogEntry {
            name: "ultraviolet",
            mode: SensingMode::Poll,
            size_class: SizeClass::Small,
            event_bytes: 8,
            tech: RadioTech::ZWave,
            kind: EventKind::Reading,
            poll_latency: Some(Duration::from_secs(5)),
            fig8_epoch: Some(Duration::from_secs(15)),
        },
        CatalogEntry {
            name: "motion",
            mode: SensingMode::Push,
            size_class: SizeClass::Small,
            event_bytes: 4,
            tech: RadioTech::ZWave,
            kind: EventKind::Motion,
            poll_latency: None,
            fig8_epoch: None,
        },
        CatalogEntry {
            name: "door-window",
            mode: SensingMode::Push,
            size_class: SizeClass::Small,
            event_bytes: 4,
            tech: RadioTech::ZWave,
            kind: EventKind::DoorOpen,
            poll_latency: None,
            fig8_epoch: None,
        },
        CatalogEntry {
            name: "moisture",
            mode: SensingMode::Push,
            size_class: SizeClass::Small,
            event_bytes: 4,
            tech: RadioTech::ZWave,
            kind: EventKind::WaterDetected,
            poll_latency: None,
            fig8_epoch: None,
        },
        CatalogEntry {
            name: "smoke",
            mode: SensingMode::Push,
            size_class: SizeClass::Small,
            event_bytes: 4,
            tech: RadioTech::Zigbee,
            kind: EventKind::SmokeDetected,
            poll_latency: None,
            fig8_epoch: None,
        },
        CatalogEntry {
            name: "energy",
            mode: SensingMode::Push,
            size_class: SizeClass::Small,
            event_bytes: 8,
            tech: RadioTech::ZWave,
            kind: EventKind::Reading,
            poll_latency: None,
            fig8_epoch: None,
        },
        CatalogEntry {
            name: "vibration",
            mode: SensingMode::Push,
            size_class: SizeClass::Small,
            event_bytes: 4,
            tech: RadioTech::Zigbee,
            kind: EventKind::Motion,
            poll_latency: None,
            fig8_epoch: None,
        },
        CatalogEntry {
            name: "wearable-fall",
            mode: SensingMode::Push,
            size_class: SizeClass::Small,
            event_bytes: 8,
            tech: RadioTech::Ble,
            kind: EventKind::FallDetected,
            poll_latency: None,
            fig8_epoch: None,
        },
        CatalogEntry {
            name: "ip-camera",
            mode: SensingMode::Push,
            size_class: SizeClass::Large,
            event_bytes: 15 * 1024,
            tech: RadioTech::Ip,
            kind: EventKind::Image,
            poll_latency: None,
            fig8_epoch: None,
        },
        CatalogEntry {
            name: "microphone",
            mode: SensingMode::Push,
            size_class: SizeClass::Large,
            event_bytes: 1024,
            tech: RadioTech::Ip,
            kind: EventKind::AudioFrame,
            poll_latency: None,
            fig8_epoch: None,
        },
    ]
}

/// The four poll-based Z-Wave sensors of the Fig. 8 experiment, with a
/// value model for each.
#[must_use]
pub fn fig8_sensors() -> Vec<(CatalogEntry, ValueModel)> {
    survey()
        .into_iter()
        .filter(|e| e.mode == SensingMode::Poll)
        .map(|e| {
            let model = match e.name {
                "temperature" => ValueModel::indoor_temperature(),
                "luminance" => ValueModel::luminance(),
                "humidity" => ValueModel::humidity(),
                _ => ValueModel::uv_index(),
            };
            (e, model)
        })
        .collect()
}

/// Looks up a survey row by name.
#[must_use]
pub fn entry(name: &str) -> Option<CatalogEntry> {
    survey().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_match_table3() {
        for e in survey() {
            match e.size_class {
                SizeClass::Small => {
                    assert!((4..=8).contains(&e.event_bytes), "{} size", e.name);
                }
                SizeClass::Large => {
                    assert!(
                        (1024..=20 * 1024).contains(&e.event_bytes),
                        "{} size",
                        e.name
                    );
                }
            }
        }
    }

    #[test]
    fn fig8_sensor_parameters_match_paper() {
        let sensors = fig8_sensors();
        assert_eq!(sensors.len(), 4);
        let find = |n: &str| {
            sensors
                .iter()
                .find(|(e, _)| e.name == n)
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        let (temp, _) = find("temperature");
        assert_eq!(temp.poll_latency, Some(Duration::from_millis(600)));
        assert_eq!(temp.fig8_epoch, Some(Duration::from_millis(1_800)));
        let (hum, _) = find("humidity");
        assert_eq!(hum.poll_latency, Some(Duration::from_secs(4)));
        assert_eq!(hum.fig8_epoch, Some(Duration::from_secs(12)));
        let (uv, _) = find("ultraviolet");
        assert_eq!(uv.poll_latency, Some(Duration::from_secs(5)));
        assert_eq!(uv.fig8_epoch, Some(Duration::from_secs(15)));
        // Epochs are ≥ 3× poll latency so coordination has headroom.
        for (e, _) in &sensors {
            let ratio = e.fig8_epoch.unwrap().as_micros() / e.poll_latency.unwrap().as_micros();
            assert!(ratio >= 3, "{} ratio {ratio}", e.name);
        }
    }

    #[test]
    fn poll_sensors_all_have_latency_and_epoch() {
        for e in survey() {
            match e.mode {
                SensingMode::Poll => {
                    assert!(
                        e.poll_latency.is_some() && e.fig8_epoch.is_some(),
                        "{}",
                        e.name
                    );
                }
                SensingMode::Push => {
                    assert!(
                        e.poll_latency.is_none() && e.fig8_epoch.is_none(),
                        "{}",
                        e.name
                    );
                }
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(entry("temperature").is_some());
        assert!(entry("ip-camera").is_some());
        assert!(entry("flux-capacitor").is_none());
    }
}
