//! Low-power radio technology models and home floor plans.
//!
//! Not every process can hear every sensor: radio range, walls, and
//! technology mismatches partition the home into "cliques of
//! interconnected sensors and hubs" (paper §2.1). [`FloorPlan`]
//! captures device/host positions and obstructions and computes, per
//! device, the set of in-range hosts and the per-link loss rates —
//! exactly the inputs the delivery service experiments vary.

use std::collections::HashMap;

/// A low-power wireless technology used by off-the-shelf devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioTech {
    /// Z-Wave: ~40 m range, mesh multicast to all in-range peers.
    ZWave,
    /// Zigbee: ~10–20 m range, multicast-capable.
    Zigbee,
    /// Bluetooth Low Energy: ~100 m free-space range but typically
    /// paired with a single host.
    Ble,
    /// IP (WiFi) software sensors: in range of every process, as in the
    /// paper's §8 controlled experiments.
    Ip,
}

impl RadioTech {
    /// Nominal indoor range in meters (paper §2.1).
    #[must_use]
    pub fn range_meters(self) -> f64 {
        match self {
            RadioTech::ZWave => 40.0,
            RadioTech::Zigbee => 15.0,
            RadioTech::Ble => 100.0,
            RadioTech::Ip => f64::INFINITY,
        }
    }

    /// Whether the technology can deliver one emission to multiple
    /// hosts at once.
    #[must_use]
    pub fn supports_multicast(self) -> bool {
        match self {
            RadioTech::ZWave | RadioTech::Zigbee | RadioTech::Ip => true,
            RadioTech::Ble => false,
        }
    }
}

/// A point on the home's 2-D floor plan, in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// East–west coordinate.
    pub x: f64,
    /// North–south coordinate.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance_to(&self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Handle used by [`FloorPlan`] to refer to a placed entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlacementId(pub u32);

/// A 2-D model of the home: device and host positions, per-pair
/// obstructions (walls, appliances), and ambient interference.
///
/// The plan answers two questions per (device, host) pair, mirroring
/// what the paper's deployment study measured (§2.1, Fig. 1):
///
/// * **reachability** — is the host within the device's radio range?
/// * **loss rate** — base technology loss, degraded by obstruction.
#[derive(Debug, Default)]
pub struct FloorPlan {
    positions: Vec<Position>,
    /// Extra signal attenuation between pairs, expressed as an added
    /// loss probability in `[0, 1]` (e.g. 0.3 for a concrete wall).
    obstructions: HashMap<(PlacementId, PlacementId), f64>,
    /// Home-wide base loss from ambient RF interference.
    ambient_loss: f64,
}

impl FloorPlan {
    /// Creates an empty plan with no ambient interference.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the home-wide ambient loss probability (microwave ovens,
    /// cordless phones, … — paper §2.1).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a probability.
    pub fn set_ambient_loss(&mut self, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.ambient_loss = loss;
    }

    /// Places an entity at `pos`, returning its handle.
    pub fn place(&mut self, pos: Position) -> PlacementId {
        let id = PlacementId(self.positions.len() as u32);
        self.positions.push(pos);
        id
    }

    /// Records an obstruction between `a` and `b` adding `loss`
    /// probability of frame loss (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a probability.
    pub fn add_obstruction(&mut self, a: PlacementId, b: PlacementId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        let key = if a <= b { (a, b) } else { (b, a) };
        self.obstructions.insert(key, loss);
    }

    /// Whether `host` is within radio range of a `tech` device at `device`.
    #[must_use]
    pub fn in_range(&self, device: PlacementId, host: PlacementId, tech: RadioTech) -> bool {
        let d = self.positions[device.0 as usize].distance_to(self.positions[host.0 as usize]);
        d <= tech.range_meters()
    }

    /// Effective loss probability on the `device → host` link:
    /// `1 - (1-ambient) * (1-obstruction)`.
    #[must_use]
    pub fn link_loss(&self, device: PlacementId, host: PlacementId) -> f64 {
        let key = if device <= host {
            (device, host)
        } else {
            (host, device)
        };
        let obstruction = self.obstructions.get(&key).copied().unwrap_or(0.0);
        1.0 - (1.0 - self.ambient_loss) * (1.0 - obstruction)
    }

    /// The hosts (from `hosts`) reachable by a `tech` device at
    /// `device`, in the order given.
    #[must_use]
    pub fn reachable_hosts(
        &self,
        device: PlacementId,
        hosts: &[PlacementId],
        tech: RadioTech,
    ) -> Vec<PlacementId> {
        hosts
            .iter()
            .copied()
            .filter(|h| self.in_range(device, *h, tech))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_match_paper() {
        assert_eq!(RadioTech::ZWave.range_meters(), 40.0);
        assert_eq!(RadioTech::Zigbee.range_meters(), 15.0);
        assert_eq!(RadioTech::Ble.range_meters(), 100.0);
        assert!(RadioTech::Ip.range_meters().is_infinite());
    }

    #[test]
    fn multicast_support() {
        assert!(RadioTech::ZWave.supports_multicast());
        assert!(RadioTech::Zigbee.supports_multicast());
        assert!(!RadioTech::Ble.supports_multicast());
    }

    #[test]
    fn distance_and_range() {
        let mut plan = FloorPlan::new();
        let sensor = plan.place(Position::new(0.0, 0.0));
        let near = plan.place(Position::new(3.0, 4.0)); // 5 m
        let far = plan.place(Position::new(30.0, 40.0)); // 50 m
        assert_eq!(
            plan.positions[sensor.0 as usize].distance_to(Position::new(3.0, 4.0)),
            5.0
        );
        assert!(plan.in_range(sensor, near, RadioTech::Zigbee));
        assert!(!plan.in_range(sensor, far, RadioTech::ZWave));
        assert!(plan.in_range(sensor, far, RadioTech::Ble));
        let reachable = plan.reachable_hosts(sensor, &[near, far], RadioTech::ZWave);
        assert_eq!(reachable, vec![near]);
    }

    #[test]
    fn loss_composes_ambient_and_obstruction() {
        let mut plan = FloorPlan::new();
        let s = plan.place(Position::new(0.0, 0.0));
        let h = plan.place(Position::new(1.0, 0.0));
        assert_eq!(plan.link_loss(s, h), 0.0);
        plan.set_ambient_loss(0.1);
        assert!((plan.link_loss(s, h) - 0.1).abs() < 1e-12);
        plan.add_obstruction(s, h, 0.5);
        // 1 - 0.9*0.5 = 0.55
        assert!((plan.link_loss(s, h) - 0.55).abs() < 1e-12);
        // Symmetric lookup.
        assert_eq!(plan.link_loss(h, s), plan.link_loss(s, h));
    }

    #[test]
    #[should_panic(expected = "loss must be a probability")]
    fn bad_ambient_loss_panics() {
        FloorPlan::new().set_ambient_loss(2.0);
    }
}
