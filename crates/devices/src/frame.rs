//! The frame vocabulary spoken between devices and Rivulet processes.
//!
//! Adapters on the process side (paper §7) translate these
//! technology-level frames into platform events and back. Every frame
//! crosses a radio link, so it is wire-encoded and its exact size is
//! part of the experiment byte accounting.

use bytes::Bytes;
use rivulet_types::wire::{Wire, WireError, WireReader, WireWriter};
use rivulet_types::{ActuationState, Command, CommandId, Event, RoutineId, SensorId};

/// A frame on a device↔process radio link.
#[derive(Debug, Clone, PartialEq)]
pub enum RadioFrame {
    /// A push-based sensor spontaneously reports an event, or a
    /// poll-based sensor answers a poll.
    Event(Event),
    /// A process polls a sensor for a fresh reading. Carries the
    /// requester's polling epoch so the response can be matched to it
    /// (coordinated polling, §4.1).
    PollRequest {
        /// The polled sensor.
        sensor: SensorId,
        /// The requesting application's polling epoch.
        epoch: u64,
    },
    /// A process instructs an actuator.
    Actuate(Command),
    /// An actuator acknowledges a command, reporting whether it was
    /// applied (Test&Set may refuse) and the resulting state.
    ActuateAck {
        /// Identity of the acknowledged command.
        command: CommandId,
        /// Whether the command took effect.
        applied: bool,
        /// The actuator state after processing the command.
        state: ActuationState,
    },
    /// The routine coordinator stages one step's command on an
    /// actuator. The actuator withholds the command (nothing fires)
    /// until a matching [`RadioFrame::CommitRoutine`] arrives, or
    /// discards it on [`RadioFrame::AbortRoutine`].
    Stage {
        /// The routine spec being fired.
        routine: RoutineId,
        /// The firing instance (coordinator-local counter).
        instance: u64,
        /// Position of this command in the routine's step order.
        step: u32,
        /// The withheld command.
        command: Command,
    },
    /// The actuator acknowledges staging; `accepted` is false when the
    /// actuator refuses to hold the command (e.g. a faulty device).
    StageAck {
        /// The staged routine.
        routine: RoutineId,
        /// The staged instance.
        instance: u64,
        /// The staged step.
        step: u32,
        /// Whether the command is now held for commit.
        accepted: bool,
    },
    /// Fires every command the actuator holds for `(routine,
    /// instance)`, in step order. Idempotent: an instance already
    /// committed (or never staged here) applies nothing.
    CommitRoutine {
        /// The routine to commit.
        routine: RoutineId,
        /// The instance to commit.
        instance: u64,
    },
    /// Discards every command the actuator holds for `(routine,
    /// instance)` without firing.
    AbortRoutine {
        /// The routine to abort.
        routine: RoutineId,
        /// The instance to abort.
        instance: u64,
    },
}

impl RadioFrame {
    /// Encodes the frame for transmission.
    #[must_use]
    pub fn to_payload(&self) -> Bytes {
        self.to_bytes()
    }
}

impl Wire for RadioFrame {
    fn encoded_len(&self) -> usize {
        1 + match self {
            RadioFrame::Event(e) => e.encoded_len(),
            RadioFrame::PollRequest { sensor, epoch } => sensor.encoded_len() + epoch.encoded_len(),
            RadioFrame::Actuate(c) => c.encoded_len(),
            RadioFrame::ActuateAck {
                command,
                applied,
                state,
            } => command.encoded_len() + applied.encoded_len() + state.encoded_len(),
            RadioFrame::Stage {
                routine,
                instance,
                step,
                command,
            } => {
                routine.encoded_len()
                    + instance.encoded_len()
                    + step.encoded_len()
                    + command.encoded_len()
            }
            RadioFrame::StageAck {
                routine,
                instance,
                step,
                accepted,
            } => {
                routine.encoded_len()
                    + instance.encoded_len()
                    + step.encoded_len()
                    + accepted.encoded_len()
            }
            RadioFrame::CommitRoutine { routine, instance }
            | RadioFrame::AbortRoutine { routine, instance } => {
                routine.encoded_len() + instance.encoded_len()
            }
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        match self {
            RadioFrame::Event(e) => {
                w.put_u8(0);
                e.encode(w);
            }
            RadioFrame::PollRequest { sensor, epoch } => {
                w.put_u8(1);
                sensor.encode(w);
                epoch.encode(w);
            }
            RadioFrame::Actuate(c) => {
                w.put_u8(2);
                c.encode(w);
            }
            RadioFrame::ActuateAck {
                command,
                applied,
                state,
            } => {
                w.put_u8(3);
                command.encode(w);
                applied.encode(w);
                state.encode(w);
            }
            RadioFrame::Stage {
                routine,
                instance,
                step,
                command,
            } => {
                w.put_u8(4);
                routine.encode(w);
                instance.encode(w);
                step.encode(w);
                command.encode(w);
            }
            RadioFrame::StageAck {
                routine,
                instance,
                step,
                accepted,
            } => {
                w.put_u8(5);
                routine.encode(w);
                instance.encode(w);
                step.encode(w);
                accepted.encode(w);
            }
            RadioFrame::CommitRoutine { routine, instance } => {
                w.put_u8(6);
                routine.encode(w);
                instance.encode(w);
            }
            RadioFrame::AbortRoutine { routine, instance } => {
                w.put_u8(7);
                routine.encode(w);
                instance.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(RadioFrame::Event(Event::decode(r)?)),
            1 => Ok(RadioFrame::PollRequest {
                sensor: SensorId::decode(r)?,
                epoch: u64::decode(r)?,
            }),
            2 => Ok(RadioFrame::Actuate(Command::decode(r)?)),
            3 => Ok(RadioFrame::ActuateAck {
                command: CommandId::decode(r)?,
                applied: bool::decode(r)?,
                state: ActuationState::decode(r)?,
            }),
            4 => Ok(RadioFrame::Stage {
                routine: RoutineId::decode(r)?,
                instance: u64::decode(r)?,
                step: u32::decode(r)?,
                command: Command::decode(r)?,
            }),
            5 => Ok(RadioFrame::StageAck {
                routine: RoutineId::decode(r)?,
                instance: u64::decode(r)?,
                step: u32::decode(r)?,
                accepted: bool::decode(r)?,
            }),
            6 => Ok(RadioFrame::CommitRoutine {
                routine: RoutineId::decode(r)?,
                instance: u64::decode(r)?,
            }),
            7 => Ok(RadioFrame::AbortRoutine {
                routine: RoutineId::decode(r)?,
                instance: u64::decode(r)?,
            }),
            tag => Err(WireError::InvalidTag {
                ty: "RadioFrame",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::wire::roundtrip;
    use rivulet_types::{
        ActuatorId, CommandKind, EventId, EventKind, OperatorId, Payload, ProcessId, RoutineId,
        Time,
    };

    #[test]
    fn frames_roundtrip() {
        roundtrip(&RadioFrame::Event(Event::new(
            EventId::new(SensorId(1), 4),
            EventKind::Motion,
            Time::from_millis(10),
        )));
        roundtrip(&RadioFrame::PollRequest {
            sensor: SensorId(2),
            epoch: 17,
        });
        roundtrip(&RadioFrame::Actuate(Command::new(
            CommandId::new(ProcessId(0), OperatorId(1), 3),
            ActuatorId(5),
            CommandKind::Set(ActuationState::Switch(true)),
            Time::from_secs(1),
        )));
        roundtrip(&RadioFrame::ActuateAck {
            command: CommandId::new(ProcessId(0), OperatorId(1), 3),
            applied: false,
            state: ActuationState::Level(20.0),
        });
        roundtrip(&RadioFrame::Stage {
            routine: RoutineId(2),
            instance: 9,
            step: 1,
            command: Command::new(
                CommandId::new(ProcessId(0), OperatorId(1), 4),
                ActuatorId(5),
                CommandKind::Set(ActuationState::Level(30.0)),
                Time::from_secs(2),
            ),
        });
        roundtrip(&RadioFrame::StageAck {
            routine: RoutineId(2),
            instance: 9,
            step: 1,
            accepted: true,
        });
        roundtrip(&RadioFrame::CommitRoutine {
            routine: RoutineId(2),
            instance: 9,
        });
        roundtrip(&RadioFrame::AbortRoutine {
            routine: RoutineId(2),
            instance: 9,
        });
    }

    #[test]
    fn event_frame_size_tracks_payload() {
        let small = RadioFrame::Event(Event::new(
            EventId::new(SensorId(1), 0),
            EventKind::DoorOpen,
            Time::ZERO,
        ));
        let large = RadioFrame::Event(Event::with_payload(
            EventId::new(SensorId(1), 0),
            EventKind::Image,
            Payload::zeros(10_240),
            Time::ZERO,
        ));
        assert!(
            small.encoded_len() < 32,
            "small frame is {}",
            small.encoded_len()
        );
        assert!(large.encoded_len() > 10_240);
        assert_eq!(small.to_payload().len(), small.encoded_len());
    }

    #[test]
    fn junk_tag_rejected() {
        assert!(matches!(
            RadioFrame::from_bytes(&[9]),
            Err(WireError::InvalidTag {
                ty: "RadioFrame",
                tag: 9
            })
        ));
    }
}
