//! Push-based and poll-based sensor devices.
//!
//! Push-based sensors (door, motion, camera, wearables) emit events
//! spontaneously and multicast them to every in-range process.
//! Poll-based sensors (temperature, luminance, humidity, UV) answer
//! poll requests, and — like the off-the-shelf Z-Wave hardware the
//! paper measured — support **only one outstanding poll**, silently
//! dropping concurrent requests (§4.1, Fig. 8).
//!
//! Both kinds expose a *probe*: a shared handle recording ground truth
//! (every emission / every poll) that experiments read afterwards to
//! compute delivery percentages and polling overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use rand::Rng;
use rivulet_net::actor::{Actor, ActorEvent, ActorId, Context};
use rivulet_obs::Recorder;
use rivulet_types::wire::{Wire, WriterPool};
use rivulet_types::{Duration, Event, EventId, EventKind, Payload, SensorId, Time};

use crate::fault::{DeviceFaults, FaultProbe};
use crate::frame::RadioFrame;
use crate::value::ValueModel;

/// Timer token for the next scheduled push emission.
const TOKEN_EMIT: u64 = 1;
/// Timer token for poll completion.
const TOKEN_POLL_DONE: u64 = 2;

/// When a push-based sensor emits.
#[derive(Debug, Clone, PartialEq)]
pub enum EmissionSchedule {
    /// Fixed period (the evaluation's "10 events per second" uses
    /// `Periodic(100 ms)`).
    Periodic(Duration),
    /// Memoryless inter-arrival times with the given mean, for
    /// human-triggered sensors like doors and motion.
    Poisson {
        /// Mean time between events.
        mean: Duration,
    },
    /// Explicit emission instants (for scripted scenario tests like
    /// the paper's Fig. 3 trace). Must be sorted ascending.
    Script(Vec<Time>),
}

/// What each emitted event carries.
#[derive(Debug, Clone, PartialEq)]
pub enum PayloadSpec {
    /// Kind-only events (door open/close, motion): the 4-byte class.
    KindOnly(EventKind),
    /// Scalar readings drawn from a model: the 8-byte class.
    Scalar(ValueModel),
    /// Opaque blobs of a fixed size (camera frames, audio batches).
    Blob {
        /// Kind to stamp on the event.
        kind: EventKind,
        /// Payload size in bytes.
        len: usize,
    },
}

impl PayloadSpec {
    /// Builds the next event's payload. `blob_cache` holds one shared
    /// zero-blob allocation: every `Blob` emission cheap-clones it
    /// instead of allocating a fresh buffer per event, so a camera
    /// streaming 1 KiB frames allocates its payload exactly once.
    fn materialize(
        &mut self,
        now: Time,
        rng: &mut rand::rngs::StdRng,
        blob_cache: &mut Option<Bytes>,
    ) -> (EventKind, Payload) {
        match self {
            PayloadSpec::KindOnly(kind) => (*kind, Payload::Empty),
            PayloadSpec::Scalar(model) => {
                (EventKind::Reading, Payload::Scalar(model.sample(now, rng)))
            }
            PayloadSpec::Blob { kind, len } => {
                let blob = match blob_cache {
                    Some(b) if b.len() == *len => b.clone(),
                    _ => {
                        let b = Bytes::from(vec![0u8; *len]);
                        *blob_cache = Some(b.clone());
                        b
                    }
                };
                (*kind, Payload::Blob(blob))
            }
        }
    }
}

/// Ground truth about a push sensor's emissions, shared with the
/// harness.
#[derive(Debug, Default)]
pub struct EmissionProbe {
    emitted: AtomicU64,
    log: Mutex<Vec<(Time, EventId)>>,
}

impl EmissionProbe {
    /// Creates an empty probe.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Number of events the sensor has emitted.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::SeqCst)
    }

    /// Snapshot of `(emission time, event id)` pairs.
    #[must_use]
    pub fn log(&self) -> Vec<(Time, EventId)> {
        self.log.lock().expect("probe lock").clone()
    }

    fn record(&self, now: Time, id: EventId) {
        self.emitted.fetch_add(1, Ordering::SeqCst);
        self.log.lock().expect("probe lock").push((now, id));
    }
}

/// A push-based sensor: emits events on its schedule and multicasts
/// each to every target process (the Z-Wave mesh behaviour of §3.1).
///
/// Targets are fixed at construction: the deployment layer computes
/// them from the floor plan. Per-link loss/blocking is the network's
/// business, not the sensor's.
#[derive(Debug)]
pub struct PushSensor {
    sensor: SensorId,
    payload: PayloadSpec,
    schedule: EmissionSchedule,
    targets: Vec<ActorId>,
    probe: Arc<EmissionProbe>,
    next_seq: u64,
    script_idx: usize,
    /// Pooled encode buffers: each emission encodes into a recycled
    /// writer instead of allocating a fresh one.
    pool: WriterPool,
    /// Shared zero-blob payload for `PayloadSpec::Blob` emissions.
    blob_cache: Option<Bytes>,
    /// Seeded fault schedule, if a [`crate::fault::FaultPlan`] names
    /// this sensor. Consults pure hash streams only — never the driver
    /// RNG — so attaching a rate-0 plan perturbs nothing.
    faults: Option<DeviceFaults>,
    /// Ground-truth record of injected faults, for harnesses.
    fault_probe: Option<Arc<FaultProbe>>,
    /// `fault.*` counters (disabled recorder by default).
    obs: Recorder,
}

impl PushSensor {
    /// Creates a push sensor.
    #[must_use]
    pub fn new(
        sensor: SensorId,
        payload: PayloadSpec,
        schedule: EmissionSchedule,
        targets: Vec<ActorId>,
        probe: Arc<EmissionProbe>,
    ) -> Self {
        if let EmissionSchedule::Script(times) = &schedule {
            debug_assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "script must be sorted"
            );
        }
        Self {
            sensor,
            payload,
            schedule,
            targets,
            probe,
            next_seq: 0,
            script_idx: 0,
            pool: WriterPool::new(),
            blob_cache: None,
            faults: None,
            fault_probe: None,
            obs: Recorder::new(),
        }
    }

    /// The sensor's platform identity.
    #[must_use]
    pub fn sensor_id(&self) -> SensorId {
        self.sensor
    }

    /// Starts sequence numbering at `seq` instead of zero. Deployment
    /// uses this when rebuilding a recovered sensor so its fresh
    /// events do not collide with pre-crash event identities.
    #[must_use]
    pub fn with_start_seq(mut self, seq: u64) -> Self {
        self.next_seq = seq;
        self
    }

    /// Attaches a seeded fault schedule (see [`crate::fault`]).
    #[must_use]
    pub fn with_faults(mut self, faults: Option<DeviceFaults>) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a ground-truth fault probe.
    #[must_use]
    pub fn with_fault_probe(mut self, probe: Arc<FaultProbe>) -> Self {
        self.fault_probe = Some(probe);
        self
    }

    /// Attaches an obs recorder for `fault.*` counters.
    #[must_use]
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    fn schedule_next(&mut self, ctx: &mut Context<'_>) {
        match &self.schedule {
            EmissionSchedule::Periodic(period) => ctx.set_timer(*period, TOKEN_EMIT),
            EmissionSchedule::Poisson { mean } => {
                // Inverse-CDF exponential draw from the driver RNG.
                let u: f64 = ctx.rng().gen_range(f64::EPSILON..1.0);
                let wait = mean.mul_f64(-u.ln());
                ctx.set_timer(wait, TOKEN_EMIT);
            }
            EmissionSchedule::Script(times) => {
                if let Some(at) = times.get(self.script_idx) {
                    let wait = at.duration_since(ctx.now());
                    ctx.set_timer(wait, TOKEN_EMIT);
                }
            }
        }
    }

    fn emit(&mut self, ctx: &mut Context<'_>) {
        let decision = match self.faults.as_mut() {
            Some(f) => f.decide_next(),
            None => crate::fault::FaultDecision::default(),
        };
        if let Some(cause) = decision.suppress {
            // Missed event / battery skip: the emission never happens,
            // no sequence number is consumed, the emission probe does
            // not see it (the phenomenon occurred but the radio never
            // carried it).
            self.obs.inc(cause.counter_name());
            if let Some(p) = &self.fault_probe {
                p.record_suppressed(cause);
            }
            return;
        }
        let id = EventId::new(self.sensor, self.next_seq);
        self.next_seq += 1;
        let now = ctx.now();
        let (kind, payload) = self
            .payload
            .materialize(now, ctx.rng(), &mut self.blob_cache);
        let payload = match (decision.corrupt, payload) {
            (Some(ckind), Payload::Scalar(v)) => {
                let f = self.faults.as_mut().expect("corrupt implies faults");
                let (cv, altered) = f.corrupt_value(v);
                if altered {
                    self.obs.inc(ckind.counter_name());
                    if let Some(p) = &self.fault_probe {
                        p.record_corrupted(id);
                    }
                }
                Payload::Scalar(cv)
            }
            (_, payload) => payload,
        };
        let event = Event::with_payload(id, kind, payload, now);
        self.probe.record(now, id);
        // Encode once into a pooled buffer; every target gets a cheap
        // clone of the same frozen frame.
        let frame = self.pool.encode(&RadioFrame::Event(event));
        for target in &self.targets {
            ctx.send(*target, frame.clone());
        }
        if decision.ghost {
            self.emit_ghost(ctx, now);
        }
    }

    /// Emits a spurious extra event right after a real one. The ghost
    /// consumes a sequence number and is recorded in the emission probe
    /// (it really went over the radio); its id is additionally logged
    /// in the fault probe so harnesses can score it as incorrect. Its
    /// value comes purely from the fault stream, never the driver RNG.
    fn emit_ghost(&mut self, ctx: &mut Context<'_>, now: Time) {
        let id = EventId::new(self.sensor, self.next_seq);
        self.next_seq += 1;
        let (kind, payload) = match &self.payload {
            PayloadSpec::Scalar(_) => {
                let f = self.faults.as_ref().expect("ghost implies faults");
                (EventKind::Reading, Payload::Scalar(f.ghost_value()))
            }
            // KindOnly and Blob materialization never touches the RNG.
            _ => self
                .payload
                .materialize(now, ctx.rng(), &mut self.blob_cache),
        };
        let event = Event::with_payload(id, kind, payload, now);
        self.probe.record(now, id);
        self.obs.inc("fault.ghost");
        if let Some(p) = &self.fault_probe {
            p.record_ghost(id);
        }
        let frame = self.pool.encode(&RadioFrame::Event(event));
        for target in &self.targets {
            ctx.send(*target, frame.clone());
        }
    }
}

impl Actor for PushSensor {
    fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
        match event {
            ActorEvent::Start => self.schedule_next(ctx),
            ActorEvent::Timer { token: TOKEN_EMIT } => {
                self.emit(ctx);
                if let EmissionSchedule::Script(_) = self.schedule {
                    self.script_idx += 1;
                }
                self.schedule_next(ctx);
            }
            // Push sensors ignore inbound frames (they have no poll or
            // actuation surface).
            _ => {}
        }
    }
}

/// Ground truth about a poll sensor's request handling.
#[derive(Debug, Default)]
pub struct PollProbe {
    received: AtomicU64,
    answered: AtomicU64,
    dropped_busy: AtomicU64,
}

impl PollProbe {
    /// Creates an empty probe.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Total poll requests that reached the sensor. This is the
    /// battery-cost figure of Fig. 8: every received request costs
    /// radio wake-up energy whether or not it is answered.
    #[must_use]
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::SeqCst)
    }

    /// Requests answered with a reading.
    #[must_use]
    pub fn answered(&self) -> u64 {
        self.answered.load(Ordering::SeqCst)
    }

    /// Requests silently dropped because a poll was outstanding.
    #[must_use]
    pub fn dropped_busy(&self) -> u64 {
        self.dropped_busy.load(Ordering::SeqCst)
    }
}

/// A poll-based sensor with the paper's off-the-shelf semantics:
/// answering a poll takes up to `poll_latency` (600 ms is the *nominal*
/// polling period of the Z-Wave temperature sensor in Fig. 8; real
/// answers complete in a fraction of it — we sample uniformly from
/// 30–90 % of nominal), and **only one poll may be outstanding** —
/// concurrent requests are silently dropped, the misbehaviour that
/// motivates coordinated polling (§4.1).
#[derive(Debug)]
pub struct PollSensor {
    sensor: SensorId,
    value: ValueModel,
    poll_latency: Duration,
    probe: Arc<PollProbe>,
    /// `(requester, epoch)` of the in-flight poll, if any.
    busy_with: Option<(ActorId, u64)>,
    next_seq: u64,
    /// Pooled encode buffers for poll answers.
    pool: WriterPool,
    /// Seeded fault schedule, if a plan names this sensor.
    faults: Option<DeviceFaults>,
    /// Ground-truth record of injected faults.
    fault_probe: Option<Arc<FaultProbe>>,
    /// `fault.*` counters (disabled recorder by default).
    obs: Recorder,
}

impl PollSensor {
    /// Creates a poll sensor.
    #[must_use]
    pub fn new(
        sensor: SensorId,
        value: ValueModel,
        poll_latency: Duration,
        probe: Arc<PollProbe>,
    ) -> Self {
        Self {
            sensor,
            value,
            poll_latency,
            probe,
            busy_with: None,
            next_seq: 0,
            pool: WriterPool::new(),
            faults: None,
            fault_probe: None,
            obs: Recorder::new(),
        }
    }

    /// The sensor's platform identity.
    #[must_use]
    pub fn sensor_id(&self) -> SensorId {
        self.sensor
    }

    /// Starts sequence numbering at `seq` instead of zero (see
    /// [`PushSensor::with_start_seq`]).
    #[must_use]
    pub fn with_start_seq(mut self, seq: u64) -> Self {
        self.next_seq = seq;
        self
    }

    /// Attaches a seeded fault schedule (see [`crate::fault`]).
    #[must_use]
    pub fn with_faults(mut self, faults: Option<DeviceFaults>) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a ground-truth fault probe.
    #[must_use]
    pub fn with_fault_probe(mut self, probe: Arc<FaultProbe>) -> Self {
        self.fault_probe = Some(probe);
        self
    }

    /// Attaches an obs recorder for `fault.*` counters.
    #[must_use]
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }
}

impl Actor for PollSensor {
    fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
        match event {
            ActorEvent::Message { from, payload } => {
                let Ok(frame) = RadioFrame::from_bytes(&payload) else {
                    return; // corrupt frame: drop, as hardware would
                };
                if let RadioFrame::PollRequest { sensor, epoch } = frame {
                    if sensor != self.sensor {
                        return;
                    }
                    self.probe.received.fetch_add(1, Ordering::SeqCst);
                    if self.busy_with.is_some() {
                        // One outstanding poll only: silent drop.
                        self.probe.dropped_busy.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                    self.busy_with = Some((from, epoch));
                    // Real hardware usually answers well under its
                    // nominal polling period.
                    let factor = ctx.rng().gen_range(0.3..0.9);
                    ctx.set_timer(self.poll_latency.mul_f64(factor), TOKEN_POLL_DONE);
                }
            }
            ActorEvent::Timer {
                token: TOKEN_POLL_DONE,
            } => {
                let Some((requester, epoch)) = self.busy_with.take() else {
                    return;
                };
                let decision = match self.faults.as_mut() {
                    Some(f) => f.decide_next(),
                    None => crate::fault::FaultDecision::default(),
                };
                if let Some(cause) = decision.suppress {
                    // The answer is silently lost: the epoch goes
                    // unserved and the platform's re-poll machinery
                    // (or the repair layer) must recover it.
                    self.obs.inc(cause.counter_name());
                    if let Some(p) = &self.fault_probe {
                        p.record_suppressed(cause);
                    }
                    return;
                }
                let now = ctx.now();
                let mut value = self.value.sample(now, ctx.rng());
                let id = EventId::new(self.sensor, self.next_seq);
                self.next_seq += 1;
                if let Some(ckind) = decision.corrupt {
                    let f = self.faults.as_mut().expect("corrupt implies faults");
                    let (cv, altered) = f.corrupt_value(value);
                    if altered {
                        self.obs.inc(ckind.counter_name());
                        if let Some(p) = &self.fault_probe {
                            p.record_corrupted(id);
                        }
                    }
                    value = cv;
                }
                let event =
                    Event::with_payload(id, EventKind::Reading, Payload::Scalar(value), now)
                        .in_epoch(epoch);
                self.probe.answered.fetch_add(1, Ordering::SeqCst);
                let frame = self.pool.encode(&RadioFrame::Event(event));
                ctx.send(requester, frame);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_net::link::ActorClass;
    use rivulet_net::sim::{SimConfig, SimNet};

    /// Collects decoded event frames.
    struct Collector {
        events: Arc<Mutex<Vec<(Time, Event)>>>,
    }

    impl Actor for Collector {
        fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
            if let ActorEvent::Message { payload, .. } = event {
                if let Ok(RadioFrame::Event(ev)) = RadioFrame::from_bytes(&payload) {
                    self.events.lock().expect("lock").push((ctx.now(), ev));
                }
            }
        }
    }

    type CollectedEvents = Arc<Mutex<Vec<(Time, Event)>>>;

    fn add_collector(net: &mut SimNet) -> (ActorId, CollectedEvents) {
        let events = Arc::new(Mutex::new(Vec::new()));
        let e = Arc::clone(&events);
        let id = net.add_actor("collector", ActorClass::Process, move || {
            Box::new(Collector {
                events: Arc::clone(&e),
            })
        });
        (id, events)
    }

    #[test]
    fn periodic_push_sensor_emits_at_rate() {
        let mut net = SimNet::new(SimConfig::with_seed(1));
        let (proc_a, recv_a) = add_collector(&mut net);
        let (proc_b, recv_b) = add_collector(&mut net);
        let probe = EmissionProbe::new();
        let p = Arc::clone(&probe);
        net.add_actor("door", ActorClass::Device, move || {
            Box::new(PushSensor::new(
                SensorId(1),
                PayloadSpec::KindOnly(EventKind::DoorOpen),
                EmissionSchedule::Periodic(Duration::from_millis(100)),
                vec![proc_a, proc_b],
                Arc::clone(&p),
            ))
        });
        net.run_until(Time::from_secs(10));
        assert_eq!(probe.emitted(), 100, "10 ev/s for 10 s");
        // Multicast reaches both processes (lossless by default).
        let got_a = recv_a.lock().unwrap().len();
        let got_b = recv_b.lock().unwrap().len();
        assert!(got_a >= 99 && got_b >= 99, "a={got_a} b={got_b}");
        // Sequence numbers are gap-free at the source.
        let log = probe.log();
        for (i, (_, id)) in log.iter().enumerate() {
            assert_eq!(id.seq, i as u64);
            assert_eq!(id.sensor, SensorId(1));
        }
    }

    #[test]
    fn poisson_sensor_mean_rate_is_plausible() {
        let mut net = SimNet::new(SimConfig::with_seed(7));
        let (proc_a, _) = add_collector(&mut net);
        let probe = EmissionProbe::new();
        let p = Arc::clone(&probe);
        net.add_actor("motion", ActorClass::Device, move || {
            Box::new(PushSensor::new(
                SensorId(2),
                PayloadSpec::KindOnly(EventKind::Motion),
                EmissionSchedule::Poisson {
                    mean: Duration::from_secs(1),
                },
                vec![proc_a],
                Arc::clone(&p),
            ))
        });
        net.run_until(Time::from_secs(1_000));
        let n = probe.emitted();
        // Mean 1000 events; 5 sigma ≈ 160.
        assert!((800..=1_200).contains(&n), "poisson count {n}");
    }

    #[test]
    fn scripted_sensor_follows_script() {
        let mut net = SimNet::new(SimConfig::with_seed(3));
        let (proc_a, recv) = add_collector(&mut net);
        let probe = EmissionProbe::new();
        let p = Arc::clone(&probe);
        let script = vec![Time::from_secs(1), Time::from_secs(2), Time::from_secs(5)];
        let s = script.clone();
        net.add_actor("door", ActorClass::Device, move || {
            Box::new(PushSensor::new(
                SensorId(3),
                PayloadSpec::KindOnly(EventKind::DoorOpen),
                EmissionSchedule::Script(s.clone()),
                vec![proc_a],
                Arc::clone(&p),
            ))
        });
        net.run_until(Time::from_secs(10));
        assert_eq!(probe.emitted(), 3);
        let log = probe.log();
        let times: Vec<Time> = log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, script);
        assert_eq!(recv.lock().unwrap().len(), 3);
    }

    #[test]
    fn blob_sensor_carries_bytes() {
        let mut net = SimNet::new(SimConfig::with_seed(4));
        let (proc_a, recv) = add_collector(&mut net);
        let probe = EmissionProbe::new();
        let p = Arc::clone(&probe);
        net.add_actor("camera", ActorClass::Device, move || {
            Box::new(PushSensor::new(
                SensorId(4),
                PayloadSpec::Blob {
                    kind: EventKind::Image,
                    len: 10_240,
                },
                EmissionSchedule::Periodic(Duration::from_millis(500)),
                vec![proc_a],
                Arc::clone(&p),
            ))
        });
        net.run_until(Time::from_secs(2));
        let events = recv.lock().unwrap();
        assert!(!events.is_empty());
        for (_, ev) in events.iter() {
            assert_eq!(ev.kind, EventKind::Image);
            assert_eq!(ev.payload.len(), 10_240);
        }
    }

    /// Sends poll requests on a schedule.
    struct Poller {
        target: ActorId,
        sensor: SensorId,
        period: Duration,
        epoch: u64,
        replies: Arc<Mutex<Vec<Event>>>,
    }

    impl Actor for Poller {
        fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
            match event {
                ActorEvent::Start => ctx.set_timer(self.period, 1),
                ActorEvent::Timer { .. } => {
                    let frame = RadioFrame::PollRequest {
                        sensor: self.sensor,
                        epoch: self.epoch,
                    };
                    self.epoch += 1;
                    ctx.send(self.target, frame.to_payload());
                    ctx.set_timer(self.period, 1);
                }
                ActorEvent::Message { payload, .. } => {
                    if let Ok(RadioFrame::Event(ev)) = RadioFrame::from_bytes(&payload) {
                        self.replies.lock().expect("lock").push(ev);
                    }
                }
            }
        }
    }

    #[test]
    fn poll_sensor_answers_serial_polls() {
        let mut net = SimNet::new(SimConfig::with_seed(5));
        let probe = PollProbe::new();
        let pr = Arc::clone(&probe);
        let sensor_actor = net.add_actor("temp", ActorClass::Device, move || {
            Box::new(PollSensor::new(
                SensorId(9),
                ValueModel::Constant(21.0),
                Duration::from_millis(500),
                Arc::clone(&pr),
            ))
        });
        let replies = Arc::new(Mutex::new(Vec::new()));
        let r = Arc::clone(&replies);
        net.add_actor("poller", ActorClass::Process, move || {
            Box::new(Poller {
                target: sensor_actor,
                sensor: SensorId(9),
                period: Duration::from_secs(2),
                epoch: 0,
                replies: Arc::clone(&r),
            })
        });
        net.run_until(Time::from_secs(10));
        // Polls sent at 2,4,6,8,10; the one sent at t=10 is still on
        // the radio when the run ends, so four reach the sensor and
        // all four are answered within the horizon.
        let got = replies.lock().unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(probe.received(), 4);
        assert_eq!(probe.dropped_busy(), 0);
        for (i, ev) in got.iter().enumerate() {
            assert_eq!(ev.epoch, Some(i as u64));
            assert_eq!(ev.payload.as_scalar(), Some(21.0));
        }
    }

    #[test]
    fn concurrent_polls_silently_dropped() {
        let mut net = SimNet::new(SimConfig::with_seed(6));
        let probe = PollProbe::new();
        let pr = Arc::clone(&probe);
        let sensor_actor = net.add_actor("temp", ActorClass::Device, move || {
            Box::new(PollSensor::new(
                SensorId(9),
                ValueModel::Constant(21.0),
                Duration::from_millis(500),
                Arc::clone(&pr),
            ))
        });
        // Two pollers with 300ms period: many requests land while busy.
        for name in ["poller-a", "poller-b"] {
            let replies = Arc::new(Mutex::new(Vec::new()));
            let r = Arc::clone(&replies);
            net.add_actor(name, ActorClass::Process, move || {
                Box::new(Poller {
                    target: sensor_actor,
                    sensor: SensorId(9),
                    period: Duration::from_millis(300),
                    epoch: 0,
                    replies: Arc::clone(&r),
                })
            });
        }
        net.run_until(Time::from_secs(30));
        assert!(probe.dropped_busy() > 0, "contention must drop some polls");
        // Every request is answered or dropped, except possibly one
        // still in flight when the run ends.
        let settled = probe.answered() + probe.dropped_busy();
        assert!(
            settled == probe.received() || settled + 1 == probe.received(),
            "received {} answered {} dropped {}",
            probe.received(),
            probe.answered(),
            probe.dropped_busy()
        );
    }

    #[test]
    fn poll_sensor_ignores_wrong_sensor_and_junk() {
        let mut net = SimNet::new(SimConfig::with_seed(8));
        let probe = PollProbe::new();
        let pr = Arc::clone(&probe);
        let sensor_actor = net.add_actor("temp", ActorClass::Device, move || {
            Box::new(PollSensor::new(
                SensorId(9),
                ValueModel::Constant(21.0),
                Duration::from_millis(100),
                Arc::clone(&pr),
            ))
        });
        struct Junk {
            target: ActorId,
        }
        impl Actor for Junk {
            fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
                if matches!(event, ActorEvent::Start) {
                    // Wrong sensor id.
                    let frame = RadioFrame::PollRequest {
                        sensor: SensorId(999),
                        epoch: 0,
                    };
                    ctx.send(self.target, frame.to_payload());
                    // Corrupt bytes.
                    ctx.send(self.target, bytes::Bytes::from_static(&[0xff, 0xff]));
                }
            }
        }
        net.add_actor("junk", ActorClass::Process, move || {
            Box::new(Junk {
                target: sensor_actor,
            })
        });
        net.run_until(Time::from_secs(1));
        assert_eq!(probe.received(), 0);
        assert_eq!(probe.answered(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rivulet_net::link::ActorClass;
    use rivulet_net::sim::{SimConfig, SimNet};

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// A push sensor's emission log is always gap-free and ordered,
        /// for any schedule and horizon.
        #[test]
        fn emissions_are_gap_free(
            seed in any::<u64>(),
            period_ms in 50u64..2_000,
            horizon_s in 1u64..30,
        ) {
            let mut net = SimNet::new(SimConfig::with_seed(seed));
            let probe = EmissionProbe::new();
            let p = Arc::clone(&probe);
            net.add_actor("s", ActorClass::Device, move || {
                Box::new(PushSensor::new(
                    SensorId(1),
                    PayloadSpec::KindOnly(EventKind::Motion),
                    EmissionSchedule::Periodic(Duration::from_millis(period_ms)),
                    vec![],
                    Arc::clone(&p),
                ))
            });
            net.run_until(Time::from_secs(horizon_s));
            let log = probe.log();
            prop_assert_eq!(log.len() as u64, probe.emitted());
            for (i, (at, id)) in log.iter().enumerate() {
                prop_assert_eq!(id.seq, i as u64, "sequence gap");
                prop_assert_eq!(
                    at.as_millis(),
                    period_ms * (i as u64 + 1),
                    "period drift"
                );
            }
        }

        /// The one-outstanding-poll invariant holds under arbitrary
        /// concurrent poller counts and rates: received polls are
        /// always partitioned into answered + dropped (+ at most one in
        /// flight).
        #[test]
        fn poll_accounting_is_conserved(
            seed in any::<u64>(),
            pollers in 1usize..5,
            period_ms in 100u64..1_500,
        ) {
            let mut net = SimNet::new(SimConfig::with_seed(seed));
            let probe = PollProbe::new();
            let pr = Arc::clone(&probe);
            let sensor = net.add_actor("s", ActorClass::Device, move || {
                Box::new(PollSensor::new(
                    SensorId(1),
                    ValueModel::Constant(1.0),
                    Duration::from_millis(400),
                    Arc::clone(&pr),
                ))
            });
            struct P {
                target: rivulet_net::actor::ActorId,
                period: Duration,
            }
            impl Actor for P {
                fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
                    match event {
                        ActorEvent::Start => ctx.set_timer(self.period, 1),
                        ActorEvent::Timer { .. } => {
                            ctx.send(
                                self.target,
                                RadioFrame::PollRequest { sensor: SensorId(1), epoch: 0 }
                                    .to_payload(),
                            );
                            ctx.set_timer(self.period, 1);
                        }
                        ActorEvent::Message { .. } => {}
                    }
                }
            }
            for i in 0..pollers {
                net.add_actor(&format!("p{i}"), ActorClass::Process, move || {
                    Box::new(P { target: sensor, period: Duration::from_millis(period_ms) })
                });
            }
            net.run_until(Time::from_secs(20));
            let settled = probe.answered() + probe.dropped_busy();
            prop_assert!(
                settled == probe.received() || settled + 1 == probe.received(),
                "received {} answered {} dropped {}",
                probe.received(),
                probe.answered(),
                probe.dropped_busy()
            );
        }
    }
}
