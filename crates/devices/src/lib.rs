//! Emulated smart-home devices for the Rivulet platform.
//!
//! The paper's testbed used real Z-Wave/Zigbee sensors plus an
//! "IP-based software sensor" for controlled experiments (§8.1). This
//! crate is the software equivalent of that device layer:
//!
//! * [`frame`] — the radio frame vocabulary spoken between devices and
//!   Rivulet processes (events, poll requests/responses, actuation
//!   commands and acks).
//! * [`sensor`] — push-based sensors (door, motion, camera, …) that
//!   emit spontaneously, and poll-based sensors (temperature,
//!   luminance, …) that answer poll requests with the paper's
//!   "one outstanding poll, silently drop the rest" semantics (§4.1,
//!   Fig. 8).
//! * [`actuator`] — idempotent and `Test&Set` actuators (§5), with
//!   duplicate-actuation detection for experiments.
//! * [`fault`] — seeded per-device fault schedules (stuck-at,
//!   flapping, drift, ghost, missed, battery decay) whose every
//!   decision is a pure function of `(seed, device id, attempt)`.
//! * [`radio`] — low-power radio technology models (range, multicast)
//!   and a 2-D home floor plan for computing which processes are in
//!   range of which devices (§2.1).
//! * [`catalog`] — the off-the-shelf sensor survey of Table 3 and the
//!   Z-Wave polling characteristics used in Fig. 8.
//! * [`value`] — synthetic physical-phenomenon models (random walks,
//!   diurnal sines) so poll-based sensors report plausible readings.
//!
//! Devices are [`rivulet_net::actor::Actor`]s like everything else, so
//! they run under both the simulator and the live driver, and can be
//! crashed/recovered to emulate battery drain and plug disconnections
//! (the sensor failures of §2.1).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod actuator;
pub mod catalog;
pub mod fault;
pub mod frame;
pub mod radio;
pub mod sensor;
pub mod value;

pub use actuator::{ActuatorDevice, ActuatorProbe};
pub use fault::{DeviceFaults, FaultDecision, FaultKind, FaultPlan, FaultProbe, FaultSpec};
pub use frame::RadioFrame;
pub use radio::{FloorPlan, Position, RadioTech};
pub use sensor::{EmissionProbe, EmissionSchedule, PayloadSpec, PollProbe, PollSensor, PushSensor};
pub use value::ValueModel;
