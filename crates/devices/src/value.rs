//! Synthetic physical-phenomenon models.
//!
//! Poll-based sensors need plausible values to report. These models
//! replace the real physics of the paper's testbed home; the protocols
//! under study never inspect values, so any stationary model preserves
//! the experiments' behaviour (DESIGN.md, *Substitutions*).

use rand::rngs::StdRng;
use rand::Rng;
use rivulet_types::Time;

/// A generator of sensor readings over time.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueModel {
    /// Always the same value (useful in tests).
    Constant(f64),
    /// A bounded random walk: each sample moves by at most `step`
    /// from the previous one and is clamped to `[min, max]`.
    RandomWalk {
        /// Current value (also the starting point).
        value: f64,
        /// Maximum per-sample movement.
        step: f64,
        /// Lower clamp.
        min: f64,
        /// Upper clamp.
        max: f64,
    },
    /// A diurnal-style sine: `base + amplitude * sin(2π · t / period)`,
    /// matching slow phenomena like outdoor temperature or luminance.
    Sine {
        /// Mean value.
        base: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Period of one full cycle, in seconds.
        period_secs: f64,
    },
}

impl ValueModel {
    /// A typical indoor-temperature model: random walk around 21 °C.
    #[must_use]
    pub fn indoor_temperature() -> Self {
        ValueModel::RandomWalk {
            value: 21.0,
            step: 0.2,
            min: 15.0,
            max: 30.0,
        }
    }

    /// A typical relative-humidity model: random walk around 45 %.
    #[must_use]
    pub fn humidity() -> Self {
        ValueModel::RandomWalk {
            value: 45.0,
            step: 1.0,
            min: 20.0,
            max: 80.0,
        }
    }

    /// A luminance model: 12-hour sine between dark and bright.
    #[must_use]
    pub fn luminance() -> Self {
        ValueModel::Sine {
            base: 400.0,
            amplitude: 380.0,
            period_secs: 12.0 * 3600.0,
        }
    }

    /// A UV-index model: 24-hour sine, clamped non-negative by `sample`.
    #[must_use]
    pub fn uv_index() -> Self {
        ValueModel::Sine {
            base: 2.0,
            amplitude: 3.0,
            period_secs: 24.0 * 3600.0,
        }
    }

    /// Draws the next reading at `now`.
    pub fn sample(&mut self, now: Time, rng: &mut StdRng) -> f64 {
        match self {
            ValueModel::Constant(v) => *v,
            ValueModel::RandomWalk {
                value,
                step,
                min,
                max,
            } => {
                let delta = rng.gen_range(-*step..=*step);
                *value = (*value + delta).clamp(*min, *max);
                *value
            }
            ValueModel::Sine {
                base,
                amplitude,
                period_secs,
            } => {
                let t = now.as_secs_f64();
                let raw =
                    *base + *amplitude * (2.0 * std::f64::consts::PI * t / *period_secs).sin();
                raw.max(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut m = ValueModel::Constant(7.5);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..10 {
            assert_eq!(m.sample(Time::from_secs(i), &mut rng), 7.5);
        }
    }

    #[test]
    fn random_walk_stays_bounded_and_moves_slowly() {
        let mut m = ValueModel::RandomWalk {
            value: 21.0,
            step: 0.5,
            min: 15.0,
            max: 30.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev = 21.0;
        for i in 0..10_000 {
            let v = m.sample(Time::from_secs(i), &mut rng);
            assert!((15.0..=30.0).contains(&v), "escaped bounds: {v}");
            assert!((v - prev).abs() <= 0.5 + 1e-9, "jumped too far");
            prev = v;
        }
    }

    #[test]
    fn sine_cycles_and_clamps_at_zero() {
        let mut m = ValueModel::Sine {
            base: 0.5,
            amplitude: 2.0,
            period_secs: 100.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let peak = m.sample(Time::from_secs(25), &mut rng); // sin = 1
        let trough = m.sample(Time::from_secs(75), &mut rng); // sin = -1
        assert!((peak - 2.5).abs() < 1e-9);
        assert_eq!(trough, 0.0, "negative values clamp to zero");
    }

    #[test]
    fn presets_produce_plausible_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = ValueModel::indoor_temperature();
        let v = t.sample(Time::ZERO, &mut rng);
        assert!((15.0..=30.0).contains(&v));
        let mut h = ValueModel::humidity();
        assert!((20.0..=80.0).contains(&h.sample(Time::ZERO, &mut rng)));
        let mut l = ValueModel::luminance();
        assert!(l.sample(Time::from_secs(3 * 3600), &mut rng) > 400.0);
        let mut u = ValueModel::uv_index();
        assert!(u.sample(Time::from_secs(6 * 3600), &mut rng) >= 0.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = ValueModel::indoor_temperature();
        let mut b = ValueModel::indoor_temperature();
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        for i in 0..100 {
            assert_eq!(
                a.sample(Time::from_secs(i), &mut ra),
                b.sample(Time::from_secs(i), &mut rb)
            );
        }
    }
}
