//! Actuator devices: idempotent and Test&Set.
//!
//! The execution service may legitimately run multiple active logic
//! nodes during a partition (paper §5). Whether that is safe depends on
//! the actuator: *idempotent* actuations (light on, thermostat
//! set-point, lock) can be repeated harmlessly, while *non-idempotent*
//! ones (dispense water, brew coffee) need the `Test&Set` command to
//! suppress duplicates. [`ActuatorDevice`] implements both and records
//! every physical effect so experiments can count duplicate actuations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rivulet_net::actor::{Actor, ActorEvent, Context};
use rivulet_obs::Recorder;
use rivulet_types::wire::Wire;
use rivulet_types::{ActuationState, ActuatorId, Command, CommandId, CommandKind, RoutineId, Time};

use crate::fault::{DeviceFaults, FaultKind, FaultProbe};
use crate::frame::RadioFrame;

/// Ground truth about an actuator's behaviour, shared with the harness.
#[derive(Debug)]
pub struct ActuatorProbe {
    effects: Mutex<Vec<(Time, CommandId, ActuationState)>>,
    commands_received: AtomicU64,
    duplicates_suppressed: AtomicU64,
    staged_held: AtomicU64,
    routine_commits: AtomicU64,
    routine_aborts: AtomicU64,
    state: Mutex<ActuationState>,
}

impl ActuatorProbe {
    /// Creates a probe with the given initial state.
    #[must_use]
    pub fn new(initial: ActuationState) -> Arc<Self> {
        Arc::new(Self {
            effects: Mutex::new(Vec::new()),
            commands_received: AtomicU64::new(0),
            duplicates_suppressed: AtomicU64::new(0),
            staged_held: AtomicU64::new(0),
            routine_commits: AtomicU64::new(0),
            routine_aborts: AtomicU64::new(0),
            state: Mutex::new(initial),
        })
    }

    /// Every physical effect applied, in order.
    #[must_use]
    pub fn effects(&self) -> Vec<(Time, CommandId, ActuationState)> {
        self.effects.lock().expect("probe lock").clone()
    }

    /// Number of physical effects applied.
    #[must_use]
    pub fn effect_count(&self) -> usize {
        self.effects.lock().expect("probe lock").len()
    }

    /// Total commands that reached the actuator.
    #[must_use]
    pub fn commands_received(&self) -> u64 {
        self.commands_received.load(Ordering::SeqCst)
    }

    /// Commands refused by Test&Set mismatch or duplicate id.
    #[must_use]
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed.load(Ordering::SeqCst)
    }

    /// Routine steps accepted for staging (held, not yet fired).
    #[must_use]
    pub fn staged_held(&self) -> u64 {
        self.staged_held.load(Ordering::SeqCst)
    }

    /// Routine instances this actuator committed (fired held steps).
    #[must_use]
    pub fn routine_commits(&self) -> u64 {
        self.routine_commits.load(Ordering::SeqCst)
    }

    /// Routine instances whose held steps were discarded by an abort.
    #[must_use]
    pub fn routine_aborts(&self) -> u64 {
        self.routine_aborts.load(Ordering::SeqCst)
    }

    /// The actuator's current state.
    #[must_use]
    pub fn state(&self) -> ActuationState {
        *self.state.lock().expect("probe lock")
    }
}

/// An emulated physical actuator.
///
/// Commands arrive as [`RadioFrame::Actuate`]; every command is
/// acknowledged with [`RadioFrame::ActuateAck`] reporting whether it
/// was applied and the resulting state. Exactly-once per command id is
/// enforced (hardware debounces retransmissions), but *distinct*
/// commands with the same effect are deliberately applied again — that
/// duplication hazard is the subject of the paper's idempotence
/// discussion.
#[derive(Debug)]
pub struct ActuatorDevice {
    actuator: ActuatorId,
    state: ActuationState,
    probe: Arc<ActuatorProbe>,
    applied_ids: Vec<CommandId>,
    /// Commands withheld for staged routine steps, fired in step order
    /// on [`RadioFrame::CommitRoutine`] or discarded on
    /// [`RadioFrame::AbortRoutine`].
    staged: Vec<(RoutineId, u64, u32, Command)>,
    /// Instances already committed here — repeated commit frames (e.g.
    /// re-sent after coordinator recovery) apply nothing.
    committed: Vec<(RoutineId, u64)>,
    /// Seeded fault schedule, if a [`crate::fault::FaultPlan`] names
    /// this actuator. `Missed` drops commands before they are seen;
    /// `StuckAt` acks them without applying.
    faults: Option<DeviceFaults>,
    /// Ground-truth record of injected faults.
    fault_probe: Option<Arc<FaultProbe>>,
    /// `fault.*` counters (disabled recorder by default).
    obs: Recorder,
}

impl ActuatorDevice {
    /// Creates an actuator in `initial` state.
    #[must_use]
    pub fn new(actuator: ActuatorId, initial: ActuationState, probe: Arc<ActuatorProbe>) -> Self {
        Self {
            actuator,
            state: initial,
            probe,
            applied_ids: Vec::new(),
            staged: Vec::new(),
            committed: Vec::new(),
            faults: None,
            fault_probe: None,
            obs: Recorder::new(),
        }
    }

    /// The actuator's platform identity.
    #[must_use]
    pub fn actuator_id(&self) -> ActuatorId {
        self.actuator
    }

    /// Attaches a seeded fault schedule (see [`crate::fault`]).
    #[must_use]
    pub fn with_faults(mut self, faults: Option<DeviceFaults>) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a ground-truth fault probe.
    #[must_use]
    pub fn with_fault_probe(mut self, probe: Arc<FaultProbe>) -> Self {
        self.fault_probe = Some(probe);
        self
    }

    /// Attaches an obs recorder for `fault.*` counters.
    #[must_use]
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    fn states_equal(a: ActuationState, b: ActuationState) -> bool {
        match (a, b) {
            (ActuationState::Switch(x), ActuationState::Switch(y)) => x == y,
            (ActuationState::Level(x), ActuationState::Level(y)) => (x - y).abs() < f64::EPSILON,
            (ActuationState::Pulse(x), ActuationState::Pulse(y)) => x == y,
            _ => false,
        }
    }

    /// Applies `cmd` to the physical state, honouring exactly-once per
    /// command id and Test&Set. Returns whether it took effect.
    fn apply_locally(&mut self, now: Time, cmd: &Command) -> bool {
        if self.applied_ids.contains(&cmd.id) {
            self.probe
                .duplicates_suppressed
                .fetch_add(1, Ordering::SeqCst);
            return false;
        }
        match cmd.kind {
            CommandKind::Set(desired) => {
                self.state = desired;
                self.applied_ids.push(cmd.id);
                self.probe
                    .effects
                    .lock()
                    .expect("probe lock")
                    .push((now, cmd.id, desired));
                *self.probe.state.lock().expect("probe lock") = desired;
                true
            }
            CommandKind::TestAndSet { expected, desired } => {
                if Self::states_equal(self.state, expected) {
                    self.state = desired;
                    self.applied_ids.push(cmd.id);
                    self.probe
                        .effects
                        .lock()
                        .expect("probe lock")
                        .push((now, cmd.id, desired));
                    *self.probe.state.lock().expect("probe lock") = desired;
                    true
                } else {
                    self.probe
                        .duplicates_suppressed
                        .fetch_add(1, Ordering::SeqCst);
                    false
                }
            }
            // Future command kinds: refuse rather than guess.
            _ => false,
        }
    }

    fn on_actuate(
        &mut self,
        ctx: &mut Context<'_>,
        from: rivulet_net::actor::ActorId,
        cmd: &Command,
    ) {
        let decision = match self.faults.as_mut() {
            Some(f) => f.decide_next(),
            None => crate::fault::FaultDecision::default(),
        };
        if decision.suppress.is_some() {
            // The command is lost at the radio: no ack, no state
            // change, the issuer sees a timeout.
            self.obs.inc("fault.actuation_dropped");
            if let Some(p) = &self.fault_probe {
                p.record_command_dropped();
            }
            return;
        }
        self.probe.commands_received.fetch_add(1, Ordering::SeqCst);
        let stuck = decision.corrupt == Some(FaultKind::StuckAt);

        let already_applied = self.applied_ids.contains(&cmd.id);
        let applied = if stuck && !already_applied {
            // Mechanically stuck: the actuator hears the command but
            // cannot move. It honestly acks `applied = false` with its
            // real (unchanged) state.
            self.obs.inc("fault.actuation_refused");
            if let Some(p) = &self.fault_probe {
                p.record_command_refused();
            }
            false
        } else {
            self.apply_locally(ctx.now(), cmd)
        };
        let ack = RadioFrame::ActuateAck {
            command: cmd.id,
            applied,
            state: self.state,
        };
        ctx.send(from, ack.to_payload());
    }

    /// Holds a routine step for later commit and acks the staging.
    ///
    /// Fault semantics mirror plain actuation, but shifted to the
    /// staging handshake so a faulty device fails the routine *before*
    /// anything fires: a `Missed` fault swallows the stage frame (no
    /// ack — the coordinator times out and aborts), a `StuckAt` fault
    /// acks `accepted = false` (instant abort). Commit and abort frames
    /// are then processed unconditionally, preserving all-or-nothing.
    fn on_stage(
        &mut self,
        ctx: &mut Context<'_>,
        from: rivulet_net::actor::ActorId,
        routine: RoutineId,
        instance: u64,
        step: u32,
        command: Command,
    ) {
        if command.actuator != self.actuator {
            return;
        }
        let decision = match self.faults.as_mut() {
            Some(f) => f.decide_next(),
            None => crate::fault::FaultDecision::default(),
        };
        if decision.suppress.is_some() {
            self.obs.inc("fault.stage_dropped");
            if let Some(p) = &self.fault_probe {
                p.record_command_dropped();
            }
            return;
        }
        let stuck = decision.corrupt == Some(FaultKind::StuckAt);
        let accepted = !stuck;
        if stuck {
            self.obs.inc("fault.stage_refused");
            if let Some(p) = &self.fault_probe {
                p.record_command_refused();
            }
        } else if self.committed.contains(&(routine, instance)) {
            // A retransmitted stage for an instance that already
            // committed here: the effect happened, just re-ack.
        } else {
            // Replace rather than duplicate on retransmission.
            self.staged
                .retain(|(r, i, s, _)| !(*r == routine && *i == instance && *s == step));
            self.staged.push((routine, instance, step, command));
            self.probe.staged_held.fetch_add(1, Ordering::SeqCst);
        }
        let ack = RadioFrame::StageAck {
            routine,
            instance,
            step,
            accepted,
        };
        ctx.send(from, ack.to_payload());
    }

    /// Fires every held step of `(routine, instance)` in step order.
    fn on_commit(&mut self, now: Time, routine: RoutineId, instance: u64) {
        if self.committed.contains(&(routine, instance)) {
            return;
        }
        let mut held: Vec<(u32, Command)> = Vec::new();
        self.staged.retain(|(r, i, s, c)| {
            if *r == routine && *i == instance {
                held.push((*s, c.clone()));
                false
            } else {
                true
            }
        });
        held.sort_by_key(|(s, _)| *s);
        for (_, cmd) in &held {
            let _ = self.apply_locally(now, cmd);
        }
        self.committed.push((routine, instance));
        if !held.is_empty() {
            self.probe.routine_commits.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Discards every held step of `(routine, instance)` unfired.
    fn on_abort(&mut self, routine: RoutineId, instance: u64) {
        let before = self.staged.len();
        self.staged
            .retain(|(r, i, _, _)| !(*r == routine && *i == instance));
        if self.staged.len() != before {
            self.probe.routine_aborts.fetch_add(1, Ordering::SeqCst);
        }
    }
}

impl Actor for ActuatorDevice {
    fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
        let ActorEvent::Message { from, payload } = event else {
            return;
        };
        let Ok(frame) = RadioFrame::from_bytes(&payload) else {
            return;
        };
        match frame {
            RadioFrame::Actuate(cmd) if cmd.actuator == self.actuator => {
                self.on_actuate(ctx, from, &cmd);
            }
            RadioFrame::Stage {
                routine,
                instance,
                step,
                command,
            } => self.on_stage(ctx, from, routine, instance, step, command),
            RadioFrame::CommitRoutine { routine, instance } => {
                self.on_commit(ctx.now(), routine, instance);
            }
            RadioFrame::AbortRoutine { routine, instance } => self.on_abort(routine, instance),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_net::actor::{ActorId, Context};
    use rivulet_net::link::ActorClass;
    use rivulet_net::sim::{SimConfig, SimNet};
    use rivulet_types::{Command, OperatorId, ProcessId};

    /// Issues a scripted series of commands and records acks.
    struct Issuer {
        target: ActorId,
        script: Vec<Command>,
        acks: Arc<Mutex<Vec<(CommandId, bool, ActuationState)>>>,
        idx: usize,
    }

    impl Actor for Issuer {
        fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
            match event {
                ActorEvent::Start => ctx.set_timer(rivulet_types::Duration::from_millis(10), 1),
                ActorEvent::Timer { .. } => {
                    if let Some(cmd) = self.script.get(self.idx) {
                        self.idx += 1;
                        ctx.send(self.target, RadioFrame::Actuate(cmd.clone()).to_payload());
                        ctx.set_timer(rivulet_types::Duration::from_millis(10), 1);
                    }
                }
                ActorEvent::Message { payload, .. } => {
                    if let Ok(RadioFrame::ActuateAck {
                        command,
                        applied,
                        state,
                    }) = RadioFrame::from_bytes(&payload)
                    {
                        self.acks
                            .lock()
                            .expect("lock")
                            .push((command, applied, state));
                    }
                }
            }
        }
    }

    fn cmd(seq: u64, kind: CommandKind) -> Command {
        Command::new(
            CommandId::new(ProcessId(0), OperatorId(0), seq),
            ActuatorId(1),
            kind,
            Time::ZERO,
        )
    }

    fn run_script(
        script: Vec<Command>,
    ) -> (Arc<ActuatorProbe>, Vec<(CommandId, bool, ActuationState)>) {
        let mut net = SimNet::new(SimConfig::with_seed(1));
        let probe = ActuatorProbe::new(ActuationState::Switch(false));
        let p = Arc::clone(&probe);
        let dev = net.add_actor("light", ActorClass::Device, move || {
            Box::new(ActuatorDevice::new(
                ActuatorId(1),
                ActuationState::Switch(false),
                Arc::clone(&p),
            ))
        });
        let acks = Arc::new(Mutex::new(Vec::new()));
        let a = Arc::clone(&acks);
        let s = script.clone();
        net.add_actor("issuer", ActorClass::Process, move || {
            Box::new(Issuer {
                target: dev,
                script: s.clone(),
                acks: Arc::clone(&a),
                idx: 0,
            })
        });
        net.run_until(Time::from_secs(5));
        let collected = acks.lock().unwrap().clone();
        (probe, collected)
    }

    #[test]
    fn set_commands_apply_and_ack() {
        let (probe, acks) = run_script(vec![
            cmd(0, CommandKind::Set(ActuationState::Switch(true))),
            cmd(1, CommandKind::Set(ActuationState::Switch(false))),
        ]);
        assert_eq!(probe.effect_count(), 2);
        assert_eq!(probe.state(), ActuationState::Switch(false));
        assert_eq!(acks.len(), 2);
        assert!(acks.iter().all(|(_, applied, _)| *applied));
    }

    #[test]
    fn repeated_set_is_reapplied_distinct_ids() {
        // Idempotent actuator: issuing "on" twice with distinct command
        // ids re-applies harmlessly — both count as effects.
        let (probe, _) = run_script(vec![
            cmd(0, CommandKind::Set(ActuationState::Switch(true))),
            cmd(1, CommandKind::Set(ActuationState::Switch(true))),
        ]);
        assert_eq!(probe.effect_count(), 2);
        assert_eq!(probe.duplicates_suppressed(), 0);
    }

    #[test]
    fn same_command_id_debounced() {
        let c = cmd(0, CommandKind::Set(ActuationState::Switch(true)));
        let (probe, acks) = run_script(vec![c.clone(), c]);
        assert_eq!(probe.effect_count(), 1);
        assert_eq!(probe.duplicates_suppressed(), 1);
        assert!(acks[0].1);
        assert!(!acks[1].1, "second identical command must be refused");
    }

    #[test]
    fn test_and_set_suppresses_concurrent_duplicates() {
        // Two logic nodes both try to dispense: pulse 0 -> 1. The
        // second must fail the expectation check (§5).
        let (probe, acks) = run_script(vec![
            Command::new(
                CommandId::new(ProcessId(1), OperatorId(0), 0),
                ActuatorId(1),
                CommandKind::TestAndSet {
                    expected: ActuationState::Switch(false),
                    desired: ActuationState::Switch(true),
                },
                Time::ZERO,
            ),
            Command::new(
                CommandId::new(ProcessId(2), OperatorId(0), 0),
                ActuatorId(1),
                CommandKind::TestAndSet {
                    expected: ActuationState::Switch(false),
                    desired: ActuationState::Switch(true),
                },
                Time::ZERO,
            ),
        ]);
        assert_eq!(probe.effect_count(), 1, "exactly one dispense");
        assert_eq!(probe.duplicates_suppressed(), 1);
        assert!(acks[0].1);
        assert!(!acks[1].1);
        assert_eq!(
            acks[1].2,
            ActuationState::Switch(true),
            "ack reports real state"
        );
    }

    #[test]
    fn wrong_actuator_ignored() {
        let mut wrong = cmd(0, CommandKind::Set(ActuationState::Switch(true)));
        wrong.actuator = ActuatorId(99);
        let (probe, acks) = run_script(vec![wrong]);
        assert_eq!(probe.commands_received(), 0);
        assert_eq!(probe.effect_count(), 0);
        assert!(acks.is_empty());
    }

    /// A captured `StageAck`: `(routine, instance, step, accepted)`.
    type StageAckRec = (RoutineId, u64, u32, bool);

    /// Sends a scripted series of raw frames, 10 ms apart.
    struct FrameIssuer {
        target: ActorId,
        script: Vec<RadioFrame>,
        stage_acks: Arc<Mutex<Vec<StageAckRec>>>,
        idx: usize,
    }

    impl Actor for FrameIssuer {
        fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
            match event {
                ActorEvent::Start => ctx.set_timer(rivulet_types::Duration::from_millis(10), 1),
                ActorEvent::Timer { .. } => {
                    if let Some(frame) = self.script.get(self.idx) {
                        self.idx += 1;
                        ctx.send(self.target, frame.to_payload());
                        ctx.set_timer(rivulet_types::Duration::from_millis(10), 1);
                    }
                }
                ActorEvent::Message { payload, .. } => {
                    if let Ok(RadioFrame::StageAck {
                        routine,
                        instance,
                        step,
                        accepted,
                    }) = RadioFrame::from_bytes(&payload)
                    {
                        self.stage_acks
                            .lock()
                            .expect("lock")
                            .push((routine, instance, step, accepted));
                    }
                }
            }
        }
    }

    fn run_frames(script: Vec<RadioFrame>) -> (Arc<ActuatorProbe>, Vec<StageAckRec>) {
        let mut net = SimNet::new(SimConfig::with_seed(1));
        let probe = ActuatorProbe::new(ActuationState::Switch(false));
        let p = Arc::clone(&probe);
        let dev = net.add_actor("light", ActorClass::Device, move || {
            Box::new(ActuatorDevice::new(
                ActuatorId(1),
                ActuationState::Switch(false),
                Arc::clone(&p),
            ))
        });
        let acks = Arc::new(Mutex::new(Vec::new()));
        let a = Arc::clone(&acks);
        let s = script.clone();
        net.add_actor("coordinator", ActorClass::Process, move || {
            Box::new(FrameIssuer {
                target: dev,
                script: s.clone(),
                stage_acks: Arc::clone(&a),
                idx: 0,
            })
        });
        net.run_until(Time::from_secs(5));
        let collected = acks.lock().unwrap().clone();
        (probe, collected)
    }

    fn stage(instance: u64, step: u32, seq: u64, state: ActuationState) -> RadioFrame {
        RadioFrame::Stage {
            routine: RoutineId(1),
            instance,
            step,
            command: cmd(seq, CommandKind::Set(state)),
        }
    }

    #[test]
    fn staged_commands_withheld_until_commit() {
        let (probe, acks) = run_frames(vec![
            stage(0, 0, 10, ActuationState::Switch(true)),
            stage(0, 1, 11, ActuationState::Switch(false)),
        ]);
        assert_eq!(
            acks,
            vec![(RoutineId(1), 0, 0, true), (RoutineId(1), 0, 1, true)]
        );
        assert_eq!(probe.effect_count(), 0, "nothing fires before commit");
        assert_eq!(probe.staged_held(), 2);
    }

    #[test]
    fn commit_fires_held_steps_in_step_order() {
        // Stage steps out of order; commit must apply them sorted.
        let (probe, _) = run_frames(vec![
            stage(0, 1, 11, ActuationState::Level(21.0)),
            stage(0, 0, 10, ActuationState::Level(19.0)),
            RadioFrame::CommitRoutine {
                routine: RoutineId(1),
                instance: 0,
            },
        ]);
        assert_eq!(probe.effect_count(), 2);
        assert_eq!(
            probe.state(),
            ActuationState::Level(21.0),
            "step 1 fires last"
        );
        assert_eq!(probe.routine_commits(), 1);
    }

    #[test]
    fn commit_is_idempotent() {
        let (probe, _) = run_frames(vec![
            stage(0, 0, 10, ActuationState::Switch(true)),
            RadioFrame::CommitRoutine {
                routine: RoutineId(1),
                instance: 0,
            },
            RadioFrame::CommitRoutine {
                routine: RoutineId(1),
                instance: 0,
            },
        ]);
        assert_eq!(probe.effect_count(), 1, "re-sent commit applies nothing");
        assert_eq!(probe.routine_commits(), 1);
    }

    #[test]
    fn abort_discards_without_firing() {
        let (probe, _) = run_frames(vec![
            stage(0, 0, 10, ActuationState::Switch(true)),
            stage(0, 1, 11, ActuationState::Switch(false)),
            RadioFrame::AbortRoutine {
                routine: RoutineId(1),
                instance: 0,
            },
            // A late commit for the aborted instance finds nothing held.
            RadioFrame::CommitRoutine {
                routine: RoutineId(1),
                instance: 0,
            },
        ]);
        assert_eq!(probe.effect_count(), 0);
        assert_eq!(probe.routine_aborts(), 1);
        assert_eq!(probe.routine_commits(), 0);
    }

    #[test]
    fn instances_are_isolated() {
        // Committing instance 1 must not fire instance 0's held steps.
        let (probe, _) = run_frames(vec![
            stage(0, 0, 10, ActuationState::Switch(true)),
            stage(1, 0, 20, ActuationState::Level(25.0)),
            RadioFrame::CommitRoutine {
                routine: RoutineId(1),
                instance: 1,
            },
        ]);
        assert_eq!(probe.effect_count(), 1);
        assert_eq!(probe.state(), ActuationState::Level(25.0));
    }

    #[test]
    fn level_and_pulse_states() {
        let (probe, _) = run_script(vec![
            cmd(0, CommandKind::Set(ActuationState::Level(19.5))),
            cmd(
                1,
                CommandKind::TestAndSet {
                    expected: ActuationState::Level(19.5),
                    desired: ActuationState::Level(21.0),
                },
            ),
            cmd(
                2,
                CommandKind::TestAndSet {
                    expected: ActuationState::Level(19.5), // stale expectation
                    desired: ActuationState::Level(25.0),
                },
            ),
        ]);
        assert_eq!(probe.state(), ActuationState::Level(21.0));
        assert_eq!(probe.effect_count(), 2);
        assert_eq!(probe.duplicates_suppressed(), 1);
    }
}
