//! Actuator devices: idempotent and Test&Set.
//!
//! The execution service may legitimately run multiple active logic
//! nodes during a partition (paper §5). Whether that is safe depends on
//! the actuator: *idempotent* actuations (light on, thermostat
//! set-point, lock) can be repeated harmlessly, while *non-idempotent*
//! ones (dispense water, brew coffee) need the `Test&Set` command to
//! suppress duplicates. [`ActuatorDevice`] implements both and records
//! every physical effect so experiments can count duplicate actuations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rivulet_net::actor::{Actor, ActorEvent, Context};
use rivulet_obs::Recorder;
use rivulet_types::wire::Wire;
use rivulet_types::{ActuationState, ActuatorId, CommandId, CommandKind, Time};

use crate::fault::{DeviceFaults, FaultKind, FaultProbe};
use crate::frame::RadioFrame;

/// Ground truth about an actuator's behaviour, shared with the harness.
#[derive(Debug)]
pub struct ActuatorProbe {
    effects: Mutex<Vec<(Time, CommandId, ActuationState)>>,
    commands_received: AtomicU64,
    duplicates_suppressed: AtomicU64,
    state: Mutex<ActuationState>,
}

impl ActuatorProbe {
    /// Creates a probe with the given initial state.
    #[must_use]
    pub fn new(initial: ActuationState) -> Arc<Self> {
        Arc::new(Self {
            effects: Mutex::new(Vec::new()),
            commands_received: AtomicU64::new(0),
            duplicates_suppressed: AtomicU64::new(0),
            state: Mutex::new(initial),
        })
    }

    /// Every physical effect applied, in order.
    #[must_use]
    pub fn effects(&self) -> Vec<(Time, CommandId, ActuationState)> {
        self.effects.lock().expect("probe lock").clone()
    }

    /// Number of physical effects applied.
    #[must_use]
    pub fn effect_count(&self) -> usize {
        self.effects.lock().expect("probe lock").len()
    }

    /// Total commands that reached the actuator.
    #[must_use]
    pub fn commands_received(&self) -> u64 {
        self.commands_received.load(Ordering::SeqCst)
    }

    /// Commands refused by Test&Set mismatch or duplicate id.
    #[must_use]
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed.load(Ordering::SeqCst)
    }

    /// The actuator's current state.
    #[must_use]
    pub fn state(&self) -> ActuationState {
        *self.state.lock().expect("probe lock")
    }
}

/// An emulated physical actuator.
///
/// Commands arrive as [`RadioFrame::Actuate`]; every command is
/// acknowledged with [`RadioFrame::ActuateAck`] reporting whether it
/// was applied and the resulting state. Exactly-once per command id is
/// enforced (hardware debounces retransmissions), but *distinct*
/// commands with the same effect are deliberately applied again — that
/// duplication hazard is the subject of the paper's idempotence
/// discussion.
#[derive(Debug)]
pub struct ActuatorDevice {
    actuator: ActuatorId,
    state: ActuationState,
    probe: Arc<ActuatorProbe>,
    applied_ids: Vec<CommandId>,
    /// Seeded fault schedule, if a [`crate::fault::FaultPlan`] names
    /// this actuator. `Missed` drops commands before they are seen;
    /// `StuckAt` acks them without applying.
    faults: Option<DeviceFaults>,
    /// Ground-truth record of injected faults.
    fault_probe: Option<Arc<FaultProbe>>,
    /// `fault.*` counters (disabled recorder by default).
    obs: Recorder,
}

impl ActuatorDevice {
    /// Creates an actuator in `initial` state.
    #[must_use]
    pub fn new(actuator: ActuatorId, initial: ActuationState, probe: Arc<ActuatorProbe>) -> Self {
        Self {
            actuator,
            state: initial,
            probe,
            applied_ids: Vec::new(),
            faults: None,
            fault_probe: None,
            obs: Recorder::new(),
        }
    }

    /// The actuator's platform identity.
    #[must_use]
    pub fn actuator_id(&self) -> ActuatorId {
        self.actuator
    }

    /// Attaches a seeded fault schedule (see [`crate::fault`]).
    #[must_use]
    pub fn with_faults(mut self, faults: Option<DeviceFaults>) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a ground-truth fault probe.
    #[must_use]
    pub fn with_fault_probe(mut self, probe: Arc<FaultProbe>) -> Self {
        self.fault_probe = Some(probe);
        self
    }

    /// Attaches an obs recorder for `fault.*` counters.
    #[must_use]
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    fn states_equal(a: ActuationState, b: ActuationState) -> bool {
        match (a, b) {
            (ActuationState::Switch(x), ActuationState::Switch(y)) => x == y,
            (ActuationState::Level(x), ActuationState::Level(y)) => (x - y).abs() < f64::EPSILON,
            (ActuationState::Pulse(x), ActuationState::Pulse(y)) => x == y,
            _ => false,
        }
    }
}

impl Actor for ActuatorDevice {
    fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
        let ActorEvent::Message { from, payload } = event else {
            return;
        };
        let Ok(RadioFrame::Actuate(cmd)) = RadioFrame::from_bytes(&payload) else {
            return;
        };
        if cmd.actuator != self.actuator {
            return;
        }
        let decision = match self.faults.as_mut() {
            Some(f) => f.decide_next(),
            None => crate::fault::FaultDecision::default(),
        };
        if decision.suppress.is_some() {
            // The command is lost at the radio: no ack, no state
            // change, the issuer sees a timeout.
            self.obs.inc("fault.actuation_dropped");
            if let Some(p) = &self.fault_probe {
                p.record_command_dropped();
            }
            return;
        }
        self.probe.commands_received.fetch_add(1, Ordering::SeqCst);
        let stuck = decision.corrupt == Some(FaultKind::StuckAt);

        let already_applied = self.applied_ids.contains(&cmd.id);
        let applied = if stuck && !already_applied {
            // Mechanically stuck: the actuator hears the command but
            // cannot move. It honestly acks `applied = false` with its
            // real (unchanged) state.
            self.obs.inc("fault.actuation_refused");
            if let Some(p) = &self.fault_probe {
                p.record_command_refused();
            }
            false
        } else if already_applied {
            self.probe
                .duplicates_suppressed
                .fetch_add(1, Ordering::SeqCst);
            false
        } else {
            match cmd.kind {
                CommandKind::Set(desired) => {
                    self.state = desired;
                    self.applied_ids.push(cmd.id);
                    self.probe.effects.lock().expect("probe lock").push((
                        ctx.now(),
                        cmd.id,
                        desired,
                    ));
                    *self.probe.state.lock().expect("probe lock") = desired;
                    true
                }
                CommandKind::TestAndSet { expected, desired } => {
                    if Self::states_equal(self.state, expected) {
                        self.state = desired;
                        self.applied_ids.push(cmd.id);
                        self.probe.effects.lock().expect("probe lock").push((
                            ctx.now(),
                            cmd.id,
                            desired,
                        ));
                        *self.probe.state.lock().expect("probe lock") = desired;
                        true
                    } else {
                        self.probe
                            .duplicates_suppressed
                            .fetch_add(1, Ordering::SeqCst);
                        false
                    }
                }
                // Future command kinds: refuse rather than guess.
                _ => false,
            }
        };
        let ack = RadioFrame::ActuateAck {
            command: cmd.id,
            applied,
            state: self.state,
        };
        ctx.send(from, ack.to_payload());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_net::actor::{ActorId, Context};
    use rivulet_net::link::ActorClass;
    use rivulet_net::sim::{SimConfig, SimNet};
    use rivulet_types::{Command, OperatorId, ProcessId};

    /// Issues a scripted series of commands and records acks.
    struct Issuer {
        target: ActorId,
        script: Vec<Command>,
        acks: Arc<Mutex<Vec<(CommandId, bool, ActuationState)>>>,
        idx: usize,
    }

    impl Actor for Issuer {
        fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
            match event {
                ActorEvent::Start => ctx.set_timer(rivulet_types::Duration::from_millis(10), 1),
                ActorEvent::Timer { .. } => {
                    if let Some(cmd) = self.script.get(self.idx) {
                        self.idx += 1;
                        ctx.send(self.target, RadioFrame::Actuate(cmd.clone()).to_payload());
                        ctx.set_timer(rivulet_types::Duration::from_millis(10), 1);
                    }
                }
                ActorEvent::Message { payload, .. } => {
                    if let Ok(RadioFrame::ActuateAck {
                        command,
                        applied,
                        state,
                    }) = RadioFrame::from_bytes(&payload)
                    {
                        self.acks
                            .lock()
                            .expect("lock")
                            .push((command, applied, state));
                    }
                }
            }
        }
    }

    fn cmd(seq: u64, kind: CommandKind) -> Command {
        Command::new(
            CommandId::new(ProcessId(0), OperatorId(0), seq),
            ActuatorId(1),
            kind,
            Time::ZERO,
        )
    }

    fn run_script(
        script: Vec<Command>,
    ) -> (Arc<ActuatorProbe>, Vec<(CommandId, bool, ActuationState)>) {
        let mut net = SimNet::new(SimConfig::with_seed(1));
        let probe = ActuatorProbe::new(ActuationState::Switch(false));
        let p = Arc::clone(&probe);
        let dev = net.add_actor("light", ActorClass::Device, move || {
            Box::new(ActuatorDevice::new(
                ActuatorId(1),
                ActuationState::Switch(false),
                Arc::clone(&p),
            ))
        });
        let acks = Arc::new(Mutex::new(Vec::new()));
        let a = Arc::clone(&acks);
        let s = script.clone();
        net.add_actor("issuer", ActorClass::Process, move || {
            Box::new(Issuer {
                target: dev,
                script: s.clone(),
                acks: Arc::clone(&a),
                idx: 0,
            })
        });
        net.run_until(Time::from_secs(5));
        let collected = acks.lock().unwrap().clone();
        (probe, collected)
    }

    #[test]
    fn set_commands_apply_and_ack() {
        let (probe, acks) = run_script(vec![
            cmd(0, CommandKind::Set(ActuationState::Switch(true))),
            cmd(1, CommandKind::Set(ActuationState::Switch(false))),
        ]);
        assert_eq!(probe.effect_count(), 2);
        assert_eq!(probe.state(), ActuationState::Switch(false));
        assert_eq!(acks.len(), 2);
        assert!(acks.iter().all(|(_, applied, _)| *applied));
    }

    #[test]
    fn repeated_set_is_reapplied_distinct_ids() {
        // Idempotent actuator: issuing "on" twice with distinct command
        // ids re-applies harmlessly — both count as effects.
        let (probe, _) = run_script(vec![
            cmd(0, CommandKind::Set(ActuationState::Switch(true))),
            cmd(1, CommandKind::Set(ActuationState::Switch(true))),
        ]);
        assert_eq!(probe.effect_count(), 2);
        assert_eq!(probe.duplicates_suppressed(), 0);
    }

    #[test]
    fn same_command_id_debounced() {
        let c = cmd(0, CommandKind::Set(ActuationState::Switch(true)));
        let (probe, acks) = run_script(vec![c.clone(), c]);
        assert_eq!(probe.effect_count(), 1);
        assert_eq!(probe.duplicates_suppressed(), 1);
        assert!(acks[0].1);
        assert!(!acks[1].1, "second identical command must be refused");
    }

    #[test]
    fn test_and_set_suppresses_concurrent_duplicates() {
        // Two logic nodes both try to dispense: pulse 0 -> 1. The
        // second must fail the expectation check (§5).
        let (probe, acks) = run_script(vec![
            Command::new(
                CommandId::new(ProcessId(1), OperatorId(0), 0),
                ActuatorId(1),
                CommandKind::TestAndSet {
                    expected: ActuationState::Switch(false),
                    desired: ActuationState::Switch(true),
                },
                Time::ZERO,
            ),
            Command::new(
                CommandId::new(ProcessId(2), OperatorId(0), 0),
                ActuatorId(1),
                CommandKind::TestAndSet {
                    expected: ActuationState::Switch(false),
                    desired: ActuationState::Switch(true),
                },
                Time::ZERO,
            ),
        ]);
        assert_eq!(probe.effect_count(), 1, "exactly one dispense");
        assert_eq!(probe.duplicates_suppressed(), 1);
        assert!(acks[0].1);
        assert!(!acks[1].1);
        assert_eq!(
            acks[1].2,
            ActuationState::Switch(true),
            "ack reports real state"
        );
    }

    #[test]
    fn wrong_actuator_ignored() {
        let mut wrong = cmd(0, CommandKind::Set(ActuationState::Switch(true)));
        wrong.actuator = ActuatorId(99);
        let (probe, acks) = run_script(vec![wrong]);
        assert_eq!(probe.commands_received(), 0);
        assert_eq!(probe.effect_count(), 0);
        assert!(acks.is_empty());
    }

    #[test]
    fn level_and_pulse_states() {
        let (probe, _) = run_script(vec![
            cmd(0, CommandKind::Set(ActuationState::Level(19.5))),
            cmd(
                1,
                CommandKind::TestAndSet {
                    expected: ActuationState::Level(19.5),
                    desired: ActuationState::Level(21.0),
                },
            ),
            cmd(
                2,
                CommandKind::TestAndSet {
                    expected: ActuationState::Level(19.5), // stale expectation
                    desired: ActuationState::Level(25.0),
                },
            ),
        ]);
        assert_eq!(probe.state(), ActuationState::Level(21.0));
        assert_eq!(probe.effect_count(), 2);
        assert_eq!(probe.duplicates_suppressed(), 1);
    }
}
