//! Seeded device-fault injection.
//!
//! The paper's fault matrix covers process crashes and network
//! partitions; real smart-home deployments are dominated by *device*
//! faults (IoTRepair's taxonomy): stuck-at sensors, flapping, value
//! drift, ghost and missed events, and battery decay. A [`FaultPlan`]
//! declares, per device, which of those faults occur and how often —
//! and expands them into a schedule that is a **pure function of
//! `(plan seed, device id, attempt index)`**. The expansion never
//! touches the driver RNG, so:
//!
//! * attaching a plan with rate 0 leaves a run bit-identical to one
//!   with no plan at all (toggle invariance),
//! * any single device's schedule can be re-derived standalone and
//!   byte-compared against what the in-home run did, and
//! * fault timelines are independent of device declaration order.
//!
//! Fault decisions are keyed on the device's *attempt index* (its
//! n-th emission attempt / poll answer / command arrival), not on
//! virtual time, so the same plan drives the simulator and the live
//! driver identically.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rivulet_types::{ActuatorId, EventId, SensorId};

/// The device-fault taxonomy (IoTRepair, PAPERS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The sensor's reading freezes at its value on window entry.
    StuckAt,
    /// The reading alternates between two extremes around the value
    /// seen at window entry.
    Flapping,
    /// An additive bias grows with every reading inside the window.
    Drift,
    /// Spurious extra events that correspond to no physical
    /// phenomenon.
    Ghost,
    /// Scheduled emissions (or poll answers) silently vanish.
    Missed,
    /// Battery decay: the probability of a successful emission decays
    /// exponentially with the attempt count.
    BatteryDecay,
}

impl FaultKind {
    /// All kinds, in a fixed order (for sweeps and tables).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::StuckAt,
        FaultKind::Flapping,
        FaultKind::Drift,
        FaultKind::Ghost,
        FaultKind::Missed,
        FaultKind::BatteryDecay,
    ];

    /// Stable lowercase name (manifest axes, tables, obs labels).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::StuckAt => "stuck",
            FaultKind::Flapping => "flapping",
            FaultKind::Drift => "drift",
            FaultKind::Ghost => "ghost",
            FaultKind::Missed => "missed",
            FaultKind::BatteryDecay => "battery",
        }
    }

    /// Parses [`FaultKind::name`] output back into a kind.
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// Is this kind a *value* corruption (windowed), as opposed to an
    /// event-presence fault (per-attempt)?
    #[must_use]
    pub fn is_value_fault(self) -> bool {
        matches!(
            self,
            FaultKind::StuckAt | FaultKind::Flapping | FaultKind::Drift
        )
    }

    /// The `fault.*` obs counter bumped when this kind fires.
    #[must_use]
    pub fn counter_name(self) -> &'static str {
        match self {
            FaultKind::StuckAt => "fault.stuck",
            FaultKind::Flapping => "fault.flapping",
            FaultKind::Drift => "fault.drift",
            FaultKind::Ghost => "fault.ghost",
            FaultKind::Missed => "fault.missed",
            FaultKind::BatteryDecay => "fault.battery",
        }
    }

    fn stream_tag(self) -> u64 {
        match self {
            FaultKind::StuckAt => 1,
            FaultKind::Flapping => 2,
            FaultKind::Drift => 3,
            FaultKind::Ghost => 4,
            FaultKind::Missed => 5,
            FaultKind::BatteryDecay => 6,
        }
    }
}

/// One fault a device suffers.
///
/// `rate` means: for value faults (stuck/flapping/drift), the
/// probability that each *window* of [`FaultSpec::window`] consecutive
/// attempts is faulty; for ghost/missed, the per-attempt probability;
/// for battery decay, the per-attempt drain (success probability is
/// `(1 - rate)^attempt`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Which fault.
    pub kind: FaultKind,
    /// How often (see type-level docs).
    pub rate: f64,
    /// Corruption magnitude: flapping swing / per-event drift step.
    pub magnitude: f64,
    /// Window length (attempts) for value faults.
    pub window: u64,
}

impl FaultSpec {
    /// A spec with per-kind default magnitude and a 16-attempt window.
    #[must_use]
    pub fn new(kind: FaultKind, rate: f64) -> Self {
        let magnitude = match kind {
            FaultKind::Flapping => 8.0,
            FaultKind::Drift => 1.0,
            _ => 0.0,
        };
        Self {
            kind,
            rate,
            magnitude,
            window: 16,
        }
    }

    /// Overrides the corruption magnitude.
    #[must_use]
    pub fn with_magnitude(mut self, magnitude: f64) -> Self {
        self.magnitude = magnitude;
        self
    }

    /// Overrides the value-fault window length (attempts).
    #[must_use]
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window.max(1);
        self
    }
}

/// SplitMix64 finalizer — the same mixer `rivulet-fleet` uses for
/// per-home seeds, so fault streams inherit its dispersion properties.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a stream tag and an index into a device seed.
fn mix(seed: u64, tag: u64, index: u64) -> u64 {
    splitmix(seed ^ splitmix(tag ^ splitmix(index)))
}

/// Maps a hash to a uniform draw in `[0, 1)` (top 53 bits).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Device-class tags keeping sensor and actuator streams disjoint even
/// when their numeric ids collide.
const CLASS_SENSOR: u64 = 1;
const CLASS_ACTUATOR: u64 = 2;

/// What the plan decided for one emission attempt. Pure function of
/// `(plan seed, device id, attempt)` — see [`FaultPlan::sensor_timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// Suppress the emission, and why ([`FaultKind::Missed`] or
    /// [`FaultKind::BatteryDecay`]).
    pub suppress: Option<FaultKind>,
    /// Emit a spurious extra event after the real one.
    pub ghost: bool,
    /// Active value corruption, if any.
    pub corrupt: Option<FaultKind>,
}

impl FaultDecision {
    /// True when nothing fires on this attempt.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.suppress.is_none() && !self.ghost && self.corrupt.is_none()
    }
}

/// Ground truth about injected faults, shared with the harness.
///
/// Experiments need to know *which* events were ghosts or corrupted to
/// score delivery correctness; obs counters alone cannot identify
/// individual events.
#[derive(Debug, Default)]
pub struct FaultProbe {
    ghosts: Mutex<Vec<EventId>>,
    corrupted: Mutex<Vec<EventId>>,
    missed: AtomicU64,
    battery_skips: AtomicU64,
    commands_dropped: AtomicU64,
    commands_refused: AtomicU64,
}

impl FaultProbe {
    /// Creates an empty probe.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Ids of spurious (ghost) events actually emitted.
    #[must_use]
    pub fn ghosts(&self) -> Vec<EventId> {
        self.ghosts.lock().expect("probe lock").clone()
    }

    /// Ids of events emitted with a corrupted value.
    #[must_use]
    pub fn corrupted(&self) -> Vec<EventId> {
        self.corrupted.lock().expect("probe lock").clone()
    }

    /// Emissions suppressed by `Missed` faults.
    #[must_use]
    pub fn missed(&self) -> u64 {
        self.missed.load(Ordering::SeqCst)
    }

    /// Emissions suppressed by battery decay.
    #[must_use]
    pub fn battery_skips(&self) -> u64 {
        self.battery_skips.load(Ordering::SeqCst)
    }

    /// Actuation commands silently dropped (`Missed` on an actuator).
    #[must_use]
    pub fn commands_dropped(&self) -> u64 {
        self.commands_dropped.load(Ordering::SeqCst)
    }

    /// Actuation commands acked but not applied (`StuckAt` actuator).
    #[must_use]
    pub fn commands_refused(&self) -> u64 {
        self.commands_refused.load(Ordering::SeqCst)
    }

    /// Records a ghost emission.
    pub fn record_ghost(&self, id: EventId) {
        self.ghosts.lock().expect("probe lock").push(id);
    }

    /// Records a corrupted-value emission.
    pub fn record_corrupted(&self, id: EventId) {
        self.corrupted.lock().expect("probe lock").push(id);
    }

    /// Records a suppressed emission, attributed to its fault kind.
    pub fn record_suppressed(&self, kind: FaultKind) {
        match kind {
            FaultKind::BatteryDecay => self.battery_skips.fetch_add(1, Ordering::SeqCst),
            _ => self.missed.fetch_add(1, Ordering::SeqCst),
        };
    }

    /// Records an actuation command silently dropped.
    pub fn record_command_dropped(&self) {
        self.commands_dropped.fetch_add(1, Ordering::SeqCst);
    }

    /// Records an actuation command acked but not applied.
    pub fn record_command_refused(&self) {
        self.commands_refused.fetch_add(1, Ordering::SeqCst);
    }
}

/// A seeded, declarative fault schedule for every device in a home.
///
/// Devices are keyed in `BTreeMap`s, so two plans with the same
/// `(seed, specs)` are equal and expand identically regardless of the
/// order devices were declared in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    sensors: BTreeMap<u32, Vec<FaultSpec>>,
    actuators: BTreeMap<u32, Vec<FaultSpec>>,
}

impl FaultPlan {
    /// An empty plan rooted at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sensors: BTreeMap::new(),
            actuators: BTreeMap::new(),
        }
    }

    /// The plan's root seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no device has any fault declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty() && self.actuators.is_empty()
    }

    /// Adds a fault to a sensor (builder-style; faults accumulate).
    #[must_use]
    pub fn sensor(mut self, id: SensorId, spec: FaultSpec) -> Self {
        self.sensors.entry(id.0).or_default().push(spec);
        self
    }

    /// Adds a fault to an actuator (builder-style).
    #[must_use]
    pub fn actuator(mut self, id: ActuatorId, spec: FaultSpec) -> Self {
        self.actuators.entry(id.0).or_default().push(spec);
        self
    }

    /// Per-device stream seed: SplitMix64 over `(plan seed, class,
    /// device id)`, mirroring `rivulet-fleet`'s per-home derivation.
    fn device_seed(&self, class: u64, id: u32) -> u64 {
        splitmix(
            self.seed
                ^ splitmix(class)
                ^ u64::from(id)
                    .wrapping_add(1)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    /// The runtime fault state for a sensor, if the plan names it.
    #[must_use]
    pub fn for_sensor(&self, id: SensorId) -> Option<DeviceFaults> {
        self.sensors
            .get(&id.0)
            .map(|specs| DeviceFaults::new(self.device_seed(CLASS_SENSOR, id.0), specs.clone()))
    }

    /// The runtime fault state for an actuator, if the plan names it.
    #[must_use]
    pub fn for_actuator(&self, id: ActuatorId) -> Option<DeviceFaults> {
        self.actuators
            .get(&id.0)
            .map(|specs| DeviceFaults::new(self.device_seed(CLASS_ACTUATOR, id.0), specs.clone()))
    }

    /// Expands a sensor's fault schedule for its first `attempts`
    /// emission attempts — a pure function, independent of any run.
    #[must_use]
    pub fn sensor_timeline(&self, id: SensorId, attempts: u64) -> Vec<FaultDecision> {
        match self.for_sensor(id) {
            Some(mut f) => (0..attempts).map(|_| f.decide_next()).collect(),
            None => vec![FaultDecision::default(); attempts as usize],
        }
    }

    /// Renders a timeline to a canonical string for byte-identical
    /// comparison in property tests.
    #[must_use]
    pub fn render_sensor_timeline(&self, id: SensorId, attempts: u64) -> String {
        let mut out = String::new();
        for (i, d) in self.sensor_timeline(id, attempts).iter().enumerate() {
            let suppress = d.suppress.map_or("-", FaultKind::name);
            let corrupt = d.corrupt.map_or("-", FaultKind::name);
            let _ = writeln!(
                out,
                "{i} suppress={suppress} ghost={} corrupt={corrupt}",
                u8::from(d.ghost),
            );
        }
        out
    }
}

/// Per-device runtime fault state, consulted by the device actors on
/// every emission attempt / poll answer / command arrival.
///
/// All randomness comes from counter-keyed hash streams over the
/// device seed; the driver RNG is never touched, so an attached plan
/// whose rates are all zero perturbs nothing.
#[derive(Debug, Clone)]
pub struct DeviceFaults {
    seed: u64,
    specs: Vec<FaultSpec>,
    attempt: u64,
    /// Value frozen by an active stuck-at window.
    stuck_value: Option<f64>,
    /// `(window index, base value)` for flapping/drift windows.
    window_base: Option<(u64, f64)>,
    /// Decision for the current attempt (set by [`Self::decide_next`]).
    current: FaultDecision,
}

impl DeviceFaults {
    fn new(seed: u64, specs: Vec<FaultSpec>) -> Self {
        Self {
            seed,
            specs,
            attempt: 0,
            stuck_value: None,
            window_base: None,
            current: FaultDecision::default(),
        }
    }

    /// The attempt index the *next* [`Self::decide_next`] will use.
    #[must_use]
    pub fn attempts(&self) -> u64 {
        self.attempt
    }

    /// Computes the fault decision for the next attempt and advances
    /// the attempt counter. Pure in `(seed, attempt)`.
    pub fn decide_next(&mut self) -> FaultDecision {
        let a = self.attempt;
        self.attempt += 1;
        let mut d = FaultDecision::default();
        for spec in &self.specs {
            let tag = spec.kind.stream_tag();
            match spec.kind {
                FaultKind::Missed => {
                    if unit(mix(self.seed, tag, a)) < spec.rate && d.suppress.is_none() {
                        d.suppress = Some(FaultKind::Missed);
                    }
                }
                FaultKind::BatteryDecay => {
                    // Success probability decays as (1 - rate)^attempt.
                    let battery = (1.0 - spec.rate).max(0.0).powi(a.min(1 << 20) as i32);
                    if unit(mix(self.seed, tag, a)) >= battery && d.suppress.is_none() {
                        d.suppress = Some(FaultKind::BatteryDecay);
                    }
                }
                FaultKind::Ghost => {
                    if unit(mix(self.seed, tag, a)) < spec.rate {
                        d.ghost = true;
                    }
                }
                FaultKind::StuckAt | FaultKind::Flapping | FaultKind::Drift => {
                    let window = a / spec.window;
                    if unit(mix(self.seed, tag, window)) < spec.rate {
                        // First declared value fault wins the window.
                        if d.corrupt.is_none() {
                            d.corrupt = Some(spec.kind);
                        }
                    }
                }
            }
        }
        // Window bookkeeping for value corruption.
        match d.corrupt {
            Some(FaultKind::StuckAt) => {}
            _ => self.stuck_value = None,
        }
        if d.corrupt.is_none() {
            self.window_base = None;
        }
        self.current = d;
        d
    }

    /// The decision [`Self::decide_next`] produced for the current
    /// attempt.
    #[must_use]
    pub fn current(&self) -> FaultDecision {
        self.current
    }

    /// Applies the current attempt's value corruption to a sampled
    /// scalar reading. Returns the (possibly corrupted) value and
    /// whether it was altered.
    pub fn corrupt_value(&mut self, value: f64) -> (f64, bool) {
        let a = self.attempt.saturating_sub(1);
        let Some(kind) = self.current.corrupt else {
            return (value, false);
        };
        let spec = match self.specs.iter().find(|s| s.kind == kind) {
            Some(s) => s.clone(),
            None => return (value, false),
        };
        let window = a / spec.window;
        match kind {
            FaultKind::StuckAt => {
                let frozen = *self.stuck_value.get_or_insert(value);
                (frozen, (frozen - value).abs() > f64::EPSILON)
            }
            FaultKind::Flapping => {
                let base = self.window_base(window, value);
                let v = if a.is_multiple_of(2) {
                    base + spec.magnitude
                } else {
                    base - spec.magnitude
                };
                (v, true)
            }
            FaultKind::Drift => {
                let base_attempt = window * spec.window;
                let k = a - base_attempt + 1;
                (value + spec.magnitude * k as f64, true)
            }
            _ => (value, false),
        }
    }

    fn window_base(&mut self, window: u64, value: f64) -> f64 {
        match self.window_base {
            Some((w, base)) if w == window => base,
            _ => {
                self.window_base = Some((window, value));
                value
            }
        }
    }

    /// A ghost reading for the current attempt: pure in
    /// `(seed, attempt)`, deliberately outside any plausible phenomenon
    /// range so harnesses can score it as incorrect.
    #[must_use]
    pub fn ghost_value(&self) -> f64 {
        let a = self.attempt.saturating_sub(1);
        1_000.0 + unit(mix(self.seed, 7, a)) * 1_000.0
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_spec() -> impl Strategy<Value = FaultSpec> {
        (0usize..6, 0.0f64..=1.0, 0.1f64..20.0, 1u64..64).prop_map(|(k, rate, mag, win)| {
            FaultSpec::new(FaultKind::ALL[k], rate)
                .with_magnitude(mag)
                .with_window(win)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Same seed and specs → byte-identical fault timeline, no
        /// matter how many times it is expanded.
        #[test]
        fn expansion_is_deterministic(
            seed in any::<u64>(),
            id in any::<u32>(),
            spec in arb_spec(),
            attempts in 1u64..300,
        ) {
            let p = FaultPlan::new(seed).sensor(SensorId(id), spec);
            let a = p.render_sensor_timeline(SensorId(id), attempts);
            let b = p.clone().render_sensor_timeline(SensorId(id), attempts);
            prop_assert_eq!(a, b);
        }

        /// A device's timeline is independent of every *other* device
        /// in the plan and of declaration order.
        #[test]
        fn timelines_are_order_insensitive(
            seed in any::<u64>(),
            ids in proptest::collection::vec(any::<u32>(), 2..6),
            spec in arb_spec(),
        ) {
            let mut ids: Vec<u32> = ids;
            ids.sort_unstable();
            ids.dedup();
            let mut fwd = FaultPlan::new(seed);
            for id in &ids {
                fwd = fwd.sensor(SensorId(*id), spec.clone());
            }
            let mut rev = FaultPlan::new(seed);
            for id in ids.iter().rev() {
                rev = rev.sensor(SensorId(*id), spec.clone());
            }
            // A plan that names ONLY this device expands identically:
            // the in-home schedule is reproducible standalone.
            for id in &ids {
                let solo = FaultPlan::new(seed).sensor(SensorId(*id), spec.clone());
                let full = fwd.render_sensor_timeline(SensorId(*id), 128);
                prop_assert_eq!(&full, &rev.render_sensor_timeline(SensorId(*id), 128));
                prop_assert_eq!(&full, &solo.render_sensor_timeline(SensorId(*id), 128));
            }
        }

        /// The runtime wrapper replays exactly the rendered timeline:
        /// `decide_next` at attempt n equals `sensor_timeline(..)[n]`.
        #[test]
        fn runtime_matches_timeline(
            seed in any::<u64>(),
            id in any::<u32>(),
            spec in arb_spec(),
            attempts in 1u64..200,
        ) {
            let p = FaultPlan::new(seed).sensor(SensorId(id), spec);
            let expected = p.sensor_timeline(SensorId(id), attempts);
            let mut f = p.for_sensor(SensorId(id)).unwrap();
            let got: Vec<FaultDecision> = (0..attempts).map(|_| f.decide_next()).collect();
            prop_assert_eq!(got, expected);
        }

        /// Rate 0 never fires, rate 1 presence faults always fire.
        #[test]
        fn rate_extremes(seed in any::<u64>(), id in any::<u32>()) {
            let clean = FaultPlan::new(seed)
                .sensor(SensorId(id), FaultSpec::new(FaultKind::Missed, 0.0))
                .sensor(SensorId(id), FaultSpec::new(FaultKind::Ghost, 0.0));
            prop_assert!(clean
                .sensor_timeline(SensorId(id), 256)
                .iter()
                .all(FaultDecision::is_clean));
            let always = FaultPlan::new(seed)
                .sensor(SensorId(id), FaultSpec::new(FaultKind::Missed, 1.0));
            prop_assert!(always
                .sensor_timeline(SensorId(id), 256)
                .iter()
                .all(|d| d.suppress == Some(FaultKind::Missed)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(42)
            .sensor(SensorId(1), FaultSpec::new(FaultKind::Missed, 0.3))
            .sensor(SensorId(2), FaultSpec::new(FaultKind::StuckAt, 0.5))
            .actuator(ActuatorId(1), FaultSpec::new(FaultKind::Missed, 0.2))
    }

    #[test]
    fn kind_names_round_trip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.name()), Some(k));
        }
        assert_eq!(FaultKind::parse("nope"), None);
    }

    #[test]
    fn timeline_is_deterministic() {
        let a = plan().render_sensor_timeline(SensorId(1), 200);
        let b = plan().render_sensor_timeline(SensorId(1), 200);
        assert_eq!(a, b);
        assert!(
            a.contains("suppress=missed"),
            "rate 0.3 must fire in 200 attempts"
        );
    }

    #[test]
    fn declaration_order_is_irrelevant() {
        let fwd = FaultPlan::new(7)
            .sensor(SensorId(1), FaultSpec::new(FaultKind::Ghost, 0.2))
            .sensor(SensorId(2), FaultSpec::new(FaultKind::Drift, 0.4));
        let rev = FaultPlan::new(7)
            .sensor(SensorId(2), FaultSpec::new(FaultKind::Drift, 0.4))
            .sensor(SensorId(1), FaultSpec::new(FaultKind::Ghost, 0.2));
        assert_eq!(fwd, rev);
        assert_eq!(
            fwd.render_sensor_timeline(SensorId(1), 100),
            rev.render_sensor_timeline(SensorId(1), 100)
        );
    }

    #[test]
    fn rate_zero_is_clean() {
        let p = FaultPlan::new(3).sensor(SensorId(1), FaultSpec::new(FaultKind::Missed, 0.0));
        assert!(p
            .sensor_timeline(SensorId(1), 500)
            .iter()
            .all(FaultDecision::is_clean));
    }

    #[test]
    fn sensor_and_actuator_streams_are_disjoint() {
        let p = FaultPlan::new(11)
            .sensor(SensorId(5), FaultSpec::new(FaultKind::Missed, 0.5))
            .actuator(ActuatorId(5), FaultSpec::new(FaultKind::Missed, 0.5));
        let mut s = p.for_sensor(SensorId(5)).unwrap();
        let mut a = p.for_actuator(ActuatorId(5)).unwrap();
        let sd: Vec<_> = (0..64)
            .map(|_| s.decide_next().suppress.is_some())
            .collect();
        let ad: Vec<_> = (0..64)
            .map(|_| a.decide_next().suppress.is_some())
            .collect();
        assert_ne!(sd, ad, "same numeric id must not share a stream");
    }

    #[test]
    fn stuck_freezes_at_window_entry() {
        let p = FaultPlan::new(1).sensor(SensorId(1), FaultSpec::new(FaultKind::StuckAt, 1.0));
        let mut f = p.for_sensor(SensorId(1)).unwrap();
        let d = f.decide_next();
        assert_eq!(d.corrupt, Some(FaultKind::StuckAt));
        assert_eq!(f.corrupt_value(21.0), (21.0, false));
        f.decide_next();
        assert_eq!(f.corrupt_value(25.0), (21.0, true), "frozen at entry value");
    }

    #[test]
    fn drift_grows_within_window() {
        let p = FaultPlan::new(1).sensor(
            SensorId(1),
            FaultSpec::new(FaultKind::Drift, 1.0).with_magnitude(2.0),
        );
        let mut f = p.for_sensor(SensorId(1)).unwrap();
        f.decide_next();
        assert_eq!(f.corrupt_value(10.0), (12.0, true));
        f.decide_next();
        assert_eq!(f.corrupt_value(10.0), (14.0, true));
    }

    #[test]
    fn battery_decay_suppresses_more_over_time() {
        let p =
            FaultPlan::new(9).sensor(SensorId(1), FaultSpec::new(FaultKind::BatteryDecay, 0.02));
        let tl = p.sensor_timeline(SensorId(1), 400);
        let early = tl[..100].iter().filter(|d| d.suppress.is_some()).count();
        let late = tl[300..].iter().filter(|d| d.suppress.is_some()).count();
        assert!(late > early, "decay must worsen: early={early} late={late}");
    }
}
