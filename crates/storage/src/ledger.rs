//! The execution-integrity ledger: hash-chained routine transitions.
//!
//! Every state transition of a routine instance (Staged → Committed /
//! Aborted → Compensated; see `rivulet-core`'s routine engine) appends
//! a [`LedgerEntry`] to the WAL as a CRC-framed
//! [`crate::record::WalRecord::Ledger`] record. Entries are
//! **SHA-256-chained**: each carries the hash of its predecessor
//! (`prev`) and its own hash over `prev || body`, with the chain
//! genesis derived from the per-home ledger seed (itself derived from
//! the fleet seed). After crash recovery any node can replay the chain
//! and prove that no firing was inserted, dropped, reordered, or
//! altered — the Ruledger-style tamper evidence of PAPERS.md.
//!
//! [`LedgerVerifier::verify`] walks a recovered chain and returns
//! either the first broken link (exact index plus reason) or an
//! [`AuditTrail`] that can answer "why did this actuator fire?" for any
//! [`CommandId`] in the chain.
//!
//! Chain layout of one entry's hash input (all wire-encoded with the
//! shared LEB128 codec, see DESIGN.md §4.7):
//!
//! ```text
//! hash = SHA-256( prev[32] || routine || instance || transition_tag
//!                 || at || commands[(actuator, command_id)...] )
//! genesis prev = SHA-256( "rivulet-ledger-genesis" || seed_le[8] )
//! ```

use std::fmt;

use rivulet_types::wire::{Wire, WireError, WireReader, WireWriter};
use rivulet_types::{ActuatorId, CommandId, RoutineId, Time};

use crate::sha256::Sha256;

/// Domain-separation prefix of the chain genesis hash.
const GENESIS_DOMAIN: &[u8] = b"rivulet-ledger-genesis";

/// A routine visibility-state transition, as recorded in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RoutineTransition {
    /// The instance was created and staging commands were issued to
    /// every target actuator. The entry's `commands` list carries the
    /// full ordered step commands.
    Staged = 0,
    /// Every target actuator acknowledged staging; the commit was made
    /// durable *before* any fire frame was sent (write-ahead), so a
    /// recovered coordinator re-drives the idempotent commit.
    Committed = 1,
    /// The instance was abandoned (stage timeout, unreachable target,
    /// or crash recovery found it unfinished); staged commands are
    /// discarded and nothing fires.
    Aborted = 2,
    /// Post-abort safe-state restoration: the routine's declared
    /// compensation commands were issued as plain actuations. The
    /// entry's `commands` list carries them.
    Compensated = 3,
}

impl RoutineTransition {
    /// All transitions, in tag order.
    pub const ALL: [Self; 4] = [
        Self::Staged,
        Self::Committed,
        Self::Aborted,
        Self::Compensated,
    ];

    /// Stable lowercase name (obs keys, tables, JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Staged => "staged",
            Self::Committed => "committed",
            Self::Aborted => "aborted",
            Self::Compensated => "compensated",
        }
    }
}

impl fmt::Display for RoutineTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Wire for RoutineTransition {
    fn encoded_len(&self) -> usize {
        1
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(*self as u8);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Self::Staged),
            1 => Ok(Self::Committed),
            2 => Ok(Self::Aborted),
            3 => Ok(Self::Compensated),
            tag => Err(WireError::InvalidTag {
                ty: "RoutineTransition",
                tag,
            }),
        }
    }
}

/// One hash-chained ledger record: a routine instance's transition plus
/// the chain linkage proving its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// The routine spec this instance fires.
    pub routine: RoutineId,
    /// The firing instance (per-coordinator counter).
    pub instance: u64,
    /// Which visibility-state transition this entry records.
    pub transition: RoutineTransition,
    /// Virtual time of the transition.
    pub at: Time,
    /// Commands covered by the transition: the full ordered step list
    /// for [`RoutineTransition::Staged`], the issued compensation
    /// commands for [`RoutineTransition::Compensated`], empty
    /// otherwise.
    pub commands: Vec<(ActuatorId, CommandId)>,
    /// Hash of the predecessor entry (or the genesis hash).
    pub prev: [u8; 32],
    /// `SHA-256(prev || body)` of this entry.
    pub hash: [u8; 32],
}

impl LedgerEntry {
    /// Recomputes this entry's hash from its `prev` and body fields.
    #[must_use]
    pub fn computed_hash(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.prev);
        let mut w = WireWriter::with_capacity(self.body_len());
        self.encode_body(&mut w);
        h.update(&w.into_bytes());
        h.finalize()
    }

    fn body_len(&self) -> usize {
        self.routine.encoded_len()
            + self.instance.encoded_len()
            + self.transition.encoded_len()
            + self.at.encoded_len()
            + self.commands.encoded_len()
    }

    fn encode_body(&self, w: &mut WireWriter) {
        self.routine.encode(w);
        self.instance.encode(w);
        self.transition.encode(w);
        self.at.encode(w);
        self.commands.encode(w);
    }
}

impl Wire for LedgerEntry {
    fn encoded_len(&self) -> usize {
        self.body_len() + 64
    }

    fn encode(&self, w: &mut WireWriter) {
        self.encode_body(w);
        w.put_slice(&self.prev);
        w.put_slice(&self.hash);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let routine = RoutineId::decode(r)?;
        let instance = u64::decode(r)?;
        let transition = RoutineTransition::decode(r)?;
        let at = Time::decode(r)?;
        let commands = Vec::decode(r)?;
        let mut prev = [0u8; 32];
        prev.copy_from_slice(r.get_slice(32)?);
        let mut hash = [0u8; 32];
        hash.copy_from_slice(r.get_slice(32)?);
        Ok(Self {
            routine,
            instance,
            transition,
            at,
            commands,
            prev,
            hash,
        })
    }
}

/// The appender side of the chain: holds the rolling head hash and
/// mints linked entries.
#[derive(Debug, Clone)]
pub struct LedgerChain {
    head: [u8; 32],
}

impl LedgerChain {
    /// The genesis hash of a chain seeded with `seed`.
    #[must_use]
    pub fn genesis(seed: u64) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(GENESIS_DOMAIN);
        h.update(&seed.to_le_bytes());
        h.finalize()
    }

    /// A fresh chain seeded per-home from the fleet seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            head: Self::genesis(seed),
        }
    }

    /// Resumes a chain at a known head (e.g. the hash of the last
    /// recovered entry).
    #[must_use]
    pub fn from_head(head: [u8; 32]) -> Self {
        Self { head }
    }

    /// The hash the next appended entry will link to.
    #[must_use]
    pub fn head(&self) -> [u8; 32] {
        self.head
    }

    /// Mints the next chained entry and advances the head.
    pub fn append(
        &mut self,
        routine: RoutineId,
        instance: u64,
        transition: RoutineTransition,
        at: Time,
        commands: Vec<(ActuatorId, CommandId)>,
    ) -> LedgerEntry {
        let mut entry = LedgerEntry {
            routine,
            instance,
            transition,
            at,
            commands,
            prev: self.head,
            hash: [0u8; 32],
        };
        entry.hash = entry.computed_hash();
        self.head = entry.hash;
        entry
    }
}

/// The first broken link found by [`LedgerVerifier::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokenLink {
    /// Index of the offending entry in the verified slice.
    pub index: usize,
    /// What broke: `"prev-hash mismatch"`, `"entry-hash mismatch"`, or
    /// a transition-ordering violation.
    pub reason: &'static str,
}

impl fmt::Display for BrokenLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "broken link at entry {}: {}", self.index, self.reason)
    }
}

/// A fully verified chain, queryable per actuator command.
#[derive(Debug, Clone)]
pub struct AuditTrail {
    entries: Vec<LedgerEntry>,
}

impl AuditTrail {
    /// Number of verified entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the chain is empty (vacuously verified).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All verified entries, in chain order.
    #[must_use]
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// The audit trail of one actuator command: every entry of the
    /// instance whose `Staged` or `Compensated` record names `command`,
    /// in chain order. Empty when the command never went through a
    /// routine.
    #[must_use]
    pub fn trail_for(&self, command: CommandId) -> Vec<&LedgerEntry> {
        let Some(key) = self
            .entries
            .iter()
            .find(|e| e.commands.iter().any(|(_, c)| *c == command))
            .map(|e| (e.routine, e.instance))
        else {
            return Vec::new();
        };
        self.entries
            .iter()
            .filter(|e| (e.routine, e.instance) == key)
            .collect()
    }
}

/// Chain verification: recomputes every link of a recovered ledger.
#[derive(Debug, Clone, Copy)]
pub struct LedgerVerifier;

impl LedgerVerifier {
    /// Verifies `entries` against a chain seeded with `seed`.
    ///
    /// Checks, per entry: the `prev` field matches the running head,
    /// the stored hash matches the recomputed `SHA-256(prev || body)`,
    /// and the transition is legal for its instance (a terminal
    /// transition requires a prior `Staged`, `Compensated` requires a
    /// prior `Aborted`, and no instance transitions twice into the same
    /// state).
    ///
    /// # Errors
    ///
    /// Returns the first [`BrokenLink`] — its `index` is exact, which
    /// is what the corruption tests and `bench --routine-table` assert.
    pub fn verify(seed: u64, entries: &[LedgerEntry]) -> Result<AuditTrail, BrokenLink> {
        Self::verify_from(LedgerChain::genesis(seed), entries)
    }

    /// Like [`LedgerVerifier::verify`], resuming from an explicit head
    /// hash (for chains whose prefix was compacted away behind a
    /// checkpointed head).
    ///
    /// # Errors
    ///
    /// Returns the first [`BrokenLink`] with its exact index.
    pub fn verify_from(head: [u8; 32], entries: &[LedgerEntry]) -> Result<AuditTrail, BrokenLink> {
        let mut head = head;
        let mut seen: Vec<((RoutineId, u64), RoutineTransition)> = Vec::new();
        for (index, entry) in entries.iter().enumerate() {
            if entry.prev != head {
                return Err(BrokenLink {
                    index,
                    reason: "prev-hash mismatch",
                });
            }
            if entry.hash != entry.computed_hash() {
                return Err(BrokenLink {
                    index,
                    reason: "entry-hash mismatch",
                });
            }
            let key = (entry.routine, entry.instance);
            let has = |t: RoutineTransition| seen.iter().any(|(k, s)| *k == key && *s == t);
            let legal = match entry.transition {
                RoutineTransition::Staged => !has(RoutineTransition::Staged),
                RoutineTransition::Committed => {
                    has(RoutineTransition::Staged)
                        && !has(RoutineTransition::Committed)
                        && !has(RoutineTransition::Aborted)
                }
                RoutineTransition::Aborted => {
                    has(RoutineTransition::Staged)
                        && !has(RoutineTransition::Aborted)
                        && !has(RoutineTransition::Committed)
                }
                RoutineTransition::Compensated => {
                    has(RoutineTransition::Aborted) && !has(RoutineTransition::Compensated)
                }
            };
            if !legal {
                return Err(BrokenLink {
                    index,
                    reason: "illegal transition order",
                });
            }
            seen.push((key, entry.transition));
            head = entry.hash;
        }
        Ok(AuditTrail {
            entries: entries.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::wire::roundtrip;
    use rivulet_types::{OperatorId, ProcessId};

    fn cmd(seq: u64) -> (ActuatorId, CommandId) {
        (
            ActuatorId(seq as u32),
            CommandId::new(ProcessId(1), OperatorId(2), seq),
        )
    }

    fn sample_chain(seed: u64) -> Vec<LedgerEntry> {
        let mut chain = LedgerChain::seeded(seed);
        let steps = [
            (0, RoutineTransition::Staged, 10, vec![cmd(0), cmd(1)]),
            (0, RoutineTransition::Committed, 20, Vec::new()),
            (1, RoutineTransition::Staged, 30, vec![cmd(2)]),
            (1, RoutineTransition::Aborted, 40, Vec::new()),
            (1, RoutineTransition::Compensated, 41, vec![cmd(3)]),
        ];
        steps
            .into_iter()
            .map(|(instance, transition, at, cmds)| {
                chain.append(
                    RoutineId(1),
                    instance,
                    transition,
                    Time::from_millis(at),
                    cmds,
                )
            })
            .collect()
    }

    #[test]
    fn entry_wire_roundtrip() {
        for e in sample_chain(7) {
            roundtrip(&e);
        }
    }

    #[test]
    fn valid_chain_verifies_and_answers_audits() {
        let entries = sample_chain(7);
        let trail = LedgerVerifier::verify(7, &entries).expect("valid chain");
        assert_eq!(trail.len(), 5);
        // The command staged in instance 0 maps to instance 0's
        // Staged + Committed entries.
        let t = trail.trail_for(CommandId::new(ProcessId(1), OperatorId(2), 0));
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].transition, RoutineTransition::Committed);
        // The compensation command maps to instance 1's full life.
        let t = trail.trail_for(CommandId::new(ProcessId(1), OperatorId(2), 3));
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].transition, RoutineTransition::Compensated);
        // Unknown commands have no trail.
        assert!(trail
            .trail_for(CommandId::new(ProcessId(9), OperatorId(9), 9))
            .is_empty());
    }

    #[test]
    fn wrong_seed_breaks_at_index_zero() {
        let entries = sample_chain(7);
        let broken = LedgerVerifier::verify(8, &entries).unwrap_err();
        assert_eq!(broken.index, 0);
        assert_eq!(broken.reason, "prev-hash mismatch");
    }

    #[test]
    fn tampered_entry_is_detected_at_its_exact_index() {
        let entries = sample_chain(7);
        for k in 0..entries.len() {
            let mut tampered = entries.clone();
            tampered[k].at += rivulet_types::Duration::from_micros(1);
            let broken = LedgerVerifier::verify(7, &tampered).unwrap_err();
            assert_eq!(broken.index, k, "tampering entry {k}");
            assert_eq!(broken.reason, "entry-hash mismatch");
        }
    }

    #[test]
    fn dropped_and_reordered_entries_are_detected() {
        let entries = sample_chain(7);
        // Drop the middle entry: the successor's prev no longer links.
        let mut dropped = entries.clone();
        dropped.remove(1);
        let broken = LedgerVerifier::verify(7, &dropped).unwrap_err();
        assert_eq!(broken.index, 1);
        assert_eq!(broken.reason, "prev-hash mismatch");
        // Swap two entries.
        let mut swapped = entries.clone();
        swapped.swap(2, 3);
        let broken = LedgerVerifier::verify(7, &swapped).unwrap_err();
        assert_eq!(broken.index, 2);
        // Inserted forged entry (self-consistent hash, wrong link).
        let mut forged = entries.clone();
        let mut rogue = LedgerChain::seeded(99);
        forged.insert(
            2,
            rogue.append(
                RoutineId(9),
                9,
                RoutineTransition::Staged,
                Time::from_millis(35),
                Vec::new(),
            ),
        );
        let broken = LedgerVerifier::verify(7, &forged).unwrap_err();
        assert_eq!(broken.index, 2);
        assert_eq!(broken.reason, "prev-hash mismatch");
    }

    #[test]
    fn illegal_transition_orders_are_rejected() {
        // Commit without a stage.
        let mut chain = LedgerChain::seeded(1);
        let orphan = vec![chain.append(
            RoutineId(1),
            0,
            RoutineTransition::Committed,
            Time::ZERO,
            Vec::new(),
        )];
        let broken = LedgerVerifier::verify(1, &orphan).unwrap_err();
        assert_eq!(broken.index, 0);
        assert_eq!(broken.reason, "illegal transition order");
        // Commit after abort.
        let mut chain = LedgerChain::seeded(1);
        let entries = vec![
            chain.append(
                RoutineId(1),
                0,
                RoutineTransition::Staged,
                Time::ZERO,
                vec![],
            ),
            chain.append(
                RoutineId(1),
                0,
                RoutineTransition::Aborted,
                Time::ZERO,
                vec![],
            ),
            chain.append(
                RoutineId(1),
                0,
                RoutineTransition::Committed,
                Time::ZERO,
                vec![],
            ),
        ];
        let broken = LedgerVerifier::verify(1, &entries).unwrap_err();
        assert_eq!(broken.index, 2);
        assert_eq!(broken.reason, "illegal transition order");
    }

    #[test]
    fn verify_from_resumes_mid_chain() {
        let entries = sample_chain(7);
        let head = entries[1].hash;
        let trail = LedgerVerifier::verify_from(head, &entries[2..]).expect("suffix verifies");
        assert_eq!(trail.len(), 3);
    }
}
