//! WAL record types and the on-disk frame format.
//!
//! Every log entry is a *frame*:
//!
//! ```text
//! [payload_len: varint] [crc32(payload): 4 bytes LE] [payload]
//! ```
//!
//! where `payload` is the S1 wire encoding of a [`WalRecord`]. The
//! frame reuses the same LEB128 varint scheme as the inter-process
//! codec, so the log shares one serialization stack with the network
//! (paper §7: "custom serialization for events and other messages").
//!
//! Decoding distinguishes a *torn* frame (the buffer ends mid-frame —
//! the expected shape after a crash during an append) from a *corrupt*
//! one (checksum or structural mismatch — bit rot or a torn write that
//! landed mid-stream). Recovery treats both as the end of the durable
//! prefix.

use rivulet_types::wire::{varint_len, Wire, WireError, WireReader, WireWriter};
use rivulet_types::{Event, SensorId, Time};

use crate::crc::crc32;
use crate::ledger::LedgerEntry;

/// Bytes occupied by the checksum field of a frame.
pub const FRAME_CRC_BYTES: usize = 4;

const TAG_EVENT: u8 = 0;
const TAG_CHECKPOINT: u8 = 1;
const TAG_LEDGER: u8 = 2;

/// A snapshot of operator progress: every event at or below these
/// per-sensor watermarks has been fully processed by the local
/// application runtime, so recovery may skip replaying it and
/// compaction may drop segments it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Virtual time at which the checkpoint was taken.
    pub at: Time,
    /// Highest processed sequence number per sensor.
    pub processed: Vec<(SensorId, u64)>,
}

impl Wire for Checkpoint {
    fn encoded_len(&self) -> usize {
        self.at.encoded_len() + self.processed.encoded_len()
    }

    fn encode(&self, w: &mut WireWriter) {
        self.at.encode(w);
        self.processed.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            at: Time::decode(r)?,
            processed: Vec::decode(r)?,
        })
    }
}

/// One durable log entry.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A replicated sensor event (appended before it is acked or
    /// delivered).
    Event(Event),
    /// An operator-progress snapshot.
    Checkpoint(Checkpoint),
    /// A hash-chained routine transition of the execution-integrity
    /// ledger (appended — and flushed — before the transition's
    /// protocol frames are sent).
    Ledger(LedgerEntry),
}

impl Wire for WalRecord {
    fn encoded_len(&self) -> usize {
        1 + match self {
            WalRecord::Event(ev) => ev.encoded_len(),
            WalRecord::Checkpoint(cp) => cp.encoded_len(),
            WalRecord::Ledger(entry) => entry.encoded_len(),
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        match self {
            WalRecord::Event(ev) => {
                w.put_u8(TAG_EVENT);
                ev.encode(w);
            }
            WalRecord::Checkpoint(cp) => {
                w.put_u8(TAG_CHECKPOINT);
                cp.encode(w);
            }
            WalRecord::Ledger(entry) => {
                w.put_u8(TAG_LEDGER);
                entry.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            TAG_EVENT => Ok(WalRecord::Event(Event::decode(r)?)),
            TAG_CHECKPOINT => Ok(WalRecord::Checkpoint(Checkpoint::decode(r)?)),
            TAG_LEDGER => Ok(WalRecord::Ledger(LedgerEntry::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                ty: "WalRecord",
                tag,
            }),
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended before the frame was complete (torn tail).
    Torn,
    /// The frame is structurally complete but fails its checksum or
    /// does not decode to a record.
    Corrupt,
}

/// Encodes `record` as one frame.
#[must_use]
pub fn encode_frame(record: &WalRecord) -> bytes::Bytes {
    let payload_len = record.encoded_len();
    let mut w =
        WireWriter::with_capacity(varint_len(payload_len as u64) + FRAME_CRC_BYTES + payload_len);
    let payload = record.to_bytes();
    debug_assert_eq!(payload.len(), payload_len);
    w.put_varint(payload_len as u64);
    w.put_slice(&crc32(&payload).to_le_bytes());
    w.put_slice(&payload);
    w.into_bytes()
}

/// Decodes the frame at the start of `buf`, returning the record and
/// the number of bytes the frame occupies.
///
/// # Errors
///
/// [`FrameError::Torn`] when `buf` ends mid-frame, [`FrameError::Corrupt`]
/// when the frame is complete but invalid.
pub fn decode_frame(buf: &[u8]) -> Result<(WalRecord, usize), FrameError> {
    let mut r = WireReader::new(buf);
    let len = match r.get_len() {
        Ok(len) => len,
        Err(WireError::UnexpectedEof { .. }) => return Err(FrameError::Torn),
        Err(_) => return Err(FrameError::Corrupt),
    };
    let Ok(crc_bytes) = r.get_slice(FRAME_CRC_BYTES) else {
        return Err(FrameError::Torn);
    };
    let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte slice"));
    let Ok(payload) = r.get_slice(len) else {
        return Err(FrameError::Torn);
    };
    if crc32(payload) != expected {
        return Err(FrameError::Corrupt);
    }
    let record = WalRecord::from_bytes(payload).map_err(|_| FrameError::Corrupt)?;
    Ok((record, buf.len() - r.remaining()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::{EventId, EventKind, Payload};

    fn event(seq: u64) -> Event {
        Event {
            id: EventId::new(SensorId(3), seq),
            kind: EventKind::Reading,
            payload: Payload::Scalar(21.5),
            emitted_at: Time::from_millis(seq * 10),
            epoch: None,
        }
    }

    #[test]
    fn frame_roundtrip() {
        let rec = WalRecord::Event(event(7));
        let frame = encode_frame(&rec);
        let (back, used) = decode_frame(&frame).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn checkpoint_roundtrip() {
        let rec = WalRecord::Checkpoint(Checkpoint {
            at: Time::from_secs(30),
            processed: vec![(SensorId(1), 42), (SensorId(9), 0)],
        });
        let frame = encode_frame(&rec);
        let (back, used) = decode_frame(&frame).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn ledger_roundtrip() {
        use crate::ledger::{LedgerChain, RoutineTransition};
        use rivulet_types::{ActuatorId, CommandId, OperatorId, ProcessId, RoutineId};
        let mut chain = LedgerChain::seeded(7);
        let entry = chain.append(
            RoutineId(3),
            11,
            RoutineTransition::Staged,
            Time::from_secs(5),
            vec![(
                ActuatorId(1),
                CommandId::new(ProcessId(0), OperatorId(1), 9),
            )],
        );
        let rec = WalRecord::Ledger(entry);
        let frame = encode_frame(&rec);
        let (back, used) = decode_frame(&frame).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn consecutive_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        for seq in 0..5 {
            buf.extend_from_slice(&encode_frame(&WalRecord::Event(event(seq))));
        }
        let mut off = 0;
        let mut seqs = Vec::new();
        while off < buf.len() {
            let (rec, n) = decode_frame(&buf[off..]).unwrap();
            if let WalRecord::Event(ev) = rec {
                seqs.push(ev.id.seq);
            }
            off += n;
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_truncation_point_is_torn_or_corrupt() {
        let frame = encode_frame(&WalRecord::Event(event(1)));
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut]).unwrap_err();
            // A truncated frame must never decode; the specific error
            // depends on where the cut lands.
            assert!(matches!(err, FrameError::Torn | FrameError::Corrupt));
        }
    }

    #[test]
    fn bit_flip_in_payload_is_corrupt() {
        let frame = encode_frame(&WalRecord::Event(event(2)));
        let mut bad = frame.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(decode_frame(&bad).unwrap_err(), FrameError::Corrupt);
    }

    #[test]
    fn bit_flip_in_crc_is_corrupt() {
        let frame = encode_frame(&WalRecord::Event(event(2)));
        let mut bad = frame.to_vec();
        bad[1] ^= 0x80; // first CRC byte (offset 0 is the 1-byte len varint)
        assert_eq!(decode_frame(&bad).unwrap_err(), FrameError::Corrupt);
    }

    #[test]
    fn empty_buffer_is_torn() {
        assert_eq!(decode_frame(&[]).unwrap_err(), FrameError::Torn);
    }
}
