//! Durable storage for Rivulet processes.
//!
//! The paper's prototype keeps replicated event state in memory and
//! relies on replication across home processes for availability
//! (§4.1); any durability beyond the home is delegated to the cloud
//! tier. This crate adds the missing local-durability layer: a
//! segmented write-ahead log each process appends events and operator
//! checkpoints to *before* acknowledging them, so a crash-and-restart
//! (as opposed to a permanent failure masked by failover, §5) recovers
//! the exact durable prefix of its replicated store.
//!
//! # Pieces
//!
//! * [`wal::Wal`] — the log: CRC32-framed records ([`record`]),
//!   group-commit batching ([`wal::FlushPolicy`]), segment rotation,
//!   checkpoint-driven prefix compaction, and recovery.
//! * [`backend::StorageBackend`] — the disk abstraction, with a real
//!   filesystem implementation ([`fs::FsBackend`]) and a deterministic
//!   simulated disk ([`sim::SimBackend`]) whose fault model (torn
//!   tails, lying fsync, bit rot) and virtual-time cost profile drive
//!   the crash-recovery test suite and the `micro_wal` benchmark.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use rivulet_storage::{SimBackend, StorageBackend, Wal, WalOptions};
//! use rivulet_types::{Event, EventId, EventKind, SensorId, Time};
//!
//! let backend = Arc::new(SimBackend::new(7));
//! let (mut wal, recovered) =
//!     Wal::open(backend.clone() as Arc<dyn StorageBackend>, WalOptions::default()).unwrap();
//! assert!(recovered.events.is_empty());
//!
//! let event = Event::new(EventId::new(SensorId(1), 1), EventKind::Motion, Time::ZERO);
//! wal.append_event(&event).unwrap(); // durable: default policy fsyncs per event
//!
//! // A crash later, the event is still there.
//! backend.crash();
//! let (_, recovered) =
//!     Wal::open(backend as Arc<dyn StorageBackend>, WalOptions::default()).unwrap();
//! assert_eq!(recovered.events, vec![event]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod crc;
pub mod fs;
pub mod ledger;
pub mod record;
pub mod sha256;
pub mod sim;
pub mod wal;

pub use backend::{SegmentId, StorageBackend, StorageError};
pub use fs::FsBackend;
pub use ledger::{
    AuditTrail, BrokenLink, LedgerChain, LedgerEntry, LedgerVerifier, RoutineTransition,
};
pub use record::{Checkpoint, WalRecord};
pub use sha256::Sha256;
pub use sim::{DiskProfile, FaultConfig, SimBackend};
pub use wal::{FlushPolicy, Recovered, Wal, WalMetrics, WalOptions};
