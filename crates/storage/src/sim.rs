//! Deterministic in-memory storage backend for simulation.
//!
//! Models the two things a real disk does that matter to a WAL:
//!
//! 1. **The page-cache / durability split.** Appended bytes sit in a
//!    volatile buffer until [`sync`](StorageBackend::sync); a
//!    [`crash`](SimBackend::crash) discards (or tears) the unsynced
//!    tail, exactly the state a process finds on restart after a power
//!    loss.
//! 2. **Latency.** Every operation is charged against a
//!    [`DiskProfile`] in *virtual time*, so benchmarks can compare
//!    flush policies (per-event fsync vs group commit) without a real
//!    disk and with perfect reproducibility.
//!
//! The fault model is seeded, so a given seed produces the identical
//! sequence of torn writes and corruptions on every run — the property
//! the crash-recovery test suite depends on.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rivulet_types::Duration;

use crate::backend::{Result, SegmentId, StorageBackend, StorageError};

/// Virtual-time cost of disk operations.
#[derive(Debug, Clone, Copy)]
pub struct DiskProfile {
    /// Fixed cost per `append` call (syscall + copy into the cache).
    pub append_base: Duration,
    /// Additional cost per KiB appended.
    pub append_per_kib: Duration,
    /// Cost of one `sync` (fdatasync): the dominant term on real
    /// hardware, and the reason group commit wins.
    pub fsync: Duration,
}

impl Default for DiskProfile {
    fn default() -> Self {
        // Loosely modeled on a consumer SSD: cheap buffered writes,
        // ~half-millisecond flushes.
        Self {
            append_base: Duration::from_micros(5),
            append_per_kib: Duration::from_micros(10),
            fsync: Duration::from_micros(500),
        }
    }
}

/// Knobs of the crash/corruption fault model.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// On crash, let a random prefix of the unsynced tail survive
    /// (a torn write that partially reached the platter). When false
    /// the entire unsynced tail is lost.
    pub torn_tail: bool,
    /// Probability that a surviving torn tail also has one byte
    /// flipped (media corruption caught only by the record CRC).
    pub corrupt_tail: f64,
    /// Probability that a `sync` call persists only part of the
    /// buffered bytes while still reporting success (lying-fsync
    /// firmware). Recovery must still produce a valid prefix.
    pub partial_fsync: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            torn_tail: true,
            corrupt_tail: 0.0,
            partial_fsync: 0.0,
        }
    }
}

#[derive(Debug, Default)]
struct Segment {
    data: Vec<u8>,
    durable_len: usize,
}

#[derive(Debug)]
struct Inner {
    segments: BTreeMap<SegmentId, Segment>,
    rng: StdRng,
    busy: Duration,
    appends: u64,
    syncs: u64,
    bytes_appended: u64,
}

/// Deterministic simulated disk. Share it between a process factory's
/// incarnations via `Arc` so durable state outlives crashes.
#[derive(Debug)]
pub struct SimBackend {
    profile: DiskProfile,
    faults: FaultConfig,
    inner: Mutex<Inner>,
}

impl SimBackend {
    /// Creates a backend whose fault model draws from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            profile: DiskProfile::default(),
            faults: FaultConfig::default(),
            inner: Mutex::new(Inner {
                segments: BTreeMap::new(),
                rng: StdRng::seed_from_u64(seed),
                busy: Duration::ZERO,
                appends: 0,
                syncs: 0,
                bytes_appended: 0,
            }),
        }
    }

    /// Replaces the latency profile.
    #[must_use]
    pub fn with_profile(mut self, profile: DiskProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Replaces the fault configuration.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Total virtual disk time consumed so far.
    #[must_use]
    pub fn busy(&self) -> Duration {
        self.inner.lock().busy
    }

    /// `(appends, syncs, bytes_appended)` counters.
    #[must_use]
    pub fn op_counts(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (inner.appends, inner.syncs, inner.bytes_appended)
    }

    /// Bytes of segment `id` guaranteed to survive a crash.
    #[must_use]
    pub fn durable_len(&self, id: SegmentId) -> Option<usize> {
        self.inner.lock().segments.get(&id).map(|s| s.durable_len)
    }

    /// Simulates a power loss: every segment's unsynced tail is
    /// discarded, except that with [`FaultConfig::torn_tail`] a random
    /// prefix of it survives (possibly corrupted per
    /// [`FaultConfig::corrupt_tail`]).
    pub fn crash(&self) {
        let inner = &mut *self.inner.lock();
        for segment in inner.segments.values_mut() {
            let tail = segment.data.len() - segment.durable_len;
            if tail == 0 {
                continue;
            }
            let keep = if self.faults.torn_tail {
                inner.rng.gen_range(0..=tail)
            } else {
                0
            };
            segment.data.truncate(segment.durable_len + keep);
            if keep > 0
                && self.faults.corrupt_tail > 0.0
                && inner.rng.gen_bool(self.faults.corrupt_tail)
            {
                let off = inner.rng.gen_range(segment.durable_len..segment.data.len());
                segment.data[off] ^= 1 << inner.rng.gen_range(0u32..8);
            }
        }
    }

    /// Flips one bit at `offset` of segment `id` (targeted corruption
    /// for tests). Does nothing if the segment or offset is absent.
    pub fn inject_corruption(&self, id: SegmentId, offset: usize) {
        let mut inner = self.inner.lock();
        if let Some(segment) = inner.segments.get_mut(&id) {
            if offset < segment.data.len() {
                segment.data[offset] ^= 0x01;
            }
        }
    }
}

impl StorageBackend for SimBackend {
    fn create_segment(&self, id: SegmentId) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.segments.contains_key(&id) {
            return Err(StorageError::SegmentExists(id));
        }
        inner.segments.insert(id, Segment::default());
        Ok(())
    }

    fn append(&self, id: SegmentId, data: &[u8]) -> Result<()> {
        let inner = &mut *self.inner.lock();
        let Some(segment) = inner.segments.get_mut(&id) else {
            return Err(StorageError::MissingSegment(id));
        };
        segment.data.extend_from_slice(data);
        inner.appends += 1;
        inner.bytes_appended += data.len() as u64;
        inner.busy += self.profile.append_base
            + self
                .profile
                .append_per_kib
                .saturating_mul(data.len().div_ceil(1024) as u64);
        Ok(())
    }

    fn sync(&self, id: SegmentId) -> Result<()> {
        let inner = &mut *self.inner.lock();
        let Some(segment) = inner.segments.get_mut(&id) else {
            return Err(StorageError::MissingSegment(id));
        };
        let unsynced = segment.data.len() - segment.durable_len;
        let persisted = if unsynced > 0
            && self.faults.partial_fsync > 0.0
            && inner.rng.gen_bool(self.faults.partial_fsync)
        {
            inner.rng.gen_range(0..unsynced)
        } else {
            unsynced
        };
        segment.durable_len += persisted;
        inner.syncs += 1;
        inner.busy += self.profile.fsync;
        Ok(())
    }

    fn read_segment(&self, id: SegmentId) -> Result<Vec<u8>> {
        self.inner
            .lock()
            .segments
            .get(&id)
            .map(|s| s.data.clone())
            .ok_or(StorageError::MissingSegment(id))
    }

    fn truncate_segment(&self, id: SegmentId, len: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        let Some(segment) = inner.segments.get_mut(&id) else {
            return Err(StorageError::MissingSegment(id));
        };
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < segment.data.len() {
            segment.data.truncate(len);
            segment.durable_len = segment.durable_len.min(len);
        }
        Ok(())
    }

    fn delete_segment(&self, id: SegmentId) -> Result<()> {
        match self.inner.lock().segments.remove(&id) {
            Some(_) => Ok(()),
            None => Err(StorageError::MissingSegment(id)),
        }
    }

    fn list_segments(&self) -> Result<Vec<SegmentId>> {
        Ok(self.inner.lock().segments.keys().copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_tail_lost_on_crash_without_torn_writes() {
        let be = SimBackend::new(1).with_faults(FaultConfig {
            torn_tail: false,
            corrupt_tail: 0.0,
            partial_fsync: 0.0,
        });
        be.create_segment(0).unwrap();
        be.append(0, b"durable").unwrap();
        be.sync(0).unwrap();
        be.append(0, b" volatile").unwrap();
        be.crash();
        assert_eq!(be.read_segment(0).unwrap(), b"durable");
    }

    #[test]
    fn torn_tail_is_a_prefix_of_the_unsynced_bytes() {
        let be = SimBackend::new(7);
        be.create_segment(0).unwrap();
        be.append(0, b"base|").unwrap();
        be.sync(0).unwrap();
        be.append(0, b"tail-bytes").unwrap();
        be.crash();
        let data = be.read_segment(0).unwrap();
        assert!(data.starts_with(b"base|"));
        assert!(b"base|tail-bytes".starts_with(&data[..]));
    }

    #[test]
    fn same_seed_same_crash_outcome() {
        let run = |seed| {
            let be = SimBackend::new(seed);
            be.create_segment(0).unwrap();
            be.append(0, b"synced!").unwrap();
            be.sync(0).unwrap();
            be.append(0, b"0123456789abcdef").unwrap();
            be.crash();
            be.read_segment(0).unwrap()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn virtual_time_charges_fsync_heaviest() {
        let be = SimBackend::new(0);
        be.create_segment(0).unwrap();
        be.append(0, &[0u8; 100]).unwrap();
        let after_append = be.busy();
        be.sync(0).unwrap();
        let after_sync = be.busy();
        assert!(after_sync - after_append > after_append - Duration::ZERO);
    }

    #[test]
    fn partial_fsync_advances_durability_partially() {
        let be = SimBackend::new(3).with_faults(FaultConfig {
            torn_tail: false,
            corrupt_tail: 0.0,
            partial_fsync: 1.0,
        });
        be.create_segment(0).unwrap();
        be.append(0, &[7u8; 64]).unwrap();
        be.sync(0).unwrap();
        assert!(be.durable_len(0).unwrap() < 64);
    }

    #[test]
    fn inject_corruption_flips_one_bit() {
        let be = SimBackend::new(0);
        be.create_segment(0).unwrap();
        be.append(0, b"abcd").unwrap();
        be.inject_corruption(0, 2);
        assert_eq!(be.read_segment(0).unwrap(), b"ab\x62d");
    }
}
