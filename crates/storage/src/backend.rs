//! The storage abstraction the WAL writes through.
//!
//! A backend is a flat namespace of numbered *segments* — append-only
//! byte files. The two implementations are [`crate::fs::FsBackend`]
//! (real files via `std::fs`) and [`crate::sim::SimBackend`]
//! (deterministic in-memory disk with a crash/corruption fault model
//! and virtual-time cost accounting, for simulation and tests).
//!
//! Methods take `&self` so a backend can be shared as
//! `Arc<dyn StorageBackend>` between a live process and the recovery
//! path that replaces it after a crash.

use std::error::Error;
use std::fmt;

/// Identifier of one log segment. Segments are created with strictly
/// increasing ids; recovery scans them in ascending order.
pub type SegmentId = u64;

/// Errors surfaced by storage backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io(String),
    /// The segment does not exist.
    MissingSegment(SegmentId),
    /// The segment already exists.
    SegmentExists(SegmentId),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(msg) => write!(f, "storage i/o error: {msg}"),
            StorageError::MissingSegment(id) => write!(f, "segment {id} does not exist"),
            StorageError::SegmentExists(id) => write!(f, "segment {id} already exists"),
        }
    }
}

impl Error for StorageError {}

/// Convenience alias for backend results.
pub type Result<T> = std::result::Result<T, StorageError>;

/// An append-only segmented byte store.
///
/// Durability contract: bytes passed to [`append`](Self::append) are
/// *buffered* and survive a crash only once a subsequent
/// [`sync`](Self::sync) on the same segment returns. The WAL relies on
/// this split to implement group commit.
pub trait StorageBackend: Send + Sync {
    /// Creates an empty segment.
    ///
    /// # Errors
    ///
    /// [`StorageError::SegmentExists`] if `id` is already present.
    fn create_segment(&self, id: SegmentId) -> Result<()>;

    /// Appends `data` to the end of segment `id` (buffered, not yet
    /// durable).
    ///
    /// # Errors
    ///
    /// [`StorageError::MissingSegment`] if `id` does not exist.
    fn append(&self, id: SegmentId, data: &[u8]) -> Result<()>;

    /// Makes all previously appended bytes of segment `id` durable.
    ///
    /// # Errors
    ///
    /// [`StorageError::MissingSegment`] if `id` does not exist.
    fn sync(&self, id: SegmentId) -> Result<()>;

    /// Reads the full contents of segment `id`.
    ///
    /// # Errors
    ///
    /// [`StorageError::MissingSegment`] if `id` does not exist.
    fn read_segment(&self, id: SegmentId) -> Result<Vec<u8>>;

    /// Truncates segment `id` to `len` bytes (used by recovery to cut
    /// a torn tail). A `len` at or beyond the current size is a no-op.
    ///
    /// # Errors
    ///
    /// [`StorageError::MissingSegment`] if `id` does not exist.
    fn truncate_segment(&self, id: SegmentId, len: u64) -> Result<()>;

    /// Deletes segment `id` (compaction).
    ///
    /// # Errors
    ///
    /// [`StorageError::MissingSegment`] if `id` does not exist.
    fn delete_segment(&self, id: SegmentId) -> Result<()>;

    /// Lists existing segment ids in ascending order.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the namespace cannot be enumerated.
    fn list_segments(&self) -> Result<Vec<SegmentId>>;
}

impl fmt::Debug for dyn StorageBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("dyn StorageBackend")
    }
}
