//! Segmented write-ahead log with group commit, checkpoints, and
//! prefix compaction.
//!
//! The WAL is the durability layer under Gapless delivery: a process
//! appends every newly-stored event *before* acking it to the ring or
//! delivering it to applications, so a crash can never lose an event
//! the rest of the home believes this replica holds.
//!
//! # Group commit
//!
//! Frames accumulate in an in-memory buffer and reach the backend in
//! one `append` + `sync` pair per flush. [`FlushPolicy`] picks the
//! trade-off: `PerEvent` pays one fsync per event (lowest loss window,
//! lowest throughput), `EveryN` amortizes the fsync over a batch, and
//! `EveryInterval` leaves flushing to a caller-armed timer.
//!
//! # Recovery
//!
//! [`Wal::open`] scans segments in ascending id order and replays
//! frames until the first torn or corrupt one. Everything before that
//! point is the *durable prefix* and is returned in [`Recovered`];
//! everything after it — the rest of that segment and any later
//! segments — is discarded (truncated/deleted) so subsequent appends
//! continue a clean log.
//!
//! # Compaction
//!
//! A [`Checkpoint`] records per-sensor processed watermarks. A segment
//! older than the newest checkpoint whose events are all at or below
//! those watermarks can never be needed again and is deleted by
//! [`Wal::compact`]. Compaction only removes a contiguous prefix, so
//! the log on disk always remains a suffix of the logical log.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use rivulet_obs::Recorder;
use rivulet_types::{Duration, Event, SensorId};

use crate::backend::{Result, SegmentId, StorageBackend};
use crate::ledger::LedgerEntry;
use crate::record::{decode_frame, encode_frame, Checkpoint, WalRecord};

/// When buffered frames are pushed to the backend and fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush (and fsync) after every appended event.
    PerEvent,
    /// Flush once `n` events are buffered. The owner should still
    /// flush on a timer or tick so a quiet period cannot strand a
    /// partial batch.
    EveryN(usize),
    /// Never flush from [`Wal::append_event`]; the owner arms a timer
    /// with this period and calls [`Wal::flush`] when it fires.
    EveryInterval(Duration),
}

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Group-commit policy.
    pub flush_policy: FlushPolicy,
    /// Rotate to a fresh segment once the tail would exceed this size.
    pub segment_max_bytes: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            flush_policy: FlushPolicy::PerEvent,
            segment_max_bytes: 256 * 1024,
        }
    }
}

/// Counters exposed for tests, benchmarks, and debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalMetrics {
    /// Events appended (buffered) since open.
    pub appends: u64,
    /// Flushes (backend append + sync pairs) issued.
    pub flushes: u64,
    /// Bytes handed to the backend.
    pub bytes_flushed: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Segments created by rotation (not counting the initial one).
    pub segments_created: u64,
    /// Segments deleted by compaction.
    pub segments_deleted: u64,
    /// Execution-integrity ledger entries appended (each one flushed
    /// immediately).
    pub ledger_appends: u64,
}

/// What [`Wal::open`] reconstructed from the durable prefix.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Every event in the durable prefix, in append order.
    pub events: Vec<Event>,
    /// The newest checkpoint in the durable prefix, if any.
    pub checkpoint: Option<Checkpoint>,
    /// Every execution-integrity ledger entry in the durable prefix,
    /// in append (= chain) order — the input to
    /// [`crate::ledger::LedgerVerifier::verify`].
    pub ledger: Vec<LedgerEntry>,
    /// Bytes past the durable prefix that were discarded (torn tail,
    /// corrupt frames, and any segments beyond the first bad frame).
    pub dropped_bytes: usize,
}

/// Per-segment summary used to decide compaction eligibility.
#[derive(Debug, Default, Clone)]
struct SegmentIndex {
    /// Highest event sequence per sensor flushed into the segment.
    max_seq: HashMap<SensorId, u64>,
    /// Whether the segment holds ledger entries. Such segments are
    /// never compacted: the hash chain must survive in full so a
    /// recovered node can re-verify it from the genesis hash.
    has_ledger: bool,
}

/// A segmented write-ahead log over a [`StorageBackend`].
#[derive(Debug)]
pub struct Wal {
    backend: Arc<dyn StorageBackend>,
    options: WalOptions,
    tail: SegmentId,
    tail_bytes: usize,
    pending: Vec<u8>,
    pending_events: usize,
    pending_index: SegmentIndex,
    index: BTreeMap<SegmentId, SegmentIndex>,
    latest_checkpoint_segment: Option<SegmentId>,
    metrics: WalMetrics,
    obs: Recorder,
}

impl Wal {
    /// Opens the log on `backend`, recovering the durable prefix and
    /// preparing the tail segment for new appends.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        options: WalOptions,
    ) -> Result<(Self, Recovered)> {
        let segments = backend.list_segments()?;
        let mut recovered = Recovered::default();
        let mut index: BTreeMap<SegmentId, SegmentIndex> = BTreeMap::new();
        let mut latest_checkpoint_segment = None;
        let mut tail: Option<(SegmentId, usize)> = None;
        let mut stop: Option<(SegmentId, usize)> = None;

        'scan: for &seg in &segments {
            let data = backend.read_segment(seg)?;
            let entry = index.entry(seg).or_default();
            let mut offset = 0;
            while offset < data.len() {
                match decode_frame(&data[offset..]) {
                    Ok((record, used)) => {
                        match record {
                            WalRecord::Event(event) => {
                                let slot = entry.max_seq.entry(event.id.sensor).or_insert(0);
                                *slot = (*slot).max(event.id.seq);
                                recovered.events.push(event);
                            }
                            WalRecord::Checkpoint(cp) => {
                                latest_checkpoint_segment = Some(seg);
                                recovered.checkpoint = Some(cp);
                            }
                            WalRecord::Ledger(ledger_entry) => {
                                entry.has_ledger = true;
                                recovered.ledger.push(ledger_entry);
                            }
                        }
                        offset += used;
                    }
                    Err(_) => {
                        recovered.dropped_bytes += data.len() - offset;
                        stop = Some((seg, offset));
                        break 'scan;
                    }
                }
            }
            tail = Some((seg, data.len()));
        }

        if let Some((bad_seg, valid_len)) = stop {
            // The durable prefix ends inside `bad_seg`: cut its tail
            // and discard everything after it.
            backend.truncate_segment(bad_seg, valid_len as u64)?;
            for &seg in segments.iter().filter(|&&s| s > bad_seg) {
                recovered.dropped_bytes += backend.read_segment(seg)?.len();
                backend.delete_segment(seg)?;
                index.remove(&seg);
            }
            tail = Some((bad_seg, valid_len));
        }

        let (tail, tail_bytes) = match tail {
            Some(t) => t,
            None => {
                backend.create_segment(0)?;
                (0, 0)
            }
        };
        index.entry(tail).or_default();

        Ok((
            Self {
                backend,
                options,
                tail,
                tail_bytes,
                pending: Vec::new(),
                pending_events: 0,
                pending_index: SegmentIndex::default(),
                index,
                latest_checkpoint_segment,
                metrics: WalMetrics::default(),
                obs: Recorder::default(),
            },
            recovered,
        ))
    }

    /// Attaches the unified observability recorder; subsequent
    /// appends/flushes/checkpoints/compactions are mirrored into it as
    /// `wal.*` metrics. The process runtime calls this right after
    /// [`Wal::open`] (the recorder comes from the driver, which the WAL
    /// cannot see at open time).
    pub fn attach_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// Buffers `event` and flushes if the policy calls for it.
    /// Returns whether a flush happened — until it has (or
    /// [`Wal::flush`] is called), the event is **not durable**.
    ///
    /// # Errors
    ///
    /// Propagates backend failures from an implied flush.
    pub fn append_event(&mut self, event: &Event) -> Result<bool> {
        let frame = encode_frame(&WalRecord::Event(event.clone()));
        self.pending.extend_from_slice(&frame);
        self.pending_events += 1;
        let slot = self
            .pending_index
            .max_seq
            .entry(event.id.sensor)
            .or_insert(0);
        *slot = (*slot).max(event.id.seq);
        self.metrics.appends += 1;
        self.obs.inc("wal.appends");
        let should_flush = match self.options.flush_policy {
            FlushPolicy::PerEvent => true,
            FlushPolicy::EveryN(n) => self.pending_events >= n.max(1),
            FlushPolicy::EveryInterval(_) => false,
        };
        if should_flush {
            self.flush()?;
        }
        Ok(should_flush)
    }

    /// Appends a checkpoint and flushes immediately: a checkpoint is
    /// only useful durable, and compaction keys off its position.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn append_checkpoint(&mut self, checkpoint: &Checkpoint) -> Result<()> {
        let frame = encode_frame(&WalRecord::Checkpoint(checkpoint.clone()));
        self.pending.extend_from_slice(&frame);
        self.flush()?;
        self.latest_checkpoint_segment = Some(self.tail);
        self.metrics.checkpoints += 1;
        self.obs.inc("wal.checkpoints");
        Ok(())
    }

    /// Appends an execution-integrity ledger entry and flushes
    /// immediately: routine transitions are write-ahead — the
    /// coordinator must not send the transition's protocol frames until
    /// the chained record is durable, or a crash could fire actuators
    /// with no auditable cause.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn append_ledger(&mut self, entry: &LedgerEntry) -> Result<()> {
        let frame = encode_frame(&WalRecord::Ledger(entry.clone()));
        self.pending.extend_from_slice(&frame);
        self.pending_index.has_ledger = true;
        self.flush()?;
        self.metrics.ledger_appends += 1;
        self.obs.inc("ledger.appends");
        Ok(())
    }

    /// Pushes all buffered frames to the backend and fsyncs, rotating
    /// to a new segment first when the tail is full. No-op when
    /// nothing is pending.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if self.tail_bytes > 0
            && self.tail_bytes + self.pending.len() > self.options.segment_max_bytes
        {
            self.tail += 1;
            self.backend.create_segment(self.tail)?;
            self.tail_bytes = 0;
            self.index.insert(self.tail, SegmentIndex::default());
            self.metrics.segments_created += 1;
            self.obs.inc("wal.segments_created");
        }
        self.backend.append(self.tail, &self.pending)?;
        self.backend.sync(self.tail)?;
        self.tail_bytes += self.pending.len();
        self.metrics.flushes += 1;
        self.metrics.bytes_flushed += self.pending.len() as u64;
        self.obs.inc("wal.flushes");
        self.obs.add("wal.bytes_flushed", self.pending.len() as u64);
        self.obs
            .observe("wal.flush_bytes", self.pending.len() as u64);
        let tail_index = self.index.entry(self.tail).or_default();
        for (sensor, seq) in self.pending_index.max_seq.drain() {
            let slot = tail_index.max_seq.entry(sensor).or_insert(0);
            *slot = (*slot).max(seq);
        }
        tail_index.has_ledger |= self.pending_index.has_ledger;
        self.pending_index.has_ledger = false;
        self.pending.clear();
        self.pending_events = 0;
        Ok(())
    }

    /// Deletes the longest prefix of sealed segments whose events are
    /// all covered by `processed` watermarks, never touching the tail
    /// or the segment holding the newest checkpoint. Returns how many
    /// segments were deleted.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn compact(&mut self, processed: &HashMap<SensorId, u64>) -> Result<usize> {
        let Some(checkpoint_seg) = self.latest_checkpoint_segment else {
            return Ok(0);
        };
        let candidates: Vec<SegmentId> = self
            .index
            .keys()
            .copied()
            .filter(|&s| s < checkpoint_seg && s < self.tail)
            .collect();
        let mut deleted = 0;
        for seg in candidates {
            // Ledger segments are immortal: dropping one would sever
            // the hash chain a recovered node replays from genesis.
            if self.index[&seg].has_ledger {
                break;
            }
            let covered = self.index[&seg]
                .max_seq
                .iter()
                .all(|(sensor, &max)| processed.get(sensor).is_some_and(|&p| p >= max));
            if !covered {
                break;
            }
            self.backend.delete_segment(seg)?;
            self.index.remove(&seg);
            deleted += 1;
            self.metrics.segments_deleted += 1;
            self.obs.inc("wal.segments_deleted");
        }
        Ok(deleted)
    }

    /// Number of events buffered but not yet durable.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.pending_events
    }

    /// The current tail segment id.
    #[must_use]
    pub fn tail_segment(&self) -> SegmentId {
        self.tail
    }

    /// Ids of live (non-compacted) segments, ascending.
    #[must_use]
    pub fn segments(&self) -> Vec<SegmentId> {
        self.index.keys().copied().collect()
    }

    /// The configured options.
    #[must_use]
    pub fn options(&self) -> &WalOptions {
        &self.options
    }

    /// Counter snapshot.
    #[must_use]
    pub fn metrics(&self) -> WalMetrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FaultConfig, SimBackend};
    use rivulet_types::{EventId, EventKind, Payload, Time};

    fn event(sensor: u32, seq: u64) -> Event {
        Event {
            id: EventId::new(SensorId(sensor), seq),
            kind: EventKind::Motion,
            payload: Payload::Empty,
            emitted_at: Time::from_millis(seq),
            epoch: None,
        }
    }

    fn sim() -> Arc<SimBackend> {
        Arc::new(SimBackend::new(0).with_faults(FaultConfig {
            torn_tail: false,
            corrupt_tail: 0.0,
            partial_fsync: 0.0,
        }))
    }

    #[test]
    fn group_commit_beats_per_event_fsync_in_virtual_disk_time() {
        let disk_time = |policy: FlushPolicy| {
            let backend = sim();
            let options = WalOptions {
                flush_policy: policy,
                ..WalOptions::default()
            };
            let (mut wal, _) =
                Wal::open(backend.clone() as Arc<dyn StorageBackend>, options).unwrap();
            for seq in 0..1000 {
                wal.append_event(&event(1, seq)).unwrap();
            }
            wal.flush().unwrap();
            backend.busy()
        };
        let per_event = disk_time(FlushPolicy::PerEvent);
        let grouped = disk_time(FlushPolicy::EveryN(16));
        assert!(
            grouped.as_micros() * 4 < per_event.as_micros(),
            "group commit must amortize fsyncs: {grouped} !< {per_event} / 4"
        );
    }

    #[test]
    fn append_flush_recover_roundtrip() {
        let backend = sim();
        let (mut wal, rec) = Wal::open(
            backend.clone() as Arc<dyn StorageBackend>,
            WalOptions::default(),
        )
        .unwrap();
        assert!(rec.events.is_empty());
        for seq in 1..=10 {
            assert!(wal.append_event(&event(1, seq)).unwrap());
        }
        drop(wal);
        let (_, rec) =
            Wal::open(backend as Arc<dyn StorageBackend>, WalOptions::default()).unwrap();
        assert_eq!(rec.events.len(), 10);
        assert_eq!(rec.events.last().unwrap().id.seq, 10);
        assert_eq!(rec.dropped_bytes, 0);
    }

    #[test]
    fn group_commit_defers_durability_until_flush() {
        let backend = sim();
        let options = WalOptions {
            flush_policy: FlushPolicy::EveryN(4),
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(backend.clone() as Arc<dyn StorageBackend>, options).unwrap();
        assert!(!wal.append_event(&event(1, 1)).unwrap());
        assert!(!wal.append_event(&event(1, 2)).unwrap());
        assert!(!wal.append_event(&event(1, 3)).unwrap());
        assert_eq!(wal.pending_events(), 3);
        // Crash now: nothing was flushed, so nothing survives.
        backend.crash();
        let (_, rec) = Wal::open(backend.clone() as Arc<dyn StorageBackend>, options).unwrap();
        assert!(rec.events.is_empty());
    }

    #[test]
    fn every_n_flushes_on_the_nth_append() {
        let backend = sim();
        let options = WalOptions {
            flush_policy: FlushPolicy::EveryN(3),
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(backend as Arc<dyn StorageBackend>, options).unwrap();
        assert!(!wal.append_event(&event(1, 1)).unwrap());
        assert!(!wal.append_event(&event(1, 2)).unwrap());
        assert!(wal.append_event(&event(1, 3)).unwrap());
        assert_eq!(wal.pending_events(), 0);
        assert_eq!(wal.metrics().flushes, 1);
    }

    #[test]
    fn rotation_seals_segments_at_size_limit() {
        let backend = sim();
        let options = WalOptions {
            flush_policy: FlushPolicy::PerEvent,
            segment_max_bytes: 64,
        };
        let (mut wal, _) = Wal::open(backend as Arc<dyn StorageBackend>, options).unwrap();
        for seq in 1..=20 {
            wal.append_event(&event(1, seq)).unwrap();
        }
        assert!(
            wal.segments().len() > 1,
            "expected rotation, got {:?}",
            wal.segments()
        );
    }

    #[test]
    fn recovery_stops_at_corruption_and_truncates() {
        let backend = sim();
        let (mut wal, _) = Wal::open(
            backend.clone() as Arc<dyn StorageBackend>,
            WalOptions::default(),
        )
        .unwrap();
        for seq in 1..=5 {
            wal.append_event(&event(1, seq)).unwrap();
        }
        drop(wal);
        let len = backend.read_segment(0).unwrap().len();
        // Corrupt somewhere in the middle: recovery keeps only the
        // frames before the damaged one.
        backend.inject_corruption(0, len / 2);
        let (wal, rec) = Wal::open(
            backend.clone() as Arc<dyn StorageBackend>,
            WalOptions::default(),
        )
        .unwrap();
        assert!(rec.events.len() < 5);
        assert!(rec.dropped_bytes > 0);
        // The surviving events are an exact prefix 1..=k.
        for (i, ev) in rec.events.iter().enumerate() {
            assert_eq!(ev.id.seq, i as u64 + 1);
        }
        // And the truncated log accepts new appends cleanly.
        let mut wal = wal;
        wal.append_event(&event(1, 99)).unwrap();
        let (_, rec2) =
            Wal::open(backend as Arc<dyn StorageBackend>, WalOptions::default()).unwrap();
        assert_eq!(rec2.dropped_bytes, 0);
        assert_eq!(rec2.events.last().unwrap().id.seq, 99);
    }

    #[test]
    fn checkpoint_recovers_and_compaction_drops_covered_prefix() {
        let backend = sim();
        let options = WalOptions {
            flush_policy: FlushPolicy::PerEvent,
            segment_max_bytes: 64,
        };
        let (mut wal, _) = Wal::open(backend.clone() as Arc<dyn StorageBackend>, options).unwrap();
        for seq in 1..=20 {
            wal.append_event(&event(1, seq)).unwrap();
        }
        let before = wal.segments().len();
        assert!(before > 2);
        let cp = Checkpoint {
            at: Time::from_secs(1),
            processed: vec![(SensorId(1), 20)],
        };
        wal.append_checkpoint(&cp).unwrap();
        let mut processed = HashMap::new();
        processed.insert(SensorId(1), 20u64);
        let deleted = wal.compact(&processed).unwrap();
        assert!(deleted > 0);
        assert!(wal.segments().len() < before + 1);
        // Recovery after compaction still sees the checkpoint.
        drop(wal);
        let (_, rec) = Wal::open(backend as Arc<dyn StorageBackend>, options).unwrap();
        assert_eq!(rec.checkpoint, Some(cp));
    }

    #[test]
    fn compaction_spares_uncovered_segments() {
        let backend = sim();
        let options = WalOptions {
            flush_policy: FlushPolicy::PerEvent,
            segment_max_bytes: 64,
        };
        let (mut wal, _) = Wal::open(backend as Arc<dyn StorageBackend>, options).unwrap();
        for seq in 1..=20 {
            wal.append_event(&event(1, seq)).unwrap();
        }
        let cp = Checkpoint {
            at: Time::from_secs(1),
            processed: vec![(SensorId(1), 0)],
        };
        wal.append_checkpoint(&cp).unwrap();
        // Nothing processed yet: every event segment must survive.
        let deleted = wal.compact(&HashMap::new()).unwrap();
        assert_eq!(deleted, 0);
    }

    #[test]
    fn ledger_entries_recover_in_chain_order_and_verify() {
        use crate::ledger::{LedgerChain, LedgerVerifier, RoutineTransition};
        use rivulet_types::RoutineId;
        let backend = sim();
        let (mut wal, _) = Wal::open(
            backend.clone() as Arc<dyn StorageBackend>,
            WalOptions::default(),
        )
        .unwrap();
        let mut chain = LedgerChain::seeded(42);
        for instance in 0..4u64 {
            let staged = chain.append(
                RoutineId(1),
                instance,
                RoutineTransition::Staged,
                Time::from_millis(instance * 10),
                Vec::new(),
            );
            wal.append_ledger(&staged).unwrap();
            wal.append_event(&event(1, instance + 1)).unwrap();
            let committed = chain.append(
                RoutineId(1),
                instance,
                RoutineTransition::Committed,
                Time::from_millis(instance * 10 + 5),
                Vec::new(),
            );
            wal.append_ledger(&committed).unwrap();
        }
        assert_eq!(wal.metrics().ledger_appends, 8);
        drop(wal);
        let (_, rec) =
            Wal::open(backend as Arc<dyn StorageBackend>, WalOptions::default()).unwrap();
        assert_eq!(rec.ledger.len(), 8);
        assert_eq!(rec.events.len(), 4);
        let trail = LedgerVerifier::verify(42, &rec.ledger).expect("recovered chain verifies");
        assert_eq!(trail.len(), 8);
    }

    #[test]
    fn compaction_never_drops_ledger_segments() {
        use crate::ledger::{LedgerChain, RoutineTransition};
        use rivulet_types::RoutineId;
        let backend = sim();
        let options = WalOptions {
            flush_policy: FlushPolicy::PerEvent,
            segment_max_bytes: 64,
        };
        let (mut wal, _) = Wal::open(backend.clone() as Arc<dyn StorageBackend>, options).unwrap();
        let mut chain = LedgerChain::seeded(7);
        // Segment 0 gets a ledger entry, then events roll segments.
        wal.append_ledger(&chain.append(
            RoutineId(1),
            0,
            RoutineTransition::Staged,
            Time::ZERO,
            Vec::new(),
        ))
        .unwrap();
        for seq in 1..=20 {
            wal.append_event(&event(1, seq)).unwrap();
        }
        wal.append_checkpoint(&Checkpoint {
            at: Time::from_secs(1),
            processed: vec![(SensorId(1), 20)],
        })
        .unwrap();
        let mut processed = HashMap::new();
        processed.insert(SensorId(1), 20u64);
        let deleted = wal.compact(&processed).unwrap();
        // The ledger entry sits in the first segment, so the contiguous
        // compactable prefix is empty.
        assert_eq!(deleted, 0);
        drop(wal);
        let (_, rec) = Wal::open(backend as Arc<dyn StorageBackend>, options).unwrap();
        assert_eq!(rec.ledger.len(), 1, "the chained entry must survive");
    }

    #[test]
    fn fs_backend_end_to_end() {
        use crate::fs::FsBackend;
        let dir =
            std::env::temp_dir().join(format!("rivulet-wal-fs-{}-{}", std::process::id(), line!()));
        let backend = Arc::new(FsBackend::open(&dir).unwrap());
        let (mut wal, _) = Wal::open(
            backend.clone() as Arc<dyn StorageBackend>,
            WalOptions::default(),
        )
        .unwrap();
        for seq in 1..=8 {
            wal.append_event(&event(2, seq)).unwrap();
        }
        drop(wal);
        let (_, rec) =
            Wal::open(backend as Arc<dyn StorageBackend>, WalOptions::default()).unwrap();
        assert_eq!(rec.events.len(), 8);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
