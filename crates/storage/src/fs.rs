//! Real-filesystem storage backend (`std::fs`).
//!
//! Segments are files named `seg-XXXXXXXX.wal` inside one directory
//! per process. Appends buffer in the OS page cache;
//! [`StorageBackend::sync`] maps to `fdatasync`, matching the
//! durability split the [`StorageBackend`] contract requires.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::backend::{Result, SegmentId, StorageBackend, StorageError};

fn io_err(e: &std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

/// Storage backend writing segments as files under one directory.
#[derive(Debug)]
pub struct FsBackend {
    dir: PathBuf,
}

impl FsBackend {
    /// Opens (creating if needed) the backend rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&e))?;
        Ok(Self { dir })
    }

    /// The directory holding this backend's segments.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(&self, id: SegmentId) -> PathBuf {
        self.dir.join(format!("seg-{id:08}.wal"))
    }

    fn open_existing(&self, id: SegmentId, write: bool) -> Result<File> {
        OpenOptions::new()
            .read(!write)
            .write(write)
            .append(write)
            .open(self.segment_path(id))
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::NotFound {
                    StorageError::MissingSegment(id)
                } else {
                    io_err(&e)
                }
            })
    }
}

impl StorageBackend for FsBackend {
    fn create_segment(&self, id: SegmentId) -> Result<()> {
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(self.segment_path(id))
        {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                Err(StorageError::SegmentExists(id))
            }
            Err(e) => Err(io_err(&e)),
        }
    }

    fn append(&self, id: SegmentId, data: &[u8]) -> Result<()> {
        let mut file = self.open_existing(id, true)?;
        file.write_all(data).map_err(|e| io_err(&e))
    }

    fn sync(&self, id: SegmentId) -> Result<()> {
        let file = self.open_existing(id, true)?;
        file.sync_data().map_err(|e| io_err(&e))
    }

    fn read_segment(&self, id: SegmentId) -> Result<Vec<u8>> {
        let mut file = self.open_existing(id, false)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf).map_err(|e| io_err(&e))?;
        Ok(buf)
    }

    fn truncate_segment(&self, id: SegmentId, len: u64) -> Result<()> {
        let file = OpenOptions::new()
            .write(true)
            .open(self.segment_path(id))
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::NotFound {
                    StorageError::MissingSegment(id)
                } else {
                    io_err(&e)
                }
            })?;
        let current = file.metadata().map_err(|e| io_err(&e))?.len();
        if len < current {
            file.set_len(len).map_err(|e| io_err(&e))?;
            file.sync_data().map_err(|e| io_err(&e))?;
        }
        Ok(())
    }

    fn delete_segment(&self, id: SegmentId) -> Result<()> {
        fs::remove_file(self.segment_path(id)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::MissingSegment(id)
            } else {
                io_err(&e)
            }
        })
    }

    fn list_segments(&self) -> Result<Vec<SegmentId>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.dir).map_err(|e| io_err(&e))? {
            let entry = entry.map_err(|e| io_err(&e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(digits) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".wal"))
            {
                if let Ok(id) = digits.parse::<SegmentId>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir() -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("rivulet-fs-backend-{}-{n}", std::process::id()))
    }

    #[test]
    fn create_append_read_roundtrip() {
        let dir = scratch_dir();
        let be = FsBackend::open(&dir).unwrap();
        be.create_segment(0).unwrap();
        be.append(0, b"hello ").unwrap();
        be.append(0, b"wal").unwrap();
        be.sync(0).unwrap();
        assert_eq!(be.read_segment(0).unwrap(), b"hello wal");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn list_sorts_and_parses_names() {
        let dir = scratch_dir();
        let be = FsBackend::open(&dir).unwrap();
        be.create_segment(2).unwrap();
        be.create_segment(0).unwrap();
        be.create_segment(10).unwrap();
        fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        assert_eq!(be.list_segments().unwrap(), vec![0, 2, 10]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn truncate_cuts_tail_and_delete_removes() {
        let dir = scratch_dir();
        let be = FsBackend::open(&dir).unwrap();
        be.create_segment(1).unwrap();
        be.append(1, b"0123456789").unwrap();
        be.truncate_segment(1, 4).unwrap();
        assert_eq!(be.read_segment(1).unwrap(), b"0123");
        // Truncating beyond the end is a no-op, never an extension.
        be.truncate_segment(1, 100).unwrap();
        assert_eq!(be.read_segment(1).unwrap(), b"0123");
        be.delete_segment(1).unwrap();
        assert_eq!(
            be.delete_segment(1).unwrap_err(),
            StorageError::MissingSegment(1)
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_segment_errors() {
        let dir = scratch_dir();
        let be = FsBackend::open(&dir).unwrap();
        assert_eq!(
            be.append(7, b"x").unwrap_err(),
            StorageError::MissingSegment(7)
        );
        assert_eq!(
            be.read_segment(7).unwrap_err(),
            StorageError::MissingSegment(7)
        );
        be.create_segment(7).unwrap();
        assert_eq!(
            be.create_segment(7).unwrap_err(),
            StorageError::SegmentExists(7)
        );
        fs::remove_dir_all(dir).unwrap();
    }
}
