//! CRC-32 (IEEE 802.3 polynomial) used to checksum every WAL record.
//!
//! Torn or bit-flipped tails are the failure mode a write-ahead log
//! must detect on recovery; a per-record checksum lets the scanner stop
//! at the first record the disk did not persist intact.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 checksum of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_check_value() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"rivulet wal record".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
