//! Property tests for WAL crash recovery.
//!
//! The contract under test: for *any* crash point mid-append, recovery
//! replays exactly the durable prefix of the log — nothing more than
//! what was appended, nothing less than what was fsynced — and the
//! whole scenario is byte-identical when re-run with the same seed.

use std::sync::Arc;

use proptest::prelude::*;
use rivulet_storage::{
    Checkpoint, FaultConfig, FlushPolicy, SimBackend, StorageBackend, Wal, WalOptions,
};
use rivulet_types::{Event, EventId, EventKind, SensorId, Time};

fn ev(i: u64) -> Event {
    Event::new(
        EventId::new(SensorId((i % 3) as u32), i),
        EventKind::Motion,
        Time::from_millis(i),
    )
}

struct Outcome {
    /// Events handed to `append_event`, in order.
    appended: Vec<Event>,
    /// How many of them the WAL had confirmed durable (flushed) before
    /// the crash.
    durable: usize,
    /// Events `Wal::open` recovered after the crash.
    recovered: Vec<Event>,
    /// Raw bytes of every surviving segment after recovery truncated
    /// the torn tail.
    segments: Vec<(u64, Vec<u8>)>,
}

/// Appends `n` events under `EveryN(flush_every)`, crashes the disk,
/// and reopens the log.
fn run(seed: u64, n: usize, flush_every: usize, seg_max: usize, faults: FaultConfig) -> Outcome {
    let backend = Arc::new(SimBackend::new(seed).with_faults(faults));
    let options = WalOptions {
        flush_policy: FlushPolicy::EveryN(flush_every),
        segment_max_bytes: seg_max,
    };
    let (mut wal, fresh) =
        Wal::open(Arc::clone(&backend) as Arc<dyn StorageBackend>, options).expect("open");
    assert!(fresh.events.is_empty(), "a fresh log recovers nothing");

    let mut appended = Vec::with_capacity(n);
    let mut durable = 0;
    for i in 0..n {
        let event = ev(i as u64);
        let flushed = wal.append_event(&event).expect("append");
        appended.push(event);
        if flushed {
            durable = i + 1;
        }
    }

    backend.crash();
    drop(wal);

    let (wal, recovered) =
        Wal::open(Arc::clone(&backend) as Arc<dyn StorageBackend>, options).expect("reopen");
    let segments: Vec<(u64, Vec<u8>)> = wal
        .segments()
        .into_iter()
        .map(|id| (id, backend.read_segment(id).expect("segment")))
        .collect();
    Outcome {
        appended,
        durable,
        recovered: recovered.events,
        segments,
    }
}

proptest! {
    /// With an honest fsync, recovery returns a prefix of the appended
    /// events that covers at least everything confirmed durable. The
    /// torn tail may contribute extra *complete* frames beyond the last
    /// fsync, but never reorders, invents, or drops interior events.
    #[test]
    fn recovery_is_exactly_the_durable_prefix(
        seed in 0u64..10_000,
        n in 1usize..120,
        flush_every in 1usize..8,
        seg_max in 64usize..2048,
    ) {
        let faults = FaultConfig { torn_tail: true, corrupt_tail: 0.0, partial_fsync: 0.0 };
        let out = run(seed, n, flush_every, seg_max, faults);
        prop_assert!(
            out.recovered.len() >= out.durable,
            "lost durable events: recovered {} < durable {}",
            out.recovered.len(),
            out.durable
        );
        prop_assert!(out.recovered.len() <= out.appended.len());
        prop_assert_eq!(&out.recovered[..], &out.appended[..out.recovered.len()]);
    }

    /// Under a hostile disk (bit rot in the torn tail, firmware that
    /// lies about fsync) the durability *guarantee* is gone, but
    /// recovery must still return a clean prefix — the CRC framing has
    /// to catch whatever the fault model mangled.
    #[test]
    fn recovery_is_a_prefix_even_with_corruption_and_lying_fsync(
        seed in 0u64..10_000,
        n in 1usize..120,
        flush_every in 1usize..8,
        seg_max in 64usize..2048,
    ) {
        let faults = FaultConfig { torn_tail: true, corrupt_tail: 0.8, partial_fsync: 0.5 };
        let out = run(seed, n, flush_every, seg_max, faults);
        prop_assert!(out.recovered.len() <= out.appended.len());
        prop_assert_eq!(&out.recovered[..], &out.appended[..out.recovered.len()]);
    }

    /// The same seed reproduces the same crash, the same surviving
    /// bytes, and the same recovery — the determinism the simulator's
    /// crash schedules rely on.
    #[test]
    fn same_seed_recovery_is_byte_identical(
        seed in 0u64..10_000,
        n in 1usize..100,
        flush_every in 1usize..8,
    ) {
        let faults = FaultConfig { torn_tail: true, corrupt_tail: 0.3, partial_fsync: 0.2 };
        let a = run(seed, n, flush_every, 512, faults);
        let b = run(seed, n, flush_every, 512, faults);
        prop_assert_eq!(a.segments, b.segments);
        prop_assert_eq!(a.recovered, b.recovered);
    }

    /// Checkpoints interleaved with events never disturb the event
    /// prefix, and the recovered checkpoint is one that was written.
    #[test]
    fn checkpoints_ride_along_without_breaking_the_prefix(
        seed in 0u64..10_000,
        n in 2usize..100,
        every in 2usize..10,
    ) {
        let backend = Arc::new(SimBackend::new(seed));
        let options = WalOptions {
            flush_policy: FlushPolicy::EveryN(3),
            segment_max_bytes: 512,
        };
        let (mut wal, _) =
            Wal::open(Arc::clone(&backend) as Arc<dyn StorageBackend>, options).expect("open");
        let mut appended = Vec::new();
        let mut checkpoint_times = Vec::new();
        for i in 0..n {
            let event = ev(i as u64);
            wal.append_event(&event).expect("append");
            appended.push(event);
            if i % every == every - 1 {
                let at = Time::from_millis(i as u64);
                wal.append_checkpoint(&Checkpoint {
                    at,
                    processed: vec![(SensorId(0), i as u64)],
                })
                .expect("checkpoint");
                checkpoint_times.push(at);
            }
        }
        backend.crash();
        drop(wal);
        let (_, recovered) =
            Wal::open(Arc::clone(&backend) as Arc<dyn StorageBackend>, options).expect("reopen");
        prop_assert_eq!(&recovered.events[..], &appended[..recovered.events.len()]);
        if let Some(cp) = recovered.checkpoint {
            prop_assert!(checkpoint_times.contains(&cp.at), "unknown checkpoint {:?}", cp.at);
        }
    }
}
