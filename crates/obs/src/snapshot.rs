//! Immutable exports of a [`Recorder`](crate::Recorder)'s state.
//!
//! A snapshot is plain data: `BTreeMap`s keyed by static metric names
//! plus time-ordered event and span lists. Two same-seed simulation
//! runs produce `PartialEq`-identical snapshots, and [`ObsSnapshot::to_json`]
//! renders them byte-identically — the determinism contract the
//! experiment harness asserts.

use std::collections::BTreeMap;

use rivulet_types::{Duration, Time};

use crate::histogram::Histogram;

/// One instantaneous occurrence on the virtual-time timeline.
///
/// `key` and `value` are metric-specific small integers (an actor id,
/// a sensor id, a sequence number); the catalog in `OBSERVABILITY.md`
/// documents the meaning per event name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Virtual time of the occurrence.
    pub at: Time,
    /// Event name (e.g. `"net.crash"`).
    pub name: &'static str,
    /// Metric-specific subject id (e.g. the crashed actor's id).
    pub key: u64,
    /// Metric-specific value (e.g. an event sequence number).
    pub value: u64,
}

/// An interval on the virtual-time timeline, e.g. a `failover` span
/// from crash detection to the first post-promotion application
/// activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"failover"`).
    pub name: &'static str,
    /// Metric-specific subject id (e.g. the crashed actor's id).
    pub key: u64,
    /// When the span was opened.
    pub start: Time,
    /// When the span was closed, or `None` if still open at snapshot
    /// time.
    pub end: Option<Time>,
}

impl SpanRecord {
    /// Duration of the span, if it has closed.
    #[must_use]
    pub fn duration(&self) -> Option<Duration> {
        self.end.map(|end| end.duration_since(self.start))
    }
}

/// A complete, deterministic export of everything a recorder has seen.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Log-scale histograms by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Timeline events in recording order (virtual-time ordered for a
    /// single driver).
    pub events: Vec<TimelineEvent>,
    /// Closed and still-open spans, ordered by `(start, name, key)`.
    pub spans: Vec<SpanRecord>,
}

impl ObsSnapshot {
    /// Value of counter `name`, zero if absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge `name`, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Overwrites counter `name` — used by layers that fold external
    /// atomics (e.g. fan-out statistics) into a snapshot at export
    /// time.
    pub fn set_counter(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// All timeline events named `name`, in recording order.
    #[must_use]
    pub fn events_named(&self, name: &str) -> Vec<TimelineEvent> {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .copied()
            .collect()
    }

    /// All spans named `name`, in `(start, name, key)` order.
    #[must_use]
    pub fn spans_named(&self, name: &str) -> Vec<SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .copied()
            .collect()
    }

    /// Folds `other` into this snapshot.
    ///
    /// Merge semantics per family:
    ///
    /// * **counters** — summed. Summation is commutative and
    ///   associative, so any merge order over a set of snapshots
    ///   produces the same totals.
    /// * **gauges** — *last write wins*: `other`'s value overwrites
    ///   any existing entry for the same name. Gauges are levels, not
    ///   totals; summing `store.len` across homes would fabricate a
    ///   store that exists nowhere. Callers that need a fleet-wide
    ///   level should fold gauges explicitly (min/max/mean) before or
    ///   after merging. Because of this rule, gauge values depend on
    ///   merge order — merge in a canonical order (the fleet executor
    ///   merges in home-index order) for deterministic output.
    /// * **histograms** — bucket-wise summed via
    ///   [`Histogram::merge`]; count/sum/min/max fold exactly, so
    ///   histogram merging is also order-insensitive.
    /// * **timeline events** — concatenated, then sorted by
    ///   `(at, name, key, value)`. The result is the deterministic
    ///   multiset union of both timelines regardless of merge order.
    /// * **spans** — concatenated, then sorted by `(start, name,
    ///   key, end)`, matching the ordering contract of
    ///   [`Recorder::snapshot`](crate::Recorder::snapshot).
    pub fn merge(&mut self, other: &ObsSnapshot) {
        for (&name, &value) in &other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (&name, &value) in &other.gauges {
            self.gauges.insert(name, value);
        }
        for (&name, theirs) in &other.histograms {
            self.histograms.entry(name).or_default().merge(theirs);
        }
        self.events.extend(other.events.iter().copied());
        self.events.sort_by_key(|e| (e.at, e.name, e.key, e.value));
        self.spans.extend(other.spans.iter().copied());
        self.spans.sort_by_key(|s| (s.start, s.name, s.key, s.end));
    }

    /// Renders the snapshot as deterministic JSON: map keys are sorted
    /// (`BTreeMap` iteration order), lists keep recording order, and
    /// no wall-clock or environment data is included, so equal
    /// snapshots serialize byte-identically.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        push_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (*k, v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (*k, v.to_string())),
        );
        out.push_str("},\n  \"histograms\": {");
        push_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| (*k, histogram_json(h))),
        );
        out.push_str("},\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"at_us\": {}, \"name\": \"{}\", \"key\": {}, \"value\": {}}}",
                e.at.as_micros(),
                e.name,
                e.key,
                e.value
            ));
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let end = match s.end {
                Some(t) => t.as_micros().to_string(),
                None => "null".into(),
            };
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"key\": {}, \"start_us\": {}, \"end_us\": {}}}",
                s.name,
                s.key,
                s.start.as_micros(),
                end
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders counters, gauges, and histograms in Prometheus text
    /// exposition format (metric names have `.` replaced by `_`).
    /// Timeline events and spans have no Prometheus equivalent and are
    /// omitted — use [`ObsSnapshot::to_json`] for those.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, value) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, count) in h.nonzero_buckets() {
                cumulative += count;
                out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{n}_sum {}\n", h.sum()));
            out.push_str(&format!("{n}_count {}\n", h.count()));
        }
        out
    }
}

/// Replaces `.` with `_` for Prometheus metric-name compatibility.
fn sanitize(name: &str) -> String {
    name.replace('.', "_")
}

/// Appends `"key": value` pairs (values pre-rendered) to a JSON object
/// body.
fn push_map<'k>(out: &mut String, entries: impl Iterator<Item = (&'k str, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{k}\": {v}"));
    }
}

/// Renders one histogram as a JSON object.
fn histogram_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .iter()
        .map(|(bound, count)| format!("[{bound}, {count}]"))
        .collect();
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
        h.count(),
        h.sum(),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0),
        buckets.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_renders_stable_json() {
        let s = ObsSnapshot::default();
        let json = s.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"events\": []"));
        assert_eq!(json, s.to_json(), "rendering is pure");
    }

    #[test]
    fn span_duration() {
        let open = SpanRecord {
            name: "failover",
            key: 1,
            start: Time::from_secs(24),
            end: None,
        };
        assert_eq!(open.duration(), None);
        let closed = SpanRecord {
            end: Some(Time::from_millis(26_500)),
            ..open
        };
        assert_eq!(closed.duration(), Some(Duration::from_millis(2_500)));
    }

    /// Builds a snapshot with counters, a gauge, a histogram, events,
    /// and a span, all parameterized by `tag` so different tags yield
    /// different-but-overlapping content.
    fn sample(tag: u64) -> ObsSnapshot {
        let mut s = ObsSnapshot::default();
        s.counters.insert("shared.count", 10 + tag);
        if tag.is_multiple_of(2) {
            s.counters.insert("even.count", tag);
        }
        s.gauges.insert("level", tag as i64);
        let mut h = Histogram::new();
        h.observe(tag);
        h.observe(1000 + tag);
        s.histograms.insert("delay", h);
        s.events.push(TimelineEvent {
            at: Time::from_millis(tag),
            name: "ev",
            key: tag,
            value: 1,
        });
        s.spans.push(SpanRecord {
            name: "span",
            key: tag,
            start: Time::from_millis(tag),
            end: Some(Time::from_millis(tag + 5)),
        });
        s
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = sample(1);
        let b = sample(2);
        a.merge(&b);
        assert_eq!(a.counter("shared.count"), 11 + 12);
        assert_eq!(a.counter("even.count"), 2, "disjoint counters adopted");
        let h = a.histogram("delay").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1002));
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.spans.len(), 2);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut a = sample(3);
        let before = a.clone();
        a.merge(&ObsSnapshot::default());
        assert_eq!(a, before);
        let mut empty = ObsSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn merge_is_associative() {
        let (a, b, c) = (sample(1), sample(2), sample(7));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.to_json(), right.to_json());
    }

    #[test]
    fn merge_counters_histograms_events_are_order_insensitive() {
        // Gauges are last-write-wins and therefore order-sensitive by
        // contract; everything else must not depend on merge order.
        let parts = [sample(1), sample(2), sample(7), sample(8)];
        let fold = |order: &[usize]| {
            let mut acc = ObsSnapshot::default();
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc.gauges.clear();
            acc
        };
        let forward = fold(&[0, 1, 2, 3]);
        let backward = fold(&[3, 2, 1, 0]);
        let shuffled = fold(&[2, 0, 3, 1]);
        assert_eq!(forward, backward);
        assert_eq!(forward, shuffled);
        assert_eq!(forward.to_json(), shuffled.to_json());
    }

    #[test]
    fn merge_gauges_take_the_later_write() {
        let mut a = sample(1);
        a.merge(&sample(2));
        assert_eq!(a.gauge("level"), Some(2));
        let mut b = sample(2);
        b.merge(&sample(1));
        assert_eq!(b.gauge("level"), Some(1));
    }

    #[test]
    fn prometheus_export_shape() {
        let mut s = ObsSnapshot::default();
        s.set_counter("net.wifi_bytes", 7);
        s.gauges.insert("store.len", 3);
        let mut h = Histogram::new();
        h.observe(5);
        h.observe(900);
        s.histograms.insert("app.delay_us", h);
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE net_wifi_bytes counter\nnet_wifi_bytes 7\n"));
        assert!(text.contains("# TYPE store_len gauge\nstore_len 3\n"));
        assert!(text.contains("app_delay_us_bucket{le=\"7\"} 1\n"));
        assert!(text.contains("app_delay_us_bucket{le=\"1023\"} 2\n"));
        assert!(text.contains("app_delay_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("app_delay_us_sum 905\n"));
        assert!(text.contains("app_delay_us_count 2\n"));
    }
}
