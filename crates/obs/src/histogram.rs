//! Log-scale histograms for latency and size distributions.
//!
//! Rivulet's evaluation cares about *orders of magnitude* — a delivery
//! delay of 80 ms vs 2.5 s, a WAL flush of 60 B vs 12 KiB — not about
//! per-microsecond resolution. A base-2 logarithmic histogram captures
//! that with a fixed 65-slot array: no allocation on the record path,
//! trivially mergeable, and deterministic by construction.

/// Number of buckets: one for zero plus one per power of two.
const BUCKETS: usize = 65;

/// A base-2 logarithmic histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `i` (for `i >= 1`) holds samples
/// in `[2^(i-1), 2^i - 1]`, i.e. its inclusive upper bound is
/// `2^i - 1`. Alongside the buckets the histogram tracks exact
/// `count`, `sum`, `min`, and `max`, so means are not subject to
/// bucketing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket `value` falls into.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `index` (`u64::MAX` for the
    /// last bucket, whose nominal bound `2^64 - 1` is exactly that).
    #[must_use]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The occupied buckets as `(inclusive upper bound, count)` pairs,
    /// in ascending bound order. Empty buckets are skipped, so exports
    /// stay compact.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (Self::bucket_upper_bound(i), *n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_are_inclusive_uppers() {
        // Every value must satisfy value <= upper_bound(bucket_index)
        // and (for nonzero buckets) value > upper_bound(index - 1).
        for v in [0u64, 1, 2, 3, 7, 8, 255, 256, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > Histogram::bucket_upper_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn observe_tracks_exact_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        for v in [10, 20, 900] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 930);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(900));
        assert_eq!(h.mean(), Some(310));
        // 10 and 20 land in different buckets (bounds 15 and 31); 900
        // lands under bound 1023.
        assert_eq!(h.nonzero_buckets(), vec![(15, 1), (31, 1), (1023, 1)]);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1, 5, 100] {
            a.observe(v);
        }
        for v in [0, 5, 1_000_000] {
            b.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.min(), Some(0));
        assert_eq!(merged.max(), Some(1_000_000));
        let total: u64 = merged.nonzero_buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 6, "bucket counts conserved under merge");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.observe(42);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }
}
