//! Unified observability layer for Rivulet.
//!
//! The paper's whole evaluation (§8, Figs. 5–8) is built on
//! measurements the platform itself must expose: bytes on the Wi-Fi
//! and low-power radio networks per delivery guarantee (Fig. 5),
//! events processed per second around an induced crash (Fig. 7),
//! recovery durations, WAL flush behaviour. This crate is the single
//! substrate those measurements flow through.
//!
//! # Model
//!
//! A [`Recorder`] is a cheap, cloneable handle onto shared recording
//! state. Every layer of the platform — the network drivers, the
//! process runtime, the WAL — holds a clone and records into it:
//!
//! * **counters** — monotonic totals (`net.wifi_bytes`),
//! * **gauges** — last-write-wins levels (`store.len`),
//! * **histograms** — base-2 log-scale distributions
//!   ([`Histogram`], e.g. `app.delay_us`),
//! * **timeline events** — instantaneous virtual-time occurrences
//!   ([`TimelineEvent`], e.g. `net.crash`),
//! * **spans** — virtual-time intervals ([`SpanRecord`], e.g. a
//!   `failover` span from crash detection to the first
//!   post-promotion application activity).
//!
//! Recording is a **no-op while the recorder is disabled** (the
//! default): every record method begins with one relaxed atomic load
//! and returns immediately, so always-on instrumentation costs nothing
//! measurable on hot paths — the fan-out micro-bench verifies this.
//!
//! All timestamps are **virtual time** ([`rivulet_types::Time`])
//! supplied by the caller; the recorder never reads a wall clock.
//! Under the deterministic simulator, two same-seed runs therefore
//! produce identical [`ObsSnapshot`]s, and
//! [`ObsSnapshot::to_json`] renders them byte-identically.
//!
//! The full metric/event/span catalog lives in `OBSERVABILITY.md` at
//! the repository root.
//!
//! # Example
//!
//! ```
//! use rivulet_obs::Recorder;
//! use rivulet_types::Time;
//!
//! let rec = Recorder::new();
//! rec.add("net.wifi_bytes", 100); // disabled: no-op
//! rec.set_enabled(true);
//! rec.add("net.wifi_bytes", 100);
//! rec.observe("app.delay_us", 80_000);
//! rec.span_open("failover", 3, Time::from_secs(24));
//! rec.span_close("failover", 3, Time::from_millis(26_500));
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("net.wifi_bytes"), 100);
//! assert_eq!(snap.spans[0].duration().unwrap().as_millis(), 2_500);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod histogram;
mod snapshot;

pub use histogram::Histogram;
pub use snapshot::{ObsSnapshot, SpanRecord, TimelineEvent};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use rivulet_types::Time;

/// Mutable recording state behind the recorder's mutex.
#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
    events: Vec<TimelineEvent>,
    /// Spans opened but not yet closed, keyed by `(name, key)`.
    open_spans: BTreeMap<(&'static str, u64), Time>,
    /// Closed spans in closing order.
    closed_spans: Vec<SpanRecord>,
}

#[derive(Debug, Default)]
struct Inner {
    enabled: AtomicBool,
    state: Mutex<State>,
}

impl Inner {
    /// Locks the state, recovering the data if a panicking thread
    /// poisoned the mutex (a crashed actor must not take the
    /// observability layer down with it).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A cheap, cloneable handle onto shared observability state.
///
/// Clones share state: enabling one handle enables them all, and all
/// record into the same snapshot. A freshly created recorder is
/// **disabled** — every record call is a no-op costing one relaxed
/// atomic load — so instrumentation can be threaded through
/// construction unconditionally and switched on only by harnesses
/// that read it.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Recorder {
    /// Creates a disabled recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder that is already enabled.
    #[must_use]
    pub fn enabled() -> Self {
        let rec = Self::new();
        rec.set_enabled(true);
        rec
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off for this handle and every clone.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether two handles share the same underlying state.
    #[must_use]
    pub fn same_as(&self, other: &Recorder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Adds `n` to counter `name`.
    pub fn add(&self, name: &'static str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        *self.inner.lock().counters.entry(name).or_insert(0) += n;
    }

    /// Adds 1 to counter `name`.
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &'static str, value: i64) {
        if !self.is_enabled() {
            return;
        }
        self.inner.lock().gauges.insert(name, value);
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.inner
            .lock()
            .histograms
            .entry(name)
            .or_default()
            .observe(value);
    }

    /// Records an instantaneous timeline event at virtual time `at`.
    pub fn event(&self, name: &'static str, at: Time, key: u64, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.inner.lock().events.push(TimelineEvent {
            at,
            name,
            key,
            value,
        });
    }

    /// Opens span `(name, key)` at virtual time `at`. Re-opening an
    /// already-open span keeps the earlier start (the first detection
    /// wins).
    pub fn span_open(&self, name: &'static str, key: u64, at: Time) {
        if !self.is_enabled() {
            return;
        }
        self.inner
            .lock()
            .open_spans
            .entry((name, key))
            .or_insert(at);
    }

    /// Closes span `(name, key)` at virtual time `at`. A close without
    /// a matching open is a no-op, so call sites need not track
    /// whether a span exists.
    pub fn span_close(&self, name: &'static str, key: u64, at: Time) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.inner.lock();
        if let Some(start) = state.open_spans.remove(&(name, key)) {
            state.closed_spans.push(SpanRecord {
                name,
                key,
                start,
                end: Some(at),
            });
        }
    }

    /// Clears all recorded state, keeping the enabled flag.
    pub fn reset(&self) {
        *self.inner.lock() = State::default();
    }

    /// Exports everything recorded so far. Still-open spans appear
    /// with `end: None`; spans are ordered by `(start, name, key)`.
    #[must_use]
    pub fn snapshot(&self) -> ObsSnapshot {
        let state = self.inner.lock();
        let mut spans: Vec<SpanRecord> = state.closed_spans.clone();
        spans.extend(
            state
                .open_spans
                .iter()
                .map(|((name, key), start)| SpanRecord {
                    name,
                    key: *key,
                    start: *start,
                    end: None,
                }),
        );
        spans.sort_by_key(|s| (s.start, s.name, s.key));
        ObsSnapshot {
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            histograms: state.histograms.clone(),
            events: state.events.clone(),
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::new();
        assert!(!rec.is_enabled());
        rec.add("c", 5);
        rec.set_gauge("g", 1);
        rec.observe("h", 10);
        rec.event("e", Time::ZERO, 0, 0);
        rec.span_open("s", 0, Time::ZERO);
        rec.span_close("s", 0, Time::from_secs(1));
        assert_eq!(rec.snapshot(), ObsSnapshot::default());
    }

    #[test]
    fn clones_share_state_and_enable_flag() {
        let a = Recorder::new();
        let b = a.clone();
        assert!(a.same_as(&b));
        b.set_enabled(true);
        assert!(a.is_enabled());
        a.inc("c");
        b.inc("c");
        assert_eq!(a.snapshot().counter("c"), 2);
    }

    #[test]
    fn counters_gauges_histograms() {
        let rec = Recorder::enabled();
        rec.add("bytes", 10);
        rec.add("bytes", 32);
        rec.set_gauge("level", -3);
        rec.set_gauge("level", 7);
        rec.observe("delay", 100);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("bytes"), 42);
        assert_eq!(snap.gauge("level"), Some(7));
        assert_eq!(snap.histogram("delay").unwrap().count(), 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn span_lifecycle() {
        let rec = Recorder::enabled();
        rec.span_close("failover", 9, Time::from_secs(1)); // unmatched: no-op
        rec.span_open("failover", 9, Time::from_secs(2));
        rec.span_open("failover", 9, Time::from_secs(3)); // first open wins
        rec.span_open("failover", 4, Time::from_secs(5)); // stays open
        rec.span_close("failover", 9, Time::from_secs(4));
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let closed = &snap.spans[0];
        assert_eq!((closed.key, closed.start), (9, Time::from_secs(2)));
        assert_eq!(
            closed.duration(),
            Some(rivulet_types::Duration::from_secs(2))
        );
        let open = &snap.spans[1];
        assert_eq!((open.key, open.end), (4, None));
    }

    #[test]
    fn reset_clears_data_but_not_enable() {
        let rec = Recorder::enabled();
        rec.inc("c");
        rec.reset();
        assert!(rec.is_enabled());
        assert_eq!(rec.snapshot(), ObsSnapshot::default());
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let build = || {
            let rec = Recorder::enabled();
            rec.add("z.last", 1);
            rec.add("a.first", 2);
            rec.observe("h", 7);
            rec.event("ev", Time::from_millis(5), 1, 2);
            rec.span_open("s", 1, Time::ZERO);
            rec.snapshot()
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        // Sorted map keys: "a.first" renders before "z.last".
        let json = a.to_json();
        assert!(json.find("a.first").unwrap() < json.find("z.last").unwrap());
    }

    #[test]
    fn poisoned_lock_recovers_data() {
        let rec = Recorder::enabled();
        rec.inc("before");
        let poisoner = rec.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.state.lock().unwrap();
            panic!("poison the recorder lock");
        })
        .join();
        rec.inc("after");
        let snap = rec.snapshot();
        assert_eq!(snap.counter("before"), 1);
        assert_eq!(snap.counter("after"), 1);
    }
}
