//! Chunked arena for event payload bytes.
//!
//! Events that arrive off the network decode their blob payloads as
//! zero-copy views into the arrival frame ([`crate::wire::WireReader::from_shared`]).
//! That is the right call on the hot path — no copy per event — but it
//! means a stored event **pins its whole frame**: a 40-byte payload
//! sliced out of a coalesced multi-command frame keeps the entire
//! frame allocation alive for as long as the `EventStore` retains the
//! event. Across thousands of retained events that multiplies resident
//! memory by the frame-to-payload ratio.
//!
//! [`PayloadArena`] fixes this by re-homing such payloads into dense
//! refcounted chunks: `alloc` copies the payload bytes into the
//! arena's current chunk and returns a [`Bytes`] view of just those
//! bytes. Chunks are recycled, not leaked: when the store prunes
//! events below the processed watermark their payload views drop, and
//! once a chunk's views are all gone the arena's next refill reclaims
//! the allocation in place ([`BytesMut::try_reclaim`]) instead of
//! allocating a fresh chunk. In steady state — watermark advancing,
//! store bounded — payload storage is allocation-free.
//!
//! The [`PayloadArena::rehome`] policy deliberately skips payloads
//! that already own their whole backing allocation (e.g. a sensor's
//! cached emission blob shared by every clone): copying those would
//! *increase* memory. Only views that pin extra bytes are re-homed.

use crate::event::Payload;
use bytes::{Bytes, BytesMut};

/// Default chunk size: large enough to pack hundreds of Table-3-sized
/// payloads, small enough that one straggler view pins little.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Allocation counters, cheap to copy into observability gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Payload allocations served from arena chunks.
    pub allocs: u64,
    /// Total payload bytes copied into chunks.
    pub bytes: u64,
    /// Fresh chunk allocations (first chunk included).
    pub chunks: u64,
    /// Chunk refills satisfied by reclaiming the existing allocation
    /// in place because every view into it had been dropped.
    pub recycled: u64,
    /// Payloads larger than the chunk size, served as standalone
    /// allocations.
    pub oversize: u64,
}

/// How many retired chunks the arena keeps around waiting for their
/// views to drop, and how many of them one refill probes. Retirement
/// is FIFO and watermark pruning retires oldest events first, so the
/// front of the list is the chunk most likely to have drained.
const MAX_RETIRED: usize = 32;
const RETIRE_SCAN: usize = 4;

/// A chunked slab allocator handing out refcounted [`Bytes`] payload
/// views (see the module docs for lifecycle and recycling).
#[derive(Debug)]
pub struct PayloadArena {
    /// The chunk currently being filled.
    chunk: BytesMut,
    /// Exhausted chunks whose views may still be alive, oldest first.
    /// A refill reclaims the first fully drained one instead of
    /// allocating.
    retired: std::collections::VecDeque<BytesMut>,
    chunk_size: usize,
    stats: ArenaStats,
}

impl Default for PayloadArena {
    fn default() -> Self {
        Self::with_chunk_size(DEFAULT_CHUNK_BYTES)
    }
}

impl PayloadArena {
    /// Creates an arena with the default chunk size.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an arena whose chunks hold `chunk_size` bytes (min 64).
    /// The first chunk is allocated lazily on first use.
    #[must_use]
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        Self {
            chunk: BytesMut::new(),
            retired: std::collections::VecDeque::new(),
            chunk_size: chunk_size.max(64),
            stats: ArenaStats::default(),
        }
    }

    /// Copies `data` into the arena, returning a view of exactly those
    /// bytes. Oversize payloads (≥ one chunk) get standalone
    /// allocations so they never hold a chunk hostage.
    pub fn alloc(&mut self, data: &[u8]) -> Bytes {
        self.stats.allocs += 1;
        self.stats.bytes += data.len() as u64;
        if data.len() >= self.chunk_size {
            self.stats.oversize += 1;
            return Bytes::copy_from_slice(data);
        }
        if self.chunk.capacity() - self.chunk.len() < data.len() {
            self.refill();
        }
        self.chunk.extend_from_slice(data);
        self.chunk.split().freeze()
    }

    /// Swaps in a chunk with free space: the oldest retired chunk
    /// whose views have all dropped if one exists (recycling its
    /// allocation in place), a fresh chunk otherwise.
    fn refill(&mut self) {
        // Retire by backing allocation, not spare room: a chunk whose
        // payloads exactly filled it ends with `capacity() == 0` but
        // still owns its allocation, and is precisely the chunk worth
        // waiting on. Only the pristine lazy writer (never allocated)
        // has nothing to retire.
        if self.chunk.backing_capacity() > 0 {
            self.retired.push_back(std::mem::take(&mut self.chunk));
        }
        let mut hit = None;
        for i in 0..self.retired.len().min(RETIRE_SCAN) {
            if self.retired[i].try_reclaim(self.chunk_size) {
                hit = Some(i);
                break;
            }
        }
        if let Some(i) = hit {
            self.chunk = self.retired.remove(i).expect("index probed above");
            self.stats.recycled += 1;
            return;
        }
        self.chunk = BytesMut::with_capacity(self.chunk_size);
        self.stats.chunks += 1;
        // Bound the waiting list; a dropped handle just lets the chunk
        // free itself once its last view goes.
        while self.retired.len() > MAX_RETIRED {
            self.retired.pop_front();
        }
    }

    /// Re-homes a payload into the arena **if doing so releases
    /// memory**: blob views pinning a larger backing allocation (a
    /// network frame, a coalesced batch) are copied into a chunk;
    /// whole-backing blobs, scalars, and empty payloads pass through
    /// untouched. Returns the payload to store.
    pub fn rehome(&mut self, payload: Payload) -> Payload {
        match payload {
            Payload::Blob(b) if b.backing_len() > b.len() => Payload::Blob(self.alloc(&b)),
            other => other,
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// The configured chunk size in bytes.
    #[must_use]
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocs_pack_into_one_chunk() {
        let mut arena = PayloadArena::with_chunk_size(1024);
        let a = arena.alloc(b"first");
        let b = arena.alloc(b"second");
        assert_eq!(a, &b"first"[..]);
        assert_eq!(b, &b"second"[..]);
        // Dense packing: consecutive allocations are adjacent in the
        // same backing chunk.
        assert_eq!(
            b.as_ref().as_ptr() as usize,
            a.as_ref().as_ptr() as usize + a.len()
        );
        let s = arena.stats();
        assert_eq!((s.allocs, s.chunks, s.recycled), (2, 1, 0));
    }

    #[test]
    fn chunk_recycles_once_views_drop() {
        let mut arena = PayloadArena::with_chunk_size(128);
        let first = arena.alloc(&[1u8; 100]);
        let base = first.as_ref().as_ptr();
        drop(first);
        // Next alloc does not fit the remaining space, but the chunk's
        // only view is gone: it must be reclaimed, not reallocated.
        let second = arena.alloc(&[2u8; 100]);
        assert_eq!(second.as_ref().as_ptr(), base, "chunk was recycled");
        let s = arena.stats();
        assert_eq!((s.chunks, s.recycled), (1, 1));
    }

    #[test]
    fn pinned_chunk_forces_fresh_allocation() {
        let mut arena = PayloadArena::with_chunk_size(128);
        let pinned = arena.alloc(&[1u8; 100]);
        let second = arena.alloc(&[2u8; 100]);
        assert_ne!(second.as_ref().as_ptr(), pinned.as_ref().as_ptr());
        assert_eq!(pinned, &[1u8; 100][..], "live view unharmed");
        let s = arena.stats();
        assert_eq!((s.chunks, s.recycled), (2, 0));
    }

    #[test]
    fn oversize_payloads_bypass_chunks() {
        let mut arena = PayloadArena::with_chunk_size(64);
        let big = arena.alloc(&[9u8; 500]);
        assert_eq!(big.len(), 500);
        let s = arena.stats();
        assert_eq!(s.oversize, 1);
        assert_eq!(s.chunks, 0, "no chunk opened for an oversize alloc");
    }

    #[test]
    fn rehome_copies_only_pinning_views() {
        let mut arena = PayloadArena::with_chunk_size(1024);
        // A small view pinning a big frame must be re-homed.
        let frame = Bytes::from(vec![7u8; 4096]);
        let view = frame.slice_ref(&frame[100..116]);
        let rehomed = arena.rehome(Payload::Blob(view.clone()));
        let Payload::Blob(out) = &rehomed else {
            panic!("blob stays blob")
        };
        assert_eq!(*out, view, "contents preserved");
        assert!(out.backing_len() <= 1024, "no longer pins the frame");
        assert_eq!(arena.stats().allocs, 1);
        // A whole-backing blob (shared sensor emission) passes through.
        let owned = Bytes::from(vec![1u8; 64]);
        let kept = arena.rehome(Payload::Blob(owned.clone()));
        assert_eq!(kept, Payload::Blob(owned));
        assert_eq!(arena.stats().allocs, 1, "no copy for whole-backing blob");
        // Non-blob payloads pass through untouched.
        assert_eq!(arena.rehome(Payload::Scalar(2.5)), Payload::Scalar(2.5));
        assert_eq!(arena.rehome(Payload::Empty), Payload::Empty);
    }

    #[test]
    fn exactly_filled_chunks_still_recycle() {
        // Payload size divides the chunk size, so every spent chunk
        // ends fully split away (`capacity() == 0`). Those chunks must
        // still be retired and reclaimed once their views drop —
        // dropping them instead silently disables recycling for
        // power-of-two payloads (1 KiB camera frames in a 64 KiB
        // chunk), the common case.
        let mut arena = PayloadArena::with_chunk_size(256);
        let mut held = std::collections::VecDeque::new();
        for _ in 0..64 {
            held.push_back(arena.alloc(&[3u8; 64])); // 4 per chunk, exact
            if held.len() > 8 {
                held.pop_front(); // FIFO retention, two chunks deep
            }
        }
        let s = arena.stats();
        assert!(
            s.recycled >= 10,
            "exact-fit chunks must recycle once drained: {s:?}"
        );
        assert!(
            s.chunks <= 4,
            "fresh allocations must stay bounded by the hold window: {s:?}"
        );
    }

    #[test]
    fn steady_state_reuses_one_chunk() {
        // Alloc/drop in a loop — the watermark-retirement pattern —
        // must settle on a single recycled chunk.
        let mut arena = PayloadArena::with_chunk_size(256);
        for round in 0..50 {
            let views: Vec<Bytes> = (0..4).map(|i| arena.alloc(&[i as u8; 40])).collect();
            assert!(views.iter().all(|v| v.len() == 40));
            drop(views);
            let s = arena.stats();
            assert!(
                s.chunks <= 2,
                "round {round}: fresh chunks {} should stay bounded",
                s.chunks
            );
        }
        assert!(arena.stats().recycled >= 20, "recycling dominates");
    }
}
