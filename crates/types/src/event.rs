//! Sensor events and their payloads.

use std::fmt;

use bytes::Bytes;

use crate::id::EventId;
use crate::time::Time;
use crate::wire::{varint_len, Wire, WireError, WireReader, WireWriter};

/// The broad payload-size classes of off-the-shelf smart-home sensors
/// (paper Table 3).
///
/// Most physical-phenomenon sensors (temperature, humidity, motion,
/// door/window, energy, UV, vibration) emit **small** 4–8 byte events;
/// IP cameras and microphone frame batches emit **large** 1–20 KB
/// events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// 4–8 byte events from scalar sensors.
    Small,
    /// 1–20 KB events from cameras and microphones.
    Large,
}

impl SizeClass {
    /// A representative payload size in bytes, used by workload
    /// generators: 4 B for small, 10 KB for large.
    #[must_use]
    pub fn representative_bytes(self) -> usize {
        match self {
            SizeClass::Small => 4,
            SizeClass::Large => 10 * 1024,
        }
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeClass::Small => write!(f, "small (4-8 B)"),
            SizeClass::Large => write!(f, "large (1-20 KB)"),
        }
    }
}

/// The semantic kind of a sensor event.
///
/// Kinds cover the sensor families surveyed in Table 1 of the paper.
/// Scalar readings carry their value inline; opaque blobs (camera
/// frames, microphone batches) carry their bytes in the event
/// [`Payload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EventKind {
    /// A door or window opened.
    DoorOpen,
    /// A door or window closed.
    DoorClose,
    /// Motion detected.
    Motion,
    /// A wearable reported a fall.
    FallDetected,
    /// Water/moisture detected.
    WaterDetected,
    /// Smoke/fire detected.
    SmokeDetected,
    /// A scalar reading (temperature, humidity, luminance, UV, CO2,
    /// power, …). The unit is a property of the sensor, not the event.
    Reading,
    /// A camera frame (payload carries the compressed image).
    Image,
    /// A batch of microphone samples (payload carries the frame).
    AudioFrame,
    /// Occupancy inferred or sensed.
    Occupancy,
    /// Application-defined event.
    Custom,
}

impl EventKind {
    const ALL: [EventKind; 11] = [
        EventKind::DoorOpen,
        EventKind::DoorClose,
        EventKind::Motion,
        EventKind::FallDetected,
        EventKind::WaterDetected,
        EventKind::SmokeDetected,
        EventKind::Reading,
        EventKind::Image,
        EventKind::AudioFrame,
        EventKind::Occupancy,
        EventKind::Custom,
    ];

    fn tag(self) -> u8 {
        Self::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind present in ALL") as u8
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        Self::ALL
            .get(tag as usize)
            .copied()
            .ok_or(WireError::InvalidTag {
                ty: "EventKind",
                tag,
            })
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EventKind::DoorOpen => "door-open",
            EventKind::DoorClose => "door-close",
            EventKind::Motion => "motion",
            EventKind::FallDetected => "fall-detected",
            EventKind::WaterDetected => "water-detected",
            EventKind::SmokeDetected => "smoke-detected",
            EventKind::Reading => "reading",
            EventKind::Image => "image",
            EventKind::AudioFrame => "audio-frame",
            EventKind::Occupancy => "occupancy",
            EventKind::Custom => "custom",
        };
        f.write_str(name)
    }
}

/// The data carried by an event: a scalar value, an opaque blob, or
/// nothing beyond the kind itself.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Payload {
    /// No payload beyond the event kind (e.g. a door-open event whose
    /// whole meaning is its kind). On real Z-Wave hardware such events
    /// still occupy a few bytes; [`Event::wire_payload_bytes`] accounts
    /// for that.
    #[default]
    Empty,
    /// A scalar reading.
    Scalar(f64),
    /// An opaque blob (camera frame, audio batch). `Bytes` keeps clones
    /// cheap as events are replicated across processes.
    Blob(Bytes),
}

impl Payload {
    /// Creates a blob payload of `len` zero bytes; used by workload
    /// generators that only care about sizes.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Payload::Blob(Bytes::from(vec![0u8; len]))
    }

    /// Returns the scalar value if this is a `Scalar` payload.
    #[must_use]
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Payload::Scalar(v) => Some(*v),
            _ => None,
        }
    }

    /// Number of payload bytes carried (0 for `Empty`, 8 for `Scalar`).
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::Scalar(_) => 8,
            Payload::Blob(b) => b.len(),
        }
    }

    /// Whether the payload carries no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<f64> for Payload {
    fn from(v: f64) -> Self {
        Payload::Scalar(v)
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload::Blob(b)
    }
}

impl Wire for Payload {
    fn encoded_len(&self) -> usize {
        match self {
            Payload::Empty => 1,
            Payload::Scalar(_) => 1 + 8,
            Payload::Blob(b) => 1 + varint_len(b.len() as u64) + b.len(),
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        match self {
            Payload::Empty => w.put_u8(0),
            Payload::Scalar(v) => {
                w.put_u8(1);
                v.encode(w);
            }
            Payload::Blob(b) => {
                w.put_u8(2);
                b.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Payload::Empty),
            1 => Ok(Payload::Scalar(f64::decode(r)?)),
            2 => Ok(Payload::Blob(Bytes::decode(r)?)),
            tag => Err(WireError::InvalidTag { ty: "Payload", tag }),
        }
    }
}

/// A sensor event: the unit of data flowing from sensor nodes through
/// the delivery service to logic nodes.
///
/// Events are immutable once emitted. Identity (and thus duplicate
/// suppression in the Gapless ring) comes from [`EventId`]; the
/// emission timestamp supports delay measurement (Fig. 4) and staleness
/// bounds (§6); the optional `epoch` ties poll-based events to their
/// polling epoch for coordinated polling (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Unique identity: source sensor + per-sensor sequence number.
    pub id: EventId,
    /// Semantic kind.
    pub kind: EventKind,
    /// Payload carried by the event.
    pub payload: Payload,
    /// When the sensor emitted the event.
    pub emitted_at: Time,
    /// For poll-based sensors: which polling epoch this event answers.
    pub epoch: Option<u64>,
}

impl Event {
    /// Creates an event with no payload.
    #[must_use]
    pub fn new(id: EventId, kind: EventKind, emitted_at: Time) -> Self {
        Self {
            id,
            kind,
            payload: Payload::Empty,
            emitted_at,
            epoch: None,
        }
    }

    /// Creates an event carrying a payload.
    #[must_use]
    pub fn with_payload(id: EventId, kind: EventKind, payload: Payload, emitted_at: Time) -> Self {
        Self {
            id,
            kind,
            payload,
            emitted_at,
            epoch: None,
        }
    }

    /// Attaches the polling epoch this event answers.
    #[must_use]
    pub fn in_epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// The bytes this event's *payload* occupies on a sensor radio
    /// frame: the physical-sensor event size of Table 3. Kind-only
    /// events (door, motion) count 4 B, matching the small-sensor
    /// class; scalar and blob payloads count their data bytes.
    #[must_use]
    pub fn wire_payload_bytes(&self) -> usize {
        match &self.payload {
            Payload::Empty => 4,
            other => other.len(),
        }
    }

    /// Age of the event at `now` (zero if `now` precedes emission).
    #[must_use]
    pub fn staleness(&self, now: Time) -> crate::time::Duration {
        now - self.emitted_at
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} [{}]", self.kind, self.id, self.emitted_at)
    }
}

impl Wire for Event {
    fn encoded_len(&self) -> usize {
        self.id.encoded_len()
            + 1
            + self.payload.encoded_len()
            + self.emitted_at.encoded_len()
            + self.epoch.encoded_len()
    }

    fn encode(&self, w: &mut WireWriter) {
        self.id.encode(w);
        w.put_u8(self.kind.tag());
        self.payload.encode(w);
        self.emitted_at.encode(w);
        self.epoch.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let id = EventId::decode(r)?;
        let kind = EventKind::from_tag(r.get_u8()?)?;
        let payload = Payload::decode(r)?;
        let emitted_at = Time::decode(r)?;
        let epoch = Option::<u64>::decode(r)?;
        Ok(Self {
            id,
            kind,
            payload,
            emitted_at,
            epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::SensorId;
    use crate::wire::roundtrip;

    fn sample_event() -> Event {
        Event::with_payload(
            EventId::new(SensorId(3), 9),
            EventKind::Reading,
            Payload::Scalar(21.5),
            Time::from_millis(400),
        )
        .in_epoch(4)
    }

    #[test]
    fn event_roundtrips_on_wire() {
        roundtrip(&sample_event());
        roundtrip(&Event::new(
            EventId::new(SensorId(0), 0),
            EventKind::DoorOpen,
            Time::ZERO,
        ));
        roundtrip(&Event::with_payload(
            EventId::new(SensorId(1), 1),
            EventKind::Image,
            Payload::zeros(20 * 1024),
            Time::from_secs(3),
        ));
    }

    #[test]
    fn all_kinds_roundtrip() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.tag(), i as u8);
            assert_eq!(EventKind::from_tag(i as u8).unwrap(), *kind);
            roundtrip(&Event::new(
                EventId::new(SensorId(5), i as u64),
                *kind,
                Time::from_millis(i as u64),
            ));
        }
        assert!(EventKind::from_tag(EventKind::ALL.len() as u8).is_err());
    }

    #[test]
    fn payload_len_accounting() {
        assert_eq!(Payload::Empty.len(), 0);
        assert!(Payload::Empty.is_empty());
        assert_eq!(Payload::Scalar(1.0).len(), 8);
        assert_eq!(Payload::zeros(1024).len(), 1024);
        assert_eq!(Payload::default(), Payload::Empty);
    }

    #[test]
    fn payload_conversions() {
        assert_eq!(Payload::from(2.5).as_scalar(), Some(2.5));
        assert_eq!(Payload::Empty.as_scalar(), None);
        let b = Bytes::from_static(b"img");
        assert_eq!(Payload::from(b.clone()), Payload::Blob(b));
    }

    #[test]
    fn wire_payload_bytes_matches_table3() {
        // Kind-only events model the 4-byte small class.
        let door = Event::new(
            EventId::new(SensorId(0), 0),
            EventKind::DoorOpen,
            Time::ZERO,
        );
        assert_eq!(door.wire_payload_bytes(), 4);
        // Scalar readings are 8 bytes.
        assert_eq!(sample_event().wire_payload_bytes(), 8);
        // Blobs count their exact size.
        let cam = Event::with_payload(
            EventId::new(SensorId(2), 0),
            EventKind::Image,
            Payload::zeros(12_000),
            Time::ZERO,
        );
        assert_eq!(cam.wire_payload_bytes(), 12_000);
    }

    #[test]
    fn staleness_saturates() {
        let ev = sample_event();
        assert_eq!(
            ev.staleness(Time::from_millis(900)),
            crate::time::Duration::from_millis(500)
        );
        assert_eq!(ev.staleness(Time::ZERO), crate::time::Duration::ZERO);
    }

    #[test]
    fn size_class_representatives() {
        assert_eq!(SizeClass::Small.representative_bytes(), 4);
        assert_eq!(SizeClass::Large.representative_bytes(), 10 * 1024);
        assert_eq!(SizeClass::Small.to_string(), "small (4-8 B)");
    }

    #[test]
    fn display_is_informative() {
        let text = sample_event().to_string();
        assert!(text.contains("reading"));
        assert!(text.contains("s3#9"));
    }

    #[test]
    fn junk_payload_tag_rejected() {
        assert!(matches!(
            Payload::from_bytes(&[9]),
            Err(WireError::InvalidTag {
                ty: "Payload",
                tag: 9
            })
        ));
    }
}
