//! Core vocabulary types for the Rivulet smart-home platform.
//!
//! This crate defines the identifiers, timestamps, events, actuation
//! commands, and the binary wire codec shared by every other Rivulet
//! crate. It corresponds to the "custom serialization for events and
//! other messages" layer of the original prototype (paper §7).
//!
//! # Overview
//!
//! * [`ProcessId`], [`SensorId`], [`ActuatorId`] — identities of the
//!   participants in a home deployment.
//! * [`Time`] — an instant of virtual (or wall-clock) time with
//!   microsecond resolution.
//! * [`Event`] — a sensed value flowing from a sensor toward logic
//!   nodes; [`EventId`] makes each event globally unique and
//!   gap-detectable via per-sensor sequence numbers.
//! * [`Command`] — an actuation command flowing from logic nodes toward
//!   actuators.
//! * [`wire`] — the length-delimited binary codec used on the
//!   inter-process network, with exact size accounting so experiments
//!   can measure network overhead (paper Fig. 5).
//!
//! # Example
//!
//! ```
//! use rivulet_types::{Event, EventKind, EventId, SensorId, Time};
//! use rivulet_types::wire::{Wire, WireError};
//!
//! # fn main() -> Result<(), WireError> {
//! let sensor = SensorId(7);
//! let event = Event::new(
//!     EventId::new(sensor, 42),
//!     EventKind::DoorOpen,
//!     Time::from_millis(1_500),
//! );
//! let bytes = event.to_bytes();
//! assert_eq!(bytes.len(), event.encoded_len());
//! let decoded = Event::from_bytes(&bytes)?;
//! assert_eq!(decoded, event);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod command;
mod event;
mod id;
mod time;

pub mod arena;
pub mod wire;

pub use arena::{ArenaStats, PayloadArena};
pub use command::{ActuationState, Command, CommandId, CommandKind};
pub use event::{Event, EventKind, Payload, SizeClass};
pub use id::{ActuatorId, AppId, EventId, OperatorId, ProcessId, RoutineId, SensorId};
pub use time::{Duration, Time};
