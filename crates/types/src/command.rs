//! Actuation commands flowing from logic nodes to actuators.

use std::fmt;

use crate::id::{ActuatorId, OperatorId, ProcessId};
use crate::time::Time;
use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// Unique identity of an actuation command.
///
/// Commands are identified by the process and operator that issued them
/// plus a per-issuer sequence number, so duplicate actuations caused by
/// concurrent active logic nodes (e.g. during a network partition, §5)
/// can be detected by Test&Set actuators and by the metrics layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommandId {
    /// Process hosting the logic node that issued the command.
    pub issuer: ProcessId,
    /// Operator that issued the command.
    pub operator: OperatorId,
    /// Per-(issuer, operator) sequence number.
    pub seq: u64,
}

impl CommandId {
    /// Creates a command identity.
    #[must_use]
    pub fn new(issuer: ProcessId, operator: OperatorId, seq: u64) -> Self {
        Self {
            issuer,
            operator,
            seq,
        }
    }
}

impl fmt::Display for CommandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}#{}", self.issuer, self.operator, self.seq)
    }
}

impl Wire for CommandId {
    fn encoded_len(&self) -> usize {
        self.issuer.encoded_len() + self.operator.encoded_len() + self.seq.encoded_len()
    }

    fn encode(&self, w: &mut WireWriter) {
        self.issuer.encode(w);
        self.operator.encode(w);
        self.seq.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            issuer: ProcessId::decode(r)?,
            operator: OperatorId::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}

/// The externally visible state of an actuator, used both as command
/// argument and as the value read back by Test&Set (§5).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ActuationState {
    /// Binary state (light on/off, lock engaged/open, siren on/off).
    Switch(bool),
    /// Continuous set-point (thermostat temperature, dimmer level).
    Level(f64),
    /// One-shot trigger with a count (dispense N units, brew N cups);
    /// inherently non-idempotent.
    Pulse(u32),
}

impl fmt::Display for ActuationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActuationState::Switch(on) => {
                write!(f, "switch={}", if *on { "on" } else { "off" })
            }
            ActuationState::Level(v) => write!(f, "level={v}"),
            ActuationState::Pulse(n) => write!(f, "pulse={n}"),
        }
    }
}

impl Wire for ActuationState {
    fn encoded_len(&self) -> usize {
        match self {
            ActuationState::Switch(_) => 2,
            ActuationState::Level(_) => 1 + 8,
            ActuationState::Pulse(n) => 1 + n.encoded_len(),
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        match self {
            ActuationState::Switch(on) => {
                w.put_u8(0);
                on.encode(w);
            }
            ActuationState::Level(v) => {
                w.put_u8(1);
                v.encode(w);
            }
            ActuationState::Pulse(n) => {
                w.put_u8(2);
                n.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ActuationState::Switch(bool::decode(r)?)),
            1 => Ok(ActuationState::Level(f64::decode(r)?)),
            2 => Ok(ActuationState::Pulse(u32::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                ty: "ActuationState",
                tag,
            }),
        }
    }
}

/// How a command mutates the actuator.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum CommandKind {
    /// Unconditionally set the actuator state. Safe to repeat for
    /// idempotent actuators (lights, locks, thermostats, sirens).
    Set(ActuationState),
    /// Atomically: if the actuator's current state equals `expected`,
    /// set it to `desired`. Prevents duplicate non-idempotent
    /// actuations when multiple logic nodes run concurrently (§5).
    TestAndSet {
        /// State the issuer believes the actuator is in.
        expected: ActuationState,
        /// State to transition to if the expectation holds.
        desired: ActuationState,
    },
}

impl Wire for CommandKind {
    fn encoded_len(&self) -> usize {
        match self {
            CommandKind::Set(s) => 1 + s.encoded_len(),
            CommandKind::TestAndSet { expected, desired } => {
                1 + expected.encoded_len() + desired.encoded_len()
            }
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        match self {
            CommandKind::Set(s) => {
                w.put_u8(0);
                s.encode(w);
            }
            CommandKind::TestAndSet { expected, desired } => {
                w.put_u8(1);
                expected.encode(w);
                desired.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(CommandKind::Set(ActuationState::decode(r)?)),
            1 => Ok(CommandKind::TestAndSet {
                expected: ActuationState::decode(r)?,
                desired: ActuationState::decode(r)?,
            }),
            tag => Err(WireError::InvalidTag {
                ty: "CommandKind",
                tag,
            }),
        }
    }
}

/// An actuation command: the unit of data flowing from logic nodes
/// through actuator nodes to physical actuators.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// Unique identity.
    pub id: CommandId,
    /// Target actuator.
    pub actuator: ActuatorId,
    /// The mutation to apply.
    pub kind: CommandKind,
    /// When the logic node issued the command.
    pub issued_at: Time,
}

impl Command {
    /// Creates a command.
    #[must_use]
    pub fn new(id: CommandId, actuator: ActuatorId, kind: CommandKind, issued_at: Time) -> Self {
        Self {
            id,
            actuator,
            kind,
            issued_at,
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            CommandKind::Set(s) => write!(f, "set {} -> {}", self.actuator, s),
            CommandKind::TestAndSet { expected, desired } => {
                write!(f, "tas {} {} => {}", self.actuator, expected, desired)
            }
        }
    }
}

impl Wire for Command {
    fn encoded_len(&self) -> usize {
        self.id.encoded_len()
            + self.actuator.encoded_len()
            + self.kind.encoded_len()
            + self.issued_at.encoded_len()
    }

    fn encode(&self, w: &mut WireWriter) {
        self.id.encode(w);
        self.actuator.encode(w);
        self.kind.encode(w);
        self.issued_at.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            id: CommandId::decode(r)?,
            actuator: ActuatorId::decode(r)?,
            kind: CommandKind::decode(r)?,
            issued_at: Time::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    fn sample() -> Command {
        Command::new(
            CommandId::new(ProcessId(1), OperatorId(2), 7),
            ActuatorId(4),
            CommandKind::Set(ActuationState::Switch(true)),
            Time::from_millis(250),
        )
    }

    #[test]
    fn command_roundtrips() {
        roundtrip(&sample());
        roundtrip(&Command::new(
            CommandId::new(ProcessId(0), OperatorId(0), 0),
            ActuatorId(1),
            CommandKind::TestAndSet {
                expected: ActuationState::Pulse(0),
                desired: ActuationState::Pulse(1),
            },
            Time::ZERO,
        ));
        roundtrip(&Command::new(
            CommandId::new(ProcessId(9), OperatorId(9), u64::MAX),
            ActuatorId(9),
            CommandKind::Set(ActuationState::Level(21.5)),
            Time::MAX,
        ));
    }

    #[test]
    fn command_ids_order_by_issuer_then_seq() {
        let a = CommandId::new(ProcessId(1), OperatorId(1), 5);
        let b = CommandId::new(ProcessId(1), OperatorId(1), 6);
        let c = CommandId::new(ProcessId(2), OperatorId(0), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn display_formats() {
        assert_eq!(sample().to_string(), "set a4 -> switch=on");
        assert_eq!(ActuationState::Level(19.0).to_string(), "level=19");
        assert_eq!(ActuationState::Pulse(2).to_string(), "pulse=2");
        assert_eq!(sample().id.to_string(), "p1/op2#7");
    }

    #[test]
    fn junk_tags_rejected() {
        assert!(matches!(
            ActuationState::from_bytes(&[7]),
            Err(WireError::InvalidTag {
                ty: "ActuationState",
                ..
            })
        ));
        assert!(matches!(
            CommandKind::from_bytes(&[7]),
            Err(WireError::InvalidTag {
                ty: "CommandKind",
                ..
            })
        ));
    }
}
