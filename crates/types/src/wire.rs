//! Length-delimited binary wire codec.
//!
//! The original Rivulet prototype used "custom serialization for events
//! and other messages" over Netty-managed TCP connections (paper §7).
//! This module is the Rust equivalent: a small, allocation-conscious
//! codec with *exact* size accounting, which the evaluation harness
//! relies on to reproduce the network-overhead experiment (Fig. 5).
//!
//! Integers are encoded as LEB128 varints so that the 4–8 byte events
//! that dominate smart homes (Table 3) stay small on the wire;
//! byte-strings and collections carry a varint length prefix.
//!
//! # Example
//!
//! ```
//! use rivulet_types::wire::{Wire, WireReader, WireWriter};
//!
//! let mut w = WireWriter::new();
//! 300u64.encode(&mut w);
//! vec![1u32, 2, 3].encode(&mut w);
//! let buf = w.into_bytes();
//!
//! let mut r = WireReader::new(&buf);
//! assert_eq!(u64::decode(&mut r).unwrap(), 300);
//! assert_eq!(Vec::<u32>::decode(&mut r).unwrap(), vec![1, 2, 3]);
//! assert!(r.is_empty());
//! ```

use std::error::Error;
use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};

/// Number of bytes of framing added to every message by the transport
/// (length prefix, message-type tag, and checksum), mirroring the
/// header cost a TCP-based framing layer would add. Fig. 5's
/// observation that "large event sizes amortize the network overhead of
/// any metadata, e.g., message headers" depends on this constant being
/// charged per message.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Errors produced when decoding malformed wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// A tag byte did not name a known variant of the decoded type.
    InvalidTag {
        /// Name of the type being decoded.
        ty: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A declared length prefix exceeds the sanity limit.
    LengthTooLarge {
        /// The declared length.
        declared: u64,
    },
    /// A byte-string declared as UTF-8 was not valid UTF-8.
    InvalidUtf8,
    /// A multi-message frame declared zero messages; frames exist only
    /// to coalesce, so an empty batch is always an encoder bug or
    /// corruption.
    EmptyBatch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of buffer: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::InvalidTag { ty, tag } => {
                write!(f, "invalid tag {tag} while decoding {ty}")
            }
            WireError::LengthTooLarge { declared } => {
                write!(f, "declared length {declared} exceeds sanity limit")
            }
            WireError::InvalidUtf8 => write!(f, "byte-string is not valid utf-8"),
            WireError::EmptyBatch => write!(f, "frame declared zero messages"),
        }
    }
}

impl Error for WireError {}

/// Sanity cap on decoded lengths (64 MiB), guarding against corrupt
/// frames allocating unbounded memory.
const MAX_DECODED_LEN: u64 = 64 << 20;

/// Append-only buffer for encoding wire values.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single raw byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.put_u8(b);
    }

    /// Appends raw bytes verbatim.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.put_slice(s);
    }

    /// Appends `v` as an LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Consumes the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }

    /// Splits off everything written so far as a frozen [`Bytes`],
    /// leaving the writer empty but with its spare capacity intact so
    /// it can be reused for the next message. Once all outstanding
    /// [`Bytes`] handles are dropped, `BytesMut::reserve` reclaims the
    /// allocation — this is what makes a pooled writer allocation-free
    /// in steady state.
    pub fn take_bytes(&mut self) -> Bytes {
        self.buf.split().freeze()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }
}

/// A small pool of reusable [`WireWriter`]s for hot-path encoding.
///
/// The replication fan-out encodes one `ProcMsg` per *activation*, not
/// per peer; [`WriterPool::encode`] produces the frozen [`Bytes`] that
/// are then cheap-cloned to every destination. Buffers are recycled via
/// [`WireWriter::take_bytes`], so steady-state encoding performs no
/// allocation once the pool has warmed up.
#[derive(Debug, Default)]
pub struct WriterPool {
    free: Vec<WireWriter>,
}

impl WriterPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `value` using a pooled buffer, returning the frozen
    /// bytes. The buffer returns to the pool for reuse.
    pub fn encode<T: Wire>(&mut self, value: &T) -> Bytes {
        let mut w = self.free.pop().unwrap_or_default();
        w.reserve(value.encoded_len());
        value.encode(&mut w);
        let out = w.take_bytes();
        self.free.push(w);
        out
    }

    /// Checks out a writer (empty, possibly with warm capacity).
    /// Return it with [`WriterPool::put_back`] after taking its bytes.
    #[must_use]
    pub fn checkout(&mut self) -> WireWriter {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a writer to the pool. Any unfrozen contents are cleared.
    pub fn put_back(&mut self, mut w: WireWriter) {
        if !w.is_empty() {
            let _ = w.take_bytes();
        }
        self.free.push(w);
    }
}

/// Cursor over a byte slice for decoding wire values.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    /// When the slice is backed by a refcounted [`Bytes`] buffer,
    /// byte-string fields decode as zero-copy sub-slices of it instead
    /// of fresh heap copies.
    shared: Option<&'a Bytes>,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, shared: None }
    }

    /// Creates a reader over a refcounted buffer. Byte-string fields
    /// ([`Bytes`] values, e.g. event blob payloads) decode as cheap
    /// `slice_ref` views into `buf` rather than heap copies.
    #[must_use]
    pub fn from_shared(buf: &'a Bytes) -> Self {
        Self {
            buf: &buf[..],
            shared: Some(buf),
        }
    }

    /// Splits off a sub-reader over the next `n` bytes, preserving any
    /// shared backing so nested zero-copy decoding keeps working (used
    /// by the multi-command frame codec).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn sub_reader(&mut self, n: usize) -> Result<WireReader<'a>, WireError> {
        let shared = self.shared;
        let head = self.get_slice(n)?;
        Ok(WireReader { buf: head, shared })
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if the buffer is empty.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let (&first, rest) = self.buf.split_first().ok_or(WireError::UnexpectedEof {
            needed: 1,
            remaining: 0,
        })?;
        self.buf = rest;
        Ok(first)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.buf.len(),
            });
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads an LEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::VarintOverflow`] for varints wider than 64
    /// bits and [`WireError::UnexpectedEof`] for truncated input.
    pub fn get_varint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a varint length prefix, enforcing the sanity cap.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LengthTooLarge`] if the declared length
    /// exceeds the 64 MiB cap, plus any varint decoding error.
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let declared = self.get_varint()?;
        if declared > MAX_DECODED_LEN {
            return Err(WireError::LengthTooLarge { declared });
        }
        Ok(declared as usize)
    }

    /// Reads `n` raw bytes as an owned [`Bytes`] value — zero-copy
    /// (`slice_ref`) when this reader was built with
    /// [`WireReader::from_shared`], a heap copy otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn get_bytes(&mut self, n: usize) -> Result<Bytes, WireError> {
        let shared = self.shared;
        let head = self.get_slice(n)?;
        Ok(match shared {
            Some(backing) => backing.slice_ref(head),
            None => Bytes::copy_from_slice(head),
        })
    }
}

/// Returns the number of bytes the LEB128 encoding of `v` occupies.
#[must_use]
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Types encodable on the Rivulet inter-process wire.
///
/// Implementations must uphold `encoded_len() == encode(..).len()` and
/// `decode(encode(x)) == x`; the [`roundtrip`] helper asserts both and
/// is used throughout the test suites.
pub trait Wire: Sized {
    /// Exact number of bytes [`Wire::encode`] will append.
    fn encoded_len(&self) -> usize;

    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Decodes a value from `r`, consuming exactly the encoded bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing malformed input.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: encodes `self` into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: decodes a value from `buf`, requiring that the
    /// whole buffer is consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed input or trailing bytes.
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let value = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(WireError::LengthTooLarge {
                declared: r.remaining() as u64,
            });
        }
        Ok(value)
    }

    /// Like [`Wire::from_bytes`], but byte-string fields decode as
    /// zero-copy views into `buf` (see [`WireReader::from_shared`]).
    /// This is the arrival-path entry point: a decoded event's blob
    /// payload shares the network buffer instead of re-allocating.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed input or trailing bytes.
    fn from_shared_bytes(buf: &Bytes) -> Result<Self, WireError> {
        let mut r = WireReader::from_shared(buf);
        let value = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(WireError::LengthTooLarge {
                declared: r.remaining() as u64,
            });
        }
        Ok(value)
    }
}

impl Wire for u8 {
    fn encoded_len(&self) -> usize {
        1
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(*self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_u8()
    }
}

impl Wire for bool {
    fn encoded_len(&self) -> usize {
        1
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(u8::from(*self));
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag { ty: "bool", tag }),
        }
    }
}

impl Wire for u32 {
    fn encoded_len(&self) -> usize {
        varint_len(u64::from(*self))
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(u64::from(*self));
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = r.get_varint()?;
        u32::try_from(v).map_err(|_| WireError::VarintOverflow)
    }
}

impl Wire for u64 {
    fn encoded_len(&self) -> usize {
        varint_len(*self)
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(*self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_varint()
    }
}

impl Wire for f64 {
    fn encoded_len(&self) -> usize {
        8
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let raw = r.get_slice(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(raw);
        Ok(f64::from_le_bytes(arr))
    }
}

impl Wire for Bytes {
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.len() as u64);
        w.put_slice(self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        r.get_bytes(len)
    }
}

impl Wire for String {
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.len() as u64);
        w.put_slice(self.as_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let raw = r.get_slice(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Wire::encoded_len).sum::<usize>()
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut out = Vec::with_capacity(len.min(1_024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }

    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::encoded_len)
    }

    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag { ty: "Option", tag }),
        }
    }
}

/// Asserts that `value` survives an encode/decode cycle and that its
/// [`Wire::encoded_len`] is exact. Intended for use in tests.
///
/// # Panics
///
/// Panics if the roundtrip fails or the length accounting is wrong.
pub fn roundtrip<T: Wire + PartialEq + fmt::Debug>(value: &T) {
    let bytes = value.to_bytes();
    assert_eq!(
        bytes.len(),
        value.encoded_len(),
        "encoded_len mismatch for {value:?}"
    );
    let decoded = T::from_bytes(&bytes).expect("decode failed");
    assert_eq!(&decoded, value, "roundtrip mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_len_matches_encoding() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut w = WireWriter::new();
            w.put_varint(v);
            assert_eq!(w.len(), varint_len(v), "value {v}");
        }
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 127, 128, 255, 256, 1 << 14, (1 << 14) - 1, u64::MAX] {
            let mut w = WireWriter::new();
            w.put_varint(v);
            let buf = w.into_bytes();
            let mut r = WireReader::new(&buf);
            assert_eq!(r.get_varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_overflow_detected() {
        // Eleven continuation bytes encode more than 64 bits.
        let buf = [0xffu8; 11];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn truncated_input_reports_eof() {
        let mut r = WireReader::new(&[]);
        assert!(matches!(r.get_u8(), Err(WireError::UnexpectedEof { .. })));
        let mut r = WireReader::new(&[1, 2]);
        assert!(matches!(
            r.get_slice(3),
            Err(WireError::UnexpectedEof {
                needed: 3,
                remaining: 2
            })
        ));
    }

    #[test]
    fn bool_rejects_junk_tag() {
        assert_eq!(
            bool::from_bytes(&[7]),
            Err(WireError::InvalidTag { ty: "bool", tag: 7 })
        );
    }

    #[test]
    fn option_rejects_junk_tag() {
        assert_eq!(
            Option::<u8>::from_bytes(&[9]),
            Err(WireError::InvalidTag {
                ty: "Option",
                tag: 9
            })
        );
    }

    #[test]
    fn length_cap_enforced() {
        let mut w = WireWriter::new();
        w.put_varint(MAX_DECODED_LEN + 1);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.get_len(), Err(WireError::LengthTooLarge { .. })));
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut w = WireWriter::new();
        5u32.encode(&mut w);
        w.put_u8(0xaa);
        let buf = w.into_bytes();
        assert!(u32::from_bytes(&buf).is_err());
    }

    #[test]
    fn string_utf8_validation() {
        let mut w = WireWriter::new();
        w.put_varint(2);
        w.put_slice(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        assert_eq!(String::from_bytes(&buf), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn compound_roundtrips() {
        roundtrip(&true);
        roundtrip(&0xabu8);
        roundtrip(&u32::MAX);
        roundtrip(&u64::MAX);
        roundtrip(&3.25f64);
        roundtrip(&String::from("door-open"));
        roundtrip(&Bytes::from_static(b"\x00\x01\x02"));
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Some(42u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&Vec::<String>::new());
        roundtrip(&(7u32, String::from("pair")));
        roundtrip(&vec![(1u32, 2u64), (3, 4)]);
    }

    #[test]
    fn take_bytes_leaves_writer_reusable() {
        let mut w = WireWriter::with_capacity(64);
        w.put_varint(300);
        let first = w.take_bytes();
        assert!(w.is_empty(), "writer empty after take_bytes");
        w.put_varint(7);
        let second = w.take_bytes();
        assert_eq!(&first[..], &300u64.to_bytes()[..]);
        assert_eq!(&second[..], &7u64.to_bytes()[..]);
    }

    #[test]
    fn writer_pool_encodes_and_recycles() {
        let mut pool = WriterPool::new();
        let a = pool.encode(&String::from("hello"));
        let b = pool.encode(&String::from("world"));
        assert_eq!(String::from_bytes(&a).unwrap(), "hello");
        assert_eq!(String::from_bytes(&b).unwrap(), "world");
        // Checkout/put_back path, including a dirty writer.
        let mut w = pool.checkout();
        w.put_u8(0xff);
        pool.put_back(w);
        let c = pool.encode(&42u64);
        assert_eq!(u64::from_bytes(&c).unwrap(), 42);
    }

    #[test]
    fn shared_reader_decodes_bytes_zero_copy() {
        let blob = Bytes::from(vec![9u8; 128]);
        let encoded = blob.to_bytes();
        let decoded = Bytes::from_shared_bytes(&encoded).unwrap();
        assert_eq!(decoded, blob);
        // Zero-copy: the decoded value points into the arrival buffer.
        let enc_range = encoded.as_ptr() as usize..encoded.as_ptr() as usize + encoded.len();
        assert!(
            enc_range.contains(&(decoded.as_ptr() as usize)),
            "decoded Bytes should be a view into the shared buffer"
        );
    }

    #[test]
    fn sub_reader_preserves_shared_backing() {
        let blob = Bytes::from(vec![3u8; 32]);
        let mut w = WireWriter::new();
        w.put_varint(blob.to_bytes().len() as u64);
        blob.encode(&mut w);
        let outer = w.into_bytes();
        let mut r = WireReader::from_shared(&outer);
        let len = r.get_len().unwrap();
        let mut sub = r.sub_reader(len).unwrap();
        let decoded = Bytes::decode(&mut sub).unwrap();
        assert!(sub.is_empty() && r.is_empty());
        let range = outer.as_ptr() as usize..outer.as_ptr() as usize + outer.len();
        assert!(range.contains(&(decoded.as_ptr() as usize)));
    }

    #[test]
    fn unshared_reader_still_copies() {
        let blob = Bytes::from(vec![5u8; 16]);
        let encoded = blob.to_bytes();
        let decoded = Bytes::from_bytes(&encoded).unwrap();
        assert_eq!(decoded, blob);
    }

    #[test]
    fn f64_nan_payload_note() {
        // NaN != NaN, so roundtrip() cannot be used; check bits directly.
        let bytes = f64::NAN.to_bytes();
        let decoded = f64::from_bytes(&bytes).unwrap();
        assert!(decoded.is_nan());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn varint_roundtrip_any(v in any::<u64>()) {
            let mut w = WireWriter::new();
            w.put_varint(v);
            prop_assert_eq!(w.len(), varint_len(v));
            let buf = w.into_bytes();
            let mut r = WireReader::new(&buf);
            prop_assert_eq!(r.get_varint().unwrap(), v);
            prop_assert!(r.is_empty());
        }

        #[test]
        fn string_roundtrip_any(s in ".*") {
            roundtrip(&s);
        }

        #[test]
        fn vec_u64_roundtrip_any(v in proptest::collection::vec(any::<u64>(), 0..64)) {
            roundtrip(&v);
        }

        #[test]
        fn decoder_never_panics_on_junk(buf in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding arbitrary bytes may fail but must not panic.
            let _ = Vec::<String>::from_bytes(&buf);
            let _ = Option::<u64>::from_bytes(&buf);
            let _ = String::from_bytes(&buf);
        }
    }
}
