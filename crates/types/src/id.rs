//! Identifiers for processes, devices, apps, operators, and events.

use std::fmt;

use crate::wire::{Wire, WireError, WireReader, WireWriter};

macro_rules! impl_u32_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw numeric value of this identifier.
            #[must_use]
            pub fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl Wire for $name {
            fn encoded_len(&self) -> usize {
                self.0.encoded_len()
            }

            fn encode(&self, w: &mut WireWriter) {
                self.0.encode(w);
            }

            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(Self(u32::decode(r)?))
            }
        }
    };
}

impl_u32_id! {
    /// Identity of a Rivulet process (one runtime instance per host:
    /// a TV, fridge, hub, phone, …).
    ///
    /// Process identities are totally ordered; the Gapless ring and the
    /// execution-service chain both derive their successor relation
    /// from this order.
    ProcessId, "p"
}

impl_u32_id! {
    /// Identity of a physical sensor (door, motion, temperature, …).
    SensorId, "s"
}

impl_u32_id! {
    /// Identity of a physical actuator (light, siren, thermostat, …).
    ActuatorId, "a"
}

impl_u32_id! {
    /// Identity of a deployed application graph.
    AppId, "app"
}

impl_u32_id! {
    /// Identity of an operator inside an application graph.
    OperatorId, "op"
}

impl_u32_id! {
    /// Identity of a deployed routine — an ordered multi-actuator
    /// command sequence executed with all-or-nothing semantics by the
    /// active logic node (SafeHome-style atomicity; see
    /// `rivulet-core`'s routine engine).
    ///
    /// A `RoutineId` names the *spec*; each firing of the routine is a
    /// distinct **instance**, numbered by a per-process `u64` counter
    /// that also keys the staging protocol frames and the ledger
    /// entries of that firing.
    RoutineId, "r"
}

/// Globally unique identity of a sensor event.
///
/// Events are identified by their source sensor plus a per-sensor
/// sequence number assigned at emission. Sequence numbers make
/// duplicate suppression (ring forwarding revisits processes) and gap
/// detection trivial, and provide the "timestamp of the last event
/// received" used by the Bayou-style anti-entropy synchronization of
/// the Gapless protocol (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    /// The sensor that produced the event.
    pub sensor: SensorId,
    /// Position of the event in the sensor's emission order (0-based).
    pub seq: u64,
}

impl EventId {
    /// Creates an event identity from a sensor and sequence number.
    #[must_use]
    pub fn new(sensor: SensorId, seq: u64) -> Self {
        Self { sensor, seq }
    }

    /// Returns the identity of the event emitted immediately after this
    /// one by the same sensor.
    #[must_use]
    pub fn successor(self) -> Self {
        Self {
            sensor: self.sensor,
            seq: self.seq + 1,
        }
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.sensor, self.seq)
    }
}

impl Wire for EventId {
    fn encoded_len(&self) -> usize {
        self.sensor.encoded_len() + self.seq.encoded_len()
    }

    fn encode(&self, w: &mut WireWriter) {
        self.sensor.encode(w);
        self.seq.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            sensor: SensorId::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn display_uses_short_prefixes() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(SensorId(1).to_string(), "s1");
        assert_eq!(ActuatorId(9).to_string(), "a9");
        assert_eq!(AppId(2).to_string(), "app2");
        assert_eq!(OperatorId(4).to_string(), "op4");
        assert_eq!(EventId::new(SensorId(1), 17).to_string(), "s1#17");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(EventId::new(SensorId(0), 5) < EventId::new(SensorId(0), 6));
        assert!(EventId::new(SensorId(0), 5) < EventId::new(SensorId(1), 0));
    }

    #[test]
    fn successor_increments_seq_only() {
        let id = EventId::new(SensorId(4), 10);
        let next = id.successor();
        assert_eq!(next.sensor, SensorId(4));
        assert_eq!(next.seq, 11);
    }

    #[test]
    fn from_into_u32_roundtrip() {
        let p: ProcessId = 42u32.into();
        assert_eq!(u32::from(p), 42);
        assert_eq!(p.as_u32(), 42);
    }

    #[test]
    fn wire_roundtrip_ids() {
        roundtrip(&ProcessId(7));
        roundtrip(&SensorId(u32::MAX));
        roundtrip(&EventId::new(SensorId(3), u64::MAX));
    }
}
