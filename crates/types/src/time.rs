//! Instants and durations with microsecond resolution.
//!
//! Rivulet's protocol logic is written against virtual time so that the
//! discrete-event simulator can run experiments deterministically. The
//! live (threaded) driver maps [`Time`] to microseconds elapsed since
//! driver start-up, so the same protocol code runs unchanged on wall
//! clocks.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// A span of time with microsecond resolution.
///
/// A thin wrapper over a `u64` count of microseconds; unlike
/// [`std::time::Duration`] it is `Copy`-cheap to encode on the wire and
/// supports the saturating arithmetic the protocol code needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000)
    }

    /// Returns the duration as whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns `self * factor`, saturating at `u64::MAX` microseconds.
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> Self {
        Self(self.0.saturating_mul(factor))
    }

    /// Integer division of durations, yielding how many times `other`
    /// fits into `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is [`Duration::ZERO`].
    #[must_use]
    pub fn div_duration(self, other: Duration) -> u64 {
        assert!(other.0 != 0, "division by zero-length duration");
        self.0 / other.0
    }

    /// Scales the duration by a non-negative float, rounding to the
    /// nearest microsecond.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0, "negative duration scale");
        Self((self.0 as f64 * factor).round() as u64)
    }

    /// Converts to a [`std::time::Duration`] for use by the live driver.
    #[must_use]
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_micros(self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "0s")
        } else if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}s", self.0 / 1_000_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<std::time::Duration> for Duration {
    fn from(d: std::time::Duration) -> Self {
        Self(u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Wire for Duration {
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }

    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self(u64::decode(r)?))
    }
}

/// An instant of time: microseconds elapsed since the start of the run.
///
/// Under the simulator this is virtual time; under the live driver it
/// is wall-clock time since driver start. All protocol timestamps
/// (event emission, keep-alive deadlines, polling slots) use this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The origin of the run.
    pub const ZERO: Time = Time(0);

    /// The latest representable instant; useful as an "infinite"
    /// deadline sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from microseconds since the origin.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates an instant from milliseconds since the origin.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000)
    }

    /// Creates an instant from seconds since the origin.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000)
    }

    /// Microseconds since the origin.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since the origin.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed from `earlier` to `self`, or [`Duration::ZERO`] if
    /// `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the instant `d` after `self`, saturating at [`Time::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.as_micros()))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<Duration> for Time {
    type Output = Time;

    fn add(self, rhs: Duration) -> Time {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;

    fn sub(self, rhs: Time) -> Duration {
        self.duration_since(rhs)
    }
}

impl Wire for Time {
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }

    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self(u64::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(2), Duration::from_millis(2_000));
        assert_eq!(Duration::from_millis(3), Duration::from_micros(3_000));
        assert_eq!(Duration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(500);
        let b = Duration::from_millis(250);
        assert_eq!(a + b, Duration::from_millis(750));
        assert_eq!(a - b, Duration::from_millis(250));
        assert_eq!(b - a, Duration::ZERO, "subtraction saturates");
        assert_eq!(a.saturating_mul(4), Duration::from_secs(2));
        assert_eq!(
            Duration::from_secs(10).div_duration(Duration::from_secs(3)),
            3
        );
    }

    #[test]
    fn duration_mul_f64_rounds() {
        assert_eq!(
            Duration::from_micros(10).mul_f64(0.25),
            Duration::from_micros(3)
        );
        assert_eq!(
            Duration::from_secs(1).mul_f64(1.5),
            Duration::from_millis(1_500)
        );
    }

    #[test]
    #[should_panic(expected = "division by zero-length duration")]
    fn div_by_zero_duration_panics() {
        let _ = Duration::from_secs(1).div_duration(Duration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_secs(24);
        assert_eq!(t + Duration::from_secs(3), Time::from_secs(27));
        assert_eq!(Time::from_secs(27) - t, Duration::from_secs(3));
        assert_eq!(t - Time::from_secs(30), Duration::ZERO, "elapsed saturates");
        assert_eq!(Time::MAX + Duration::from_secs(1), Time::MAX);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Duration::ZERO.to_string(), "0s");
        assert_eq!(Duration::from_secs(2).to_string(), "2s");
        assert_eq!(Duration::from_millis(20).to_string(), "20ms");
        assert_eq!(Duration::from_micros(7).to_string(), "7us");
        assert_eq!(Time::from_millis(1_500).to_string(), "t=1.500000s");
    }

    #[test]
    fn std_duration_conversion() {
        let d: Duration = std::time::Duration::from_millis(42).into();
        assert_eq!(d, Duration::from_millis(42));
        assert_eq!(d.to_std(), std::time::Duration::from_millis(42));
    }

    #[test]
    fn wire_roundtrip_time() {
        roundtrip(&Time::from_micros(123_456_789));
        roundtrip(&Duration::from_micros(u64::MAX));
    }
}
