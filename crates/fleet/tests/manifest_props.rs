//! Property tests for manifest expansion: deterministic,
//! duplicate-free, declaration-order-insensitive, with per-home seeds
//! that are a pure function of `(fleet_seed, home_index)` — never of
//! thread count or enumeration order.

use proptest::prelude::*;
use rivulet_fleet::manifest::derive_home_seed;
use rivulet_fleet::FleetManifest;

/// The axis catalog random manifests draw from: every entry is a
/// `[base]` key with a pool of legal values (as manifest literals).
const AXIS_POOL: [(&str, &[&str]); 7] = [
    ("loss", &["0.0", "0.05", "0.2"]),
    ("ack_mode", &["\"cumulative\"", "\"per_event\""]),
    ("durable", &["false", "true"]),
    ("processes", &["3", "4", "5"]),
    ("event_bytes", &["4", "8", "1024"]),
    ("rate_per_sec", &["5", "10", "20"]),
    ("crash_at_secs", &["-1.0", "2.0", "4.5"]),
];

/// Builds manifest text with the chosen axes, optionally reversing the
/// axis declaration order.
fn manifest_text(
    seed: u64,
    homes_per_config: usize,
    axis_mask: u8,
    value_counts: &[usize; 7],
    reversed: bool,
) -> String {
    let mut axes: Vec<String> = AXIS_POOL
        .iter()
        .enumerate()
        .filter(|(i, _)| axis_mask & (1 << i) != 0)
        .map(|(i, (key, pool))| {
            let n = value_counts[i].clamp(1, pool.len());
            format!("{key} = [{}]", pool[..n].join(", "))
        })
        .collect();
    if reversed {
        axes.reverse();
    }
    format!(
        "[fleet]\nname = \"prop\"\nseed = {seed}\nhomes_per_config = {homes_per_config}\n\n\
         [base]\nprocesses = 3\nduration_secs = 2.0\n\n[axes]\n{}\n",
        axes.join("\n")
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn expansion_is_deterministic_and_duplicate_free(
        seed in any::<u64>(),
        homes_per_config in 1usize..4,
        axis_mask in 0u8..128,
        c0 in 1usize..4, c1 in 1usize..4, c2 in 1usize..4, c3 in 1usize..4,
        c4 in 1usize..4, c5 in 1usize..4, c6 in 1usize..4,
    ) {
        let counts = [c0, c1, c2, c3, c4, c5, c6];
        let text = manifest_text(seed, homes_per_config, axis_mask, &counts, false);
        let manifest = FleetManifest::from_text(&text).expect("pool values are all legal");

        // Deterministic: two expansions are identical.
        let specs = manifest.expand().unwrap();
        prop_assert_eq!(&specs, &manifest.expand().unwrap());

        // Size = product of axis lengths x replicas; indices contiguous.
        prop_assert_eq!(specs.len(), manifest.fleet_size());
        for (i, spec) in specs.iter().enumerate() {
            prop_assert_eq!(spec.home_index, i as u64);
            // Seeds are a pure function of (fleet_seed, home_index).
            prop_assert_eq!(spec.seed, derive_home_seed(seed, i as u64));
        }

        // Duplicate-free: every home's identity (index, seed) is
        // unique, and within one replica group only the seed differs.
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        let before = seeds.len();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), before, "derived seeds collided");

        // Every permutation of axis values appears exactly
        // homes_per_config times.
        let mut combos: Vec<Vec<(String, String)>> =
            specs.iter().map(|s| s.axis_values.clone()).collect();
        combos.sort();
        combos.dedup();
        prop_assert_eq!(combos.len() * homes_per_config, specs.len());
    }

    #[test]
    fn expansion_ignores_declaration_order(
        seed in any::<u64>(),
        axis_mask in 1u8..128,
        c0 in 1usize..4, c1 in 1usize..4, c2 in 1usize..4, c3 in 1usize..4,
        c4 in 1usize..4, c5 in 1usize..4, c6 in 1usize..4,
    ) {
        let counts = [c0, c1, c2, c3, c4, c5, c6];
        let forward = manifest_text(seed, 2, axis_mask, &counts, false);
        let backward = manifest_text(seed, 2, axis_mask, &counts, true);
        let a = FleetManifest::from_text(&forward).unwrap();
        let b = FleetManifest::from_text(&backward).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a.expand().unwrap(), &b.expand().unwrap());
    }

    #[test]
    fn seeds_are_stable_under_any_enumeration_order(
        fleet_seed in any::<u64>(),
        n in 1u64..512,
    ) {
        // Forward, backward, and strided enumeration all agree: the
        // derivation depends only on (fleet_seed, index), which is
        // what makes per-home seeds independent of worker scheduling.
        let forward: Vec<u64> = (0..n).map(|i| derive_home_seed(fleet_seed, i)).collect();
        let backward: Vec<u64> = (0..n).rev().map(|i| derive_home_seed(fleet_seed, i)).collect();
        for (i, seed) in forward.iter().enumerate() {
            prop_assert_eq!(*seed, backward[n as usize - 1 - i]);
        }
        let mut uniq = forward.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), n as usize, "seed collision within a fleet");
    }
}
