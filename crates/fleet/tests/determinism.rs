//! The fleet determinism contract: same manifest + same fleet seed ⇒
//! byte-identical merged `ObsSnapshot` JSON, regardless of how many
//! worker threads executed the homes. This is the same check the CI
//! smoke job performs at 64-home scale with the committed manifest.

use rivulet_fleet::executor::run_fleet;
use rivulet_fleet::FleetManifest;

/// A 12-home fleet crossing link quality with a failure schedule —
/// enough to exercise crash spans, loss randomness, and the WAL in the
/// merged snapshot.
const MANIFEST: &str = r#"
[fleet]
name = "determinism"
seed = 1234
homes_per_config = 2

[base]
processes = 3
receivers = 2
rate_per_sec = 10
duration_secs = 6.0
durable = true

[axes]
loss = [0.0, 0.2]
crash_at_secs = [-1.0, 2.5]
ack_mode = ["cumulative", "per_event"]
"#;

#[test]
fn merged_snapshot_is_byte_identical_across_thread_counts() {
    let manifest = FleetManifest::from_text(MANIFEST).unwrap();
    assert_eq!(manifest.fleet_size(), 16);
    let single = run_fleet(&manifest, 1);
    let quad = run_fleet(&manifest, 4);
    let octo = run_fleet(&manifest, 8);
    assert_eq!(single.merged, quad.merged, "snapshots structurally equal");
    assert_eq!(
        single.merged.to_json(),
        quad.merged.to_json(),
        "1 vs 4 threads: merged JSON must be byte-identical"
    );
    assert_eq!(
        quad.merged.to_json(),
        octo.merged.to_json(),
        "4 vs 8 threads: merged JSON must be byte-identical"
    );
    // Verdicts and totals are part of the contract too.
    assert_eq!(single.events_delivered(), quad.events_delivered());
    assert_eq!(single.homes_failed(), quad.homes_failed());
    let verdicts: Vec<bool> = single.homes.iter().map(|h| h.passed).collect();
    let verdicts_quad: Vec<bool> = quad.homes.iter().map(|h| h.passed).collect();
    assert_eq!(verdicts, verdicts_quad);
}

#[test]
fn same_seed_reruns_are_identical_and_different_seeds_are_not() {
    let manifest = FleetManifest::from_text(MANIFEST).unwrap();
    let a = run_fleet(&manifest, 2);
    let b = run_fleet(&manifest, 2);
    assert_eq!(a.merged.to_json(), b.merged.to_json());

    let mut reseeded = manifest.clone();
    reseeded.seed = 4321;
    let c = run_fleet(&reseeded, 2);
    // The lossy axis consumes randomness, so a different fleet seed
    // must perturb at least some home's timeline.
    assert_ne!(a.merged.to_json(), c.merged.to_json());
}

#[test]
fn fleet_counters_summarize_the_run() {
    let manifest = FleetManifest::from_text(MANIFEST).unwrap();
    let out = run_fleet(&manifest, 3);
    assert_eq!(out.merged.counter("fleet.homes"), 16);
    assert_eq!(out.merged.counter("fleet.configs"), 8);
    assert_eq!(
        out.merged.counter("fleet.events_total"),
        out.events_delivered()
    );
    assert_eq!(
        out.merged.counter("fleet.events_emitted"),
        out.events_emitted()
    );
    // Every home ran with durable storage: WAL counters folded in.
    assert!(out.merged.counter("wal.appends") > 0);
    // Half the configs crash: failover spans from multiple homes
    // survive the merge.
    assert!(!out.merged.spans_named("failover").is_empty());
}
