//! Fleet-scale multi-home orchestration for Rivulet.
//!
//! One Rivulet run simulates one home. The platform's north star is a
//! deployment serving *millions* of homes — and the unit of scale for
//! that claim is the fleet, not the home. This crate turns a single
//! declarative **scenario manifest** into a bulk experiment:
//!
//! 1. **Manifest** ([`manifest`]): a TOML-subset or JSON file
//!    declaring a base home plus sweep axes (home size, device mix,
//!    link quality, failure schedule, ack mode, storage). The axes
//!    expand into the deterministic cartesian set of per-home
//!    configurations, each with a seed derived purely from
//!    `(fleet_seed, home_index)` — so any home of a 100 000-home
//!    fleet re-runs standalone, bit-exactly.
//! 2. **Executor** ([`executor`]): a fixed-size worker pool stealing
//!    homes off a shared queue runs every home to completion — each
//!    an isolated seeded simulation exercising Gapless delivery,
//!    rbcast, the WAL, and the sharded event store at once — and
//!    judges a per-home delivery-correctness verdict.
//! 3. **Report** ([`report`]): per-home [`ObsSnapshot`]s merge (in
//!    home-index order, so the result is byte-identical across thread
//!    counts) into one fleet-wide snapshot with `fleet.*` counters, a
//!    per-axis breakdown table, and the `BENCH_fleet.json` aggregate
//!    the CI baseline gate consumes.
//!
//! ```text
//! cargo run -p rivulet-fleet --release -- run manifests/fleet_smoke.toml
//! ```
//!
//! [`ObsSnapshot`]: rivulet_obs::ObsSnapshot

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod executor;
pub mod manifest;
pub mod report;
pub mod value;

pub use executor::{run_fleet, run_home, FleetOutcome, HomeResult};
pub use manifest::{derive_home_seed, FleetManifest, HomeParams, HomeSpec};
pub use report::{axis_breakdown, render_bench_json, render_summary, Scaling, ScalingPoint};
pub use value::{ParseError, Value};
