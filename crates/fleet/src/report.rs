//! Fleet reports: per-axis breakdowns, the human-readable summary, and
//! the `BENCH_fleet.json` document the CI baseline gate consumes.

use rivulet_bench::tables::{render_axis_table, AxisRow};

use crate::executor::FleetOutcome;

/// Groups homes by each manifest axis value, in manifest order (axes
/// sorted by key; values in declaration order, which is how the
/// expansion enumerates them).
#[must_use]
pub fn axis_breakdown(outcome: &FleetOutcome) -> Vec<AxisRow> {
    // First-seen order over homes in index order reproduces the
    // manifest's axis/value order, because the expansion cycles every
    // axis in declaration order.
    let mut rows: Vec<AxisRow> = Vec::new();
    for home in &outcome.homes {
        for (axis, value) in &home.spec.axis_values {
            let row = match rows
                .iter_mut()
                .find(|r| r.axis == *axis && r.value == *value)
            {
                Some(row) => row,
                None => {
                    rows.push(AxisRow {
                        axis: axis.clone(),
                        value: value.clone(),
                        homes: 0,
                        emitted: 0,
                        delivered: 0,
                        failed: 0,
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.homes += 1;
            row.emitted += home.emitted;
            row.delivered += home.delivered;
            row.failed += u64::from(!home.passed);
        }
    }
    // Present grouped by axis (stable sort keeps value order).
    rows.sort_by(|a, b| a.axis.cmp(&b.axis));
    rows
}

/// One measured point of the thread-scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Worker threads.
    pub threads: usize,
    /// Wall-clock seconds for the whole fleet.
    pub wall_secs: f64,
    /// Aggregate delivered events per second.
    pub events_per_sec: f64,
}

/// Thread-scaling measurement: the same fleet run with one worker and
/// with one worker per core.
#[derive(Debug, Clone, Copy)]
pub struct Scaling {
    /// The single-worker run.
    pub single: ScalingPoint,
    /// The all-cores run.
    pub full: ScalingPoint,
}

impl Scaling {
    /// Measured speedup of the all-cores run over one worker.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.full.events_per_sec / self.single.events_per_sec.max(1e-9)
    }

    /// Fraction of ideal (linear-in-threads) speedup achieved.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.full.threads.max(1) as f64
    }
}

/// Renders the human-readable fleet summary printed after a run.
#[must_use]
pub fn render_summary(outcome: &FleetOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fleet `{}` (seed {}): {} homes on {} threads in {:.2}s\n",
        outcome.name,
        outcome.seed,
        outcome.homes.len(),
        outcome.threads,
        outcome.wall_secs
    ));
    out.push_str(&format!(
        "  events: {} emitted, {} delivered ({:.2}%)  aggregate {:.0} events/s, {:.1} homes/s\n",
        outcome.events_emitted(),
        outcome.events_delivered(),
        100.0 * outcome.events_delivered() as f64 / outcome.events_emitted().max(1) as f64,
        outcome.events_per_sec(),
        outcome.homes_per_sec(),
    ));
    let failed = outcome.homes_failed();
    if failed == 0 {
        out.push_str("  verdicts: all homes met their delivery-correctness floor\n");
    } else {
        out.push_str(&format!(
            "  verdicts: {failed} home(s) FAILED their delivery-correctness floor:\n"
        ));
        for home in outcome.homes.iter().filter(|h| !h.passed).take(10) {
            out.push_str(&format!(
                "    {}  delivered {}/{} (floor {})\n",
                home.spec, home.delivered, home.emitted, home.expected_floor
            ));
        }
        if failed > 10 {
            out.push_str(&format!("    ... and {} more\n", failed - 10));
        }
    }
    out.push_str(&render_axis_table(&axis_breakdown(outcome)));
    out
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_owned()
    }
}

/// Renders `BENCH_fleet.json`: the fleet aggregate block the baseline
/// gate parses, the per-axis breakdown, and (when measured) the
/// thread-scaling section. Wall-clock figures live *only* here — the
/// merged `ObsSnapshot` stays wall-clock-free so it can be compared
/// byte-for-byte across thread counts.
#[must_use]
pub fn render_bench_json(outcome: &FleetOutcome, scaling: Option<&Scaling>) -> String {
    let mut out = String::from("{\n  \"fleet\": {\n");
    out.push_str(&format!("    \"name\": \"{}\",\n", outcome.name));
    out.push_str(&format!("    \"seed\": {},\n", outcome.seed));
    out.push_str(&format!("    \"homes\": {},\n", outcome.homes.len()));
    out.push_str(&format!("    \"threads\": {},\n", outcome.threads));
    out.push_str(&format!(
        "    \"events_emitted\": {},\n",
        outcome.events_emitted()
    ));
    out.push_str(&format!(
        "    \"events_delivered\": {},\n",
        outcome.events_delivered()
    ));
    out.push_str(&format!(
        "    \"homes_failed\": {},\n",
        outcome.homes_failed()
    ));
    out.push_str(&format!(
        "    \"wall_secs\": {},\n",
        json_f(outcome.wall_secs)
    ));
    out.push_str(&format!(
        "    \"events_per_sec\": {},\n",
        json_f(outcome.events_per_sec())
    ));
    out.push_str(&format!(
        "    \"homes_per_sec\": {}\n  }},\n",
        json_f(outcome.homes_per_sec())
    ));
    out.push_str("  \"axes\": [\n");
    let rows = axis_breakdown(outcome);
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"axis\": \"{}\", \"value\": \"{}\", \"homes\": {}, ",
                    "\"emitted\": {}, \"delivered\": {}, \"failed\": {}, ",
                    "\"delivered_fraction\": {}}}"
                ),
                r.axis,
                r.value,
                r.homes,
                r.emitted,
                r.delivered,
                r.failed,
                json_f(r.delivered_fraction()),
            )
        })
        .collect();
    out.push_str(&rendered.join(",\n"));
    out.push_str("\n  ]");
    if let Some(s) = scaling {
        out.push_str(",\n  \"scaling\": {\n");
        for (label, point) in [("single", s.single), ("full", s.full)] {
            out.push_str(&format!(
                "    \"{label}\": {{\"threads\": {}, \"wall_secs\": {}, \"events_per_sec\": {}}},\n",
                point.threads,
                json_f(point.wall_secs),
                json_f(point.events_per_sec),
            ));
        }
        out.push_str(&format!("    \"speedup\": {},\n", json_f(s.speedup())));
        out.push_str(&format!(
            "    \"efficiency\": {}\n  }}",
            json_f(s.efficiency())
        ));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_fleet;
    use crate::manifest::FleetManifest;

    fn outcome() -> FleetOutcome {
        let m = FleetManifest::from_text(
            r#"
[fleet]
name = "report-test"
seed = 3
homes_per_config = 1

[base]
processes = 3
rate_per_sec = 10
duration_secs = 3.0

[axes]
loss = [0.0, 0.1]
durable = [false, true]
"#,
        )
        .unwrap();
        run_fleet(&m, 2)
    }

    #[test]
    fn breakdown_covers_every_axis_value() {
        let out = outcome();
        let rows = axis_breakdown(&out);
        // Two axes x two values each.
        assert_eq!(rows.len(), 4);
        // Every axis row accounts for every home exactly once.
        for axis in ["loss", "durable"] {
            let total: u64 = rows
                .iter()
                .filter(|r| r.axis == axis)
                .map(|r| r.homes)
                .sum();
            assert_eq!(total, out.homes.len() as u64, "axis {axis}");
        }
    }

    #[test]
    fn bench_json_contains_gate_fields() {
        let out = outcome();
        let json = render_bench_json(&out, None);
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"homes_failed\": 0"));
        assert!(json.contains("\"axis\": \"loss\""));
        assert!(!json.contains("scaling"));
        let s = Scaling {
            single: ScalingPoint {
                threads: 1,
                wall_secs: 2.0,
                events_per_sec: 100.0,
            },
            full: ScalingPoint {
                threads: 4,
                wall_secs: 0.55,
                events_per_sec: 364.0,
            },
        };
        let json = render_bench_json(&out, Some(&s));
        assert!(json.contains("\"scaling\""));
        assert!(json.contains("\"efficiency\": 0.910"), "{json}");
    }

    #[test]
    fn summary_mentions_verdicts_and_axes() {
        let out = outcome();
        let text = render_summary(&out);
        assert!(text.contains("report-test"));
        assert!(text.contains("delivery-correctness floor"));
        assert!(text.contains("Fleet breakdown"));
    }
}
