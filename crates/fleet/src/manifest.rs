//! Scenario manifests: a declarative description of a whole fleet.
//!
//! A manifest names a **base** home configuration plus a set of
//! **axes** — per-parameter value lists — and expands into the
//! cartesian product of all axis values, times `homes_per_config`
//! replicas per permutation. Expansion is deterministic and
//! declaration-order-insensitive (axes combine in sorted key order),
//! every home gets a stable index in `0..n`, and each home's RNG seed
//! derives purely from `(fleet_seed, home_index)` — so any single home
//! out of a hundred-thousand-home fleet can be re-run standalone
//! (`fleet home manifest.toml 1234`) and reproduce its run bit-exactly.

use std::fmt;

use rivulet_bench::common::DeliveryScenario;
use rivulet_core::config::{AckMode, ForwardingMode};
use rivulet_core::delivery::Delivery;
use rivulet_devices::fault::FaultKind;
use rivulet_types::{Duration, Time};

use crate::value::{parse, Document, ParseError, Value};

/// Derives the RNG seed of home `home_index` in a fleet seeded with
/// `fleet_seed`.
///
/// This is a SplitMix64 step over the golden-ratio stream: for a fixed
/// `fleet_seed` it is injective in `home_index` (the pre-mix is affine
/// with an odd multiplier and the finalizer is a bijection), so no two
/// homes of one fleet ever share a seed. It is a pure function of its
/// two arguments — independent of thread count, expansion order, and
/// platform — which is what makes single-home re-runs reproducible.
#[must_use]
pub fn derive_home_seed(fleet_seed: u64, home_index: u64) -> u64 {
    let mut z =
        fleet_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(home_index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parameters of one simulated home — the manifest's `[base]` section,
/// with any axis values substituted in.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeParams {
    /// Rivulet processes (hosts) in the home.
    pub processes: usize,
    /// Number of processes able to hear the sensor (placed farthest
    /// from the application-bearing process first, as in Fig. 6).
    pub receivers: usize,
    /// Event payload bytes (Table 3 size class).
    pub event_bytes: usize,
    /// Sensor event rate per second.
    pub rate_per_sec: u64,
    /// Virtual run length in seconds.
    pub duration_secs: f64,
    /// Delivery guarantee (`"gap"` / `"gapless"`).
    pub delivery: Delivery,
    /// Gapless forwarding protocol (`"ring"` / `"broadcast"`).
    pub forwarding: ForwardingMode,
    /// Broadcast acknowledgement mode (`"cumulative"` /
    /// `"per_event"`).
    pub ack_mode: AckMode,
    /// Loss probability on each sensor→receiver link.
    pub loss: f64,
    /// Same-destination frame coalescing.
    pub coalescing: bool,
    /// Attach per-process durable storage (simulated WAL backend).
    pub durable: bool,
    /// Crash the application-bearing process at this virtual second;
    /// negative means no crash.
    pub crash_at_secs: f64,
    /// Failure-detection threshold in seconds.
    pub failure_timeout_secs: f64,
    /// Delivery-correctness verdict floor: the fraction of *expected*
    /// deliveries (loss- and crash-adjusted) a home must reach to
    /// pass.
    pub min_delivered_fraction: f64,
    /// Device fault injected into the home's sensor (`"none"`,
    /// `"stuck"`, `"flapping"`, `"drift"`, `"ghost"`, `"missed"`,
    /// `"battery"`).
    pub fault_kind: Option<FaultKind>,
    /// Rate of the injected fault (0 disables injection).
    pub fault_rate: f64,
    /// Enable the platform's device-fault repair layer.
    pub repair: bool,
    /// Enable the routine execution engine: the home's app fires a
    /// one-step routine every tenth event, exercising staging and the
    /// hash-chained execution ledger.
    pub routines: bool,
}

impl Default for HomeParams {
    fn default() -> Self {
        Self {
            processes: 5,
            receivers: 1,
            event_bytes: 8,
            rate_per_sec: 10,
            duration_secs: 10.0,
            delivery: Delivery::Gapless,
            forwarding: ForwardingMode::Ring,
            ack_mode: AckMode::Cumulative,
            loss: 0.0,
            coalescing: true,
            durable: false,
            crash_at_secs: -1.0,
            failure_timeout_secs: 2.0,
            min_delivered_fraction: 0.9,
            fault_kind: None,
            fault_rate: 0.0,
            repair: false,
            routines: false,
        }
    }
}

impl HomeParams {
    /// Applies one manifest value to the named field. Unknown keys and
    /// type mismatches are errors — a typo in an axis name must not
    /// silently expand into a fleet that sweeps nothing.
    pub fn set(&mut self, key: &str, value: &Value) -> Result<(), ParseError> {
        fn bad<T>(key: &str, want: &str, got: &Value) -> Result<T, ParseError> {
            Err(ParseError {
                message: format!("`{key}` expects {want}, got `{}`", got.label()),
            })
        }
        match key {
            "processes" => match value.as_u64() {
                Some(v @ 1..) => self.processes = v as usize,
                _ => return bad(key, "a positive integer", value),
            },
            "receivers" => match value.as_u64() {
                Some(v @ 1..) => self.receivers = v as usize,
                _ => return bad(key, "a positive integer", value),
            },
            "event_bytes" => match value.as_u64() {
                Some(v) => self.event_bytes = v as usize,
                None => return bad(key, "a non-negative integer", value),
            },
            "rate_per_sec" => match value.as_u64() {
                Some(v @ 1..) => self.rate_per_sec = v,
                _ => return bad(key, "a positive integer", value),
            },
            "duration_secs" => match value.as_f64() {
                Some(v) if v > 0.0 => self.duration_secs = v,
                _ => return bad(key, "a positive number", value),
            },
            "delivery" => match value.as_str() {
                Some("gap") => self.delivery = Delivery::Gap,
                Some("gapless") => self.delivery = Delivery::Gapless,
                _ => return bad(key, "\"gap\" or \"gapless\"", value),
            },
            "forwarding" => match value.as_str() {
                Some("ring") => self.forwarding = ForwardingMode::Ring,
                Some("broadcast") => self.forwarding = ForwardingMode::EagerBroadcast,
                _ => return bad(key, "\"ring\" or \"broadcast\"", value),
            },
            "ack_mode" => match value.as_str() {
                Some("cumulative") => self.ack_mode = AckMode::Cumulative,
                Some("per_event") => self.ack_mode = AckMode::PerEvent,
                _ => return bad(key, "\"cumulative\" or \"per_event\"", value),
            },
            "loss" => match value.as_f64() {
                Some(v) if (0.0..1.0).contains(&v) => self.loss = v,
                _ => return bad(key, "a probability in [0, 1)", value),
            },
            "coalescing" => match value.as_bool() {
                Some(v) => self.coalescing = v,
                None => return bad(key, "a bool", value),
            },
            "durable" => match value.as_bool() {
                Some(v) => self.durable = v,
                None => return bad(key, "a bool", value),
            },
            "crash_at_secs" => match value.as_f64() {
                Some(v) => self.crash_at_secs = v,
                None => return bad(key, "a number (negative = no crash)", value),
            },
            "failure_timeout_secs" => match value.as_f64() {
                Some(v) if v > 0.0 => self.failure_timeout_secs = v,
                _ => return bad(key, "a positive number", value),
            },
            "min_delivered_fraction" => match value.as_f64() {
                Some(v) if (0.0..=1.0).contains(&v) => self.min_delivered_fraction = v,
                _ => return bad(key, "a fraction in [0, 1]", value),
            },
            "fault_kind" => match value.as_str() {
                Some("none") => self.fault_kind = None,
                Some(s) if FaultKind::parse(s).is_some() => self.fault_kind = FaultKind::parse(s),
                _ => {
                    return bad(
                        key,
                        "\"none\", \"stuck\", \"flapping\", \"drift\", \"ghost\", \
                         \"missed\", or \"battery\"",
                        value,
                    )
                }
            },
            "fault_rate" => match value.as_f64() {
                Some(v) if (0.0..=1.0).contains(&v) => self.fault_rate = v,
                _ => return bad(key, "a rate in [0, 1]", value),
            },
            "repair" => match value.as_bool() {
                Some(v) => self.repair = v,
                None => return bad(key, "a bool", value),
            },
            "routines" => match value.as_bool() {
                Some(v) => self.routines = v,
                None => return bad(key, "a bool", value),
            },
            _ => {
                return Err(ParseError {
                    message: format!("unknown home parameter `{key}`"),
                })
            }
        }
        Ok(())
    }

    /// Cross-field validation applied after all axis substitutions.
    pub fn validate(&self) -> Result<(), ParseError> {
        if self.receivers > self.processes {
            return Err(ParseError {
                message: format!(
                    "receivers ({}) cannot exceed processes ({})",
                    self.receivers, self.processes
                ),
            });
        }
        if self.crash_at_secs >= 0.0 && self.processes < 2 {
            return Err(ParseError {
                message: "a crashing home needs at least 2 processes to fail over".into(),
            });
        }
        Ok(())
    }

    /// The crash time, if any.
    #[must_use]
    pub fn crash_at(&self) -> Option<Time> {
        (self.crash_at_secs >= 0.0).then(|| Time::ZERO + secs_f64(self.crash_at_secs))
    }

    /// Builds the [`DeliveryScenario`] this home runs, seeded with
    /// `seed`.
    #[must_use]
    pub fn to_scenario(&self, seed: u64) -> DeliveryScenario {
        let mut cfg = DeliveryScenario::paper_default(self.delivery);
        cfg.n_processes = self.processes;
        // Receivers fan out from the process after the app-bearing one
        // (index 0), wrapping — receiver counts equal to `processes`
        // include the app process itself, exactly as in Fig. 6.
        let mut receivers: Vec<usize> = (0..self.receivers)
            .map(|i| (i + 1) % self.processes)
            .collect();
        receivers.sort_unstable();
        receivers.dedup();
        cfg.receivers = receivers;
        cfg.event_bytes = self.event_bytes;
        cfg.rate_per_sec = self.rate_per_sec;
        cfg.duration = secs_f64(self.duration_secs);
        cfg.forwarding = self.forwarding;
        cfg.ack_mode = self.ack_mode;
        cfg.coalescing = self.coalescing;
        cfg.loss = self.loss;
        cfg.crash_app_at = self.crash_at();
        cfg.failure_timeout = secs_f64(self.failure_timeout_secs);
        cfg.durable = self.durable;
        cfg.obs = true;
        cfg.fault_kind = self.fault_kind;
        cfg.fault_rate = self.fault_rate;
        cfg.repair = self.repair;
        cfg.routines = self.routines;
        cfg.seed = seed;
        cfg
    }
}

/// Converts fractional seconds to the virtual-time [`Duration`].
fn secs_f64(secs: f64) -> Duration {
    Duration::from_micros((secs * 1_000_000.0).round() as u64)
}

/// One axis of the sweep: a parameter name and the values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Home parameter name (a `[base]` key).
    pub key: String,
    /// Values this axis sweeps over, in declaration order.
    pub values: Vec<Value>,
}

/// A parsed, validated fleet manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetManifest {
    /// Fleet name (labels reports and `BENCH_fleet.json`).
    pub name: String,
    /// Fleet-level RNG seed; per-home seeds derive from it via
    /// [`derive_home_seed`].
    pub seed: u64,
    /// Replicated homes per axis permutation, each with a distinct
    /// derived seed.
    pub homes_per_config: usize,
    /// Default worker threads (0 = one per available core); the CLI
    /// `--threads` flag overrides.
    pub threads: usize,
    /// The `[base]` home configuration.
    pub base: HomeParams,
    /// Sweep axes in sorted key order.
    pub axes: Vec<Axis>,
}

/// One fully-resolved home: what a worker executes.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeSpec {
    /// Stable index in `0..fleet_size`.
    pub home_index: u64,
    /// Seed derived as `derive_home_seed(fleet_seed, home_index)`.
    pub seed: u64,
    /// The resolved home parameters.
    pub params: HomeParams,
    /// `(axis key, value label)` pairs identifying this home's
    /// permutation, in sorted axis order.
    pub axis_values: Vec<(String, String)>,
}

impl fmt::Display for HomeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "home {:>6}  seed {:#018x}", self.home_index, self.seed)?;
        for (key, label) in &self.axis_values {
            write!(f, "  {key}={label}")?;
        }
        Ok(())
    }
}

impl FleetManifest {
    /// Parses a manifest from TOML-subset or JSON text.
    pub fn from_text(text: &str) -> Result<Self, ParseError> {
        Self::from_document(parse(text)?)
    }

    /// Builds a manifest from a parsed [`Document`].
    pub fn from_document(doc: Document) -> Result<Self, ParseError> {
        let known = |name: &str| doc.get(name).cloned().unwrap_or_default();
        for section in doc.keys() {
            if !matches!(section.as_str(), "fleet" | "base" | "axes") {
                return Err(ParseError {
                    message: format!("unknown section `[{section}]`"),
                });
            }
        }
        let fleet = known("fleet");
        let mut name = "fleet".to_owned();
        let mut seed = 0u64;
        let mut homes_per_config = 1usize;
        let mut threads = 0usize;
        for (key, value) in &fleet {
            match key.as_str() {
                "name" => match value.as_str() {
                    Some(s) => name = s.to_owned(),
                    None => {
                        return Err(ParseError {
                            message: "`fleet.name` expects a string".into(),
                        })
                    }
                },
                "seed" => match value.as_u64() {
                    Some(v) => seed = v,
                    None => {
                        return Err(ParseError {
                            message: "`fleet.seed` expects a non-negative integer".into(),
                        })
                    }
                },
                "homes_per_config" => match value.as_u64() {
                    Some(v @ 1..) => homes_per_config = v as usize,
                    _ => {
                        return Err(ParseError {
                            message: "`fleet.homes_per_config` expects a positive integer".into(),
                        })
                    }
                },
                "threads" => match value.as_u64() {
                    Some(v) => threads = v as usize,
                    None => {
                        return Err(ParseError {
                            message: "`fleet.threads` expects a non-negative integer".into(),
                        })
                    }
                },
                other => {
                    return Err(ParseError {
                        message: format!("unknown fleet setting `{other}`"),
                    })
                }
            }
        }

        let mut base = HomeParams::default();
        for (key, value) in &known("base") {
            base.set(key, value).map_err(|e| ParseError {
                message: format!("`base.{key}`: {}", e.message),
            })?;
        }

        // Axes live in a BTreeMap already, so iteration — and
        // therefore permutation order — is sorted by key regardless of
        // declaration order in the file.
        let mut axes = Vec::new();
        for (key, value) in &known("axes") {
            let Some(values) = value.as_array() else {
                return Err(ParseError {
                    message: format!("axis `{key}` expects an array of values"),
                });
            };
            if values.is_empty() {
                return Err(ParseError {
                    message: format!("axis `{key}` has no values"),
                });
            }
            // Duplicate axis values would replicate permutations under
            // distinct indices while claiming distinct configs.
            for (i, v) in values.iter().enumerate() {
                if values[..i].contains(v) {
                    return Err(ParseError {
                        message: format!("axis `{key}` repeats value `{}`", v.label()),
                    });
                }
            }
            // Reject unknown keys (and type errors) now, not per-home.
            let mut probe = base.clone();
            for (i, v) in values.iter().enumerate() {
                probe.set(key, v).map_err(|e| ParseError {
                    message: format!("`axes.{key}[{i}]`: {}", e.message),
                })?;
            }
            axes.push(Axis {
                key: key.clone(),
                values: values.to_vec(),
            });
        }

        let manifest = Self {
            name,
            seed,
            homes_per_config,
            threads,
            base,
            axes,
        };
        // Validate every permutation eagerly: a manifest either
        // expands completely or not at all.
        for spec in manifest.expand()? {
            spec.params.validate()?;
        }
        Ok(manifest)
    }

    /// Number of axis permutations (before replication).
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Total homes the manifest expands into.
    #[must_use]
    pub fn fleet_size(&self) -> usize {
        self.config_count() * self.homes_per_config
    }

    /// Expands the manifest into its full, ordered home list.
    ///
    /// The order is canonical: permutations enumerate odometer-style
    /// over axes in sorted key order (last axis fastest), and each
    /// permutation's `homes_per_config` replicas are consecutive.
    /// `home_index` is the position in this order, so the expansion is
    /// deterministic, duplicate-free, and independent of both thread
    /// count and axis declaration order.
    pub fn expand(&self) -> Result<Vec<HomeSpec>, ParseError> {
        let mut specs = Vec::with_capacity(self.fleet_size());
        let mut home_index = 0u64;
        let mut cursor = vec![0usize; self.axes.len()];
        loop {
            let mut params = self.base.clone();
            let mut axis_values = Vec::with_capacity(self.axes.len());
            for (axis, &i) in self.axes.iter().zip(cursor.iter()) {
                params.set(&axis.key, &axis.values[i])?;
                axis_values.push((axis.key.clone(), axis.values[i].label()));
            }
            for _ in 0..self.homes_per_config {
                specs.push(HomeSpec {
                    home_index,
                    seed: derive_home_seed(self.seed, home_index),
                    params: params.clone(),
                    axis_values: axis_values.clone(),
                });
                home_index += 1;
            }
            // Odometer increment, last axis fastest.
            let mut pos = self.axes.len();
            loop {
                if pos == 0 {
                    return Ok(specs);
                }
                pos -= 1;
                cursor[pos] += 1;
                if cursor[pos] < self.axes[pos].values.len() {
                    break;
                }
                cursor[pos] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"
[fleet]
name = "unit"
seed = 42
homes_per_config = 3

[base]
processes = 5
rate_per_sec = 20
duration_secs = 5.0

[axes]
loss = [0.0, 0.1]
ack_mode = ["cumulative", "per_event"]
"#;

    #[test]
    fn expansion_is_cartesian_times_replicas() {
        let m = FleetManifest::from_text(MANIFEST).unwrap();
        assert_eq!(m.config_count(), 4);
        assert_eq!(m.fleet_size(), 12);
        let specs = m.expand().unwrap();
        assert_eq!(specs.len(), 12);
        // Indices are contiguous and seeds all distinct.
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.home_index, i as u64);
            assert_eq!(s.seed, derive_home_seed(42, i as u64));
        }
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "derived seeds are unique");
        // Sorted axis order: ack_mode before loss; last axis (loss)
        // cycles fastest.
        assert_eq!(specs[0].axis_values[0].0, "ack_mode");
        assert_eq!(specs[0].axis_values[1], ("loss".into(), "0".into()));
        assert_eq!(specs[3].axis_values[1], ("loss".into(), "0.1".into()));
    }

    #[test]
    fn declaration_order_does_not_matter() {
        let swapped = MANIFEST.replace(
            "loss = [0.0, 0.1]\nack_mode = [\"cumulative\", \"per_event\"]",
            "ack_mode = [\"cumulative\", \"per_event\"]\nloss = [0.0, 0.1]",
        );
        assert_ne!(swapped, MANIFEST);
        let a = FleetManifest::from_text(MANIFEST).unwrap();
        let b = FleetManifest::from_text(&swapped).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.expand().unwrap(), b.expand().unwrap());
    }

    #[test]
    fn unknown_axis_key_is_rejected() {
        let bad = MANIFEST.replace("loss = [0.0, 0.1]", "wifi_quality = [0.0, 0.1]");
        let e = FleetManifest::from_text(&bad).unwrap_err();
        assert!(e.message.contains("wifi_quality"), "{e}");
    }

    #[test]
    fn base_errors_name_the_offending_key_path() {
        let bad = MANIFEST.replace("processes = 5", "procesess = 5");
        let e = FleetManifest::from_text(&bad).unwrap_err();
        assert!(e.message.contains("`base.procesess`"), "{e}");

        let bad = MANIFEST.replace("rate_per_sec = 20", "rate_per_sec = -20");
        let e = FleetManifest::from_text(&bad).unwrap_err();
        assert!(e.message.contains("`base.rate_per_sec`"), "{e}");
    }

    #[test]
    fn axis_errors_name_the_offending_value_path() {
        // Second value of the loss axis is out of range: the error
        // must point at `axes.loss[1]`, not just "loss".
        let bad = MANIFEST.replace("loss = [0.0, 0.1]", "loss = [0.0, 1.5]");
        let e = FleetManifest::from_text(&bad).unwrap_err();
        assert!(e.message.contains("`axes.loss[1]`"), "{e}");
    }

    #[test]
    fn fault_params_parse_and_reach_the_scenario() {
        let text = r#"
[fleet]
name = "faulty"
seed = 7
homes_per_config = 1

[base]
fault_kind = "stuck"
fault_rate = 0.25
repair = true

[axes]
fault_rate = [0.0, 0.25, 0.5]
"#;
        let m = FleetManifest::from_text(text).unwrap();
        assert_eq!(m.base.fault_kind, Some(FaultKind::StuckAt));
        assert!(m.base.repair);
        let specs = m.expand().unwrap();
        assert_eq!(specs.len(), 3);
        let cfg = specs[1].params.to_scenario(specs[1].seed);
        assert_eq!(cfg.fault_kind, Some(FaultKind::StuckAt));
        assert!((cfg.fault_rate - 0.25).abs() < 1e-12);
        assert!(cfg.repair);

        // "none" clears an inherited kind.
        let cleared = text.replace("\"stuck\"", "\"none\"");
        let m = FleetManifest::from_text(&cleared).unwrap();
        assert_eq!(m.base.fault_kind, None);

        // Unknown kind and out-of-range rate are rejected with paths.
        let bad = text.replace("\"stuck\"", "\"gremlin\"");
        let e = FleetManifest::from_text(&bad).unwrap_err();
        assert!(e.message.contains("`base.fault_kind`"), "{e}");
        let bad = text.replace("[0.0, 0.25, 0.5]", "[0.0, 2.0]");
        let e = FleetManifest::from_text(&bad).unwrap_err();
        assert!(e.message.contains("`axes.fault_rate[1]`"), "{e}");
    }

    #[test]
    fn duplicate_axis_value_is_rejected() {
        let bad = MANIFEST.replace("loss = [0.0, 0.1]", "loss = [0.1, 0.1]");
        let e = FleetManifest::from_text(&bad).unwrap_err();
        assert!(e.message.contains("repeats"), "{e}");
    }

    #[test]
    fn crash_axis_requires_failover_capacity() {
        let bad = "[base]\nprocesses = 1\nreceivers = 1\ncrash_at_secs = 3.0\n";
        let e = FleetManifest::from_text(bad).unwrap_err();
        assert!(e.message.contains("fail over"), "{e}");
    }

    #[test]
    fn scenario_reflects_params() {
        let p = HomeParams {
            processes: 4,
            receivers: 2,
            crash_at_secs: 3.5,
            loss: 0.25,
            ..HomeParams::default()
        };
        let cfg = p.to_scenario(99);
        assert_eq!(cfg.n_processes, 4);
        assert_eq!(cfg.receivers, vec![1, 2]);
        assert_eq!(cfg.crash_app_at, Some(Time::from_micros(3_500_000)));
        assert_eq!(cfg.seed, 99);
        assert!(cfg.obs, "fleet homes always record observability");
    }

    #[test]
    fn seed_derivation_is_pure_and_spread() {
        assert_eq!(derive_home_seed(7, 0), derive_home_seed(7, 0));
        assert_ne!(derive_home_seed(7, 0), derive_home_seed(7, 1));
        assert_ne!(derive_home_seed(7, 0), derive_home_seed(8, 0));
        // Low indices should not produce clustered seeds: check the
        // high byte varies across the first handful of homes.
        let high: Vec<u8> = (0..8)
            .map(|i| (derive_home_seed(1, i) >> 56) as u8)
            .collect();
        let mut uniq = high.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() >= 4, "high bytes too clustered: {high:?}");
    }
}
