//! A minimal self-contained manifest document model.
//!
//! Fleet manifests are flat two-level documents — named sections of
//! scalar or array values — expressible in either a TOML subset or
//! JSON. The build environment is fully offline and the workspace
//! vendors no serde/toml stack, so this module carries its own
//! parsers: a line-oriented TOML-subset reader and a recursive-descent
//! JSON reader, both producing the same [`Document`] tree. The subset
//! is deliberately small (no nested tables, no multi-line strings, no
//! datetimes); `manifests/fleet_smoke.toml` shows everything the
//! grammar supports.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar or array manifest value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `true` / `false`.
    Bool(bool),
    /// Integer literal (no decimal point or exponent). Wide enough
    /// for the full `u64` fleet-seed range *and* negative sentinels.
    Int(i128),
    /// Float literal.
    Float(f64),
    /// Quoted string.
    Str(String),
    /// `[v, v, ...]` — heterogeneous arrays are allowed (an axis may
    /// mix `-1.0` "no crash" sentinels with crash times).
    Array(Vec<Value>),
}

impl Value {
    /// Renders the value the way a manifest would write it — used as
    /// the per-axis label in fleet reports (`loss=0.1`,
    /// `ack_mode=per_event`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Str(s) => s.clone(),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(Value::label).collect();
                format!("[{}]", inner.join(","))
            }
        }
    }

    /// The value as an `f64`, accepting both int and float literals.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parsed manifest: `section name → key → value`, both levels in
/// sorted (`BTreeMap`) order so iteration is deterministic regardless
/// of declaration order in the source file.
pub type Document = BTreeMap<String, BTreeMap<String, Value>>;

/// A manifest syntax or validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description, with a line number for TOML input.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

/// Parses manifest text, auto-detecting the format: input whose first
/// non-whitespace byte is `{` is JSON, anything else is the TOML
/// subset.
pub fn parse(text: &str) -> Result<Document, ParseError> {
    match text.trim_start().chars().next() {
        Some('{') => parse_json(text),
        _ => parse_toml(text),
    }
}

/// Parses the TOML subset: `[section]` headers, `key = value` lines,
/// `#` comments, single-line arrays.
pub fn parse_toml(text: &str) -> Result<Document, ParseError> {
    let mut doc = Document::new();
    let mut section: Option<String> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let Some(name) = name.strip_suffix(']') else {
                return err(format!("line {lineno}: unterminated section header"));
            };
            let name = name.trim();
            if name.is_empty() || name.contains('.') {
                return err(format!(
                    "line {lineno}: section names are single-level identifiers"
                ));
            }
            section = Some(name.to_owned());
            doc.entry(name.to_owned()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(format!("line {lineno}: expected `key = value`"));
        };
        let Some(section) = section.as_ref() else {
            return err(format!("line {lineno}: `key = value` before any [section]"));
        };
        let key = key.trim();
        if key.is_empty() {
            return err(format!("line {lineno}: empty key"));
        }
        let mut scanner = Scanner::new(value.trim());
        let parsed = scanner.value().map_err(|e| ParseError {
            message: format!("line {lineno}: {}", e.message),
        })?;
        scanner.skip_ws();
        if !scanner.done() {
            return err(format!("line {lineno}: trailing characters after value"));
        }
        let entries = doc.entry(section.clone()).or_default();
        if entries.insert(key.to_owned(), parsed).is_some() {
            return err(format!("line {lineno}: duplicate key `{key}`"));
        }
    }
    Ok(doc)
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Parses a JSON document of shape `{"section": {"key": value}}`.
pub fn parse_json(text: &str) -> Result<Document, ParseError> {
    let mut scanner = Scanner::new(text);
    scanner.skip_ws();
    let sections = scanner.json_object()?;
    scanner.skip_ws();
    if !scanner.done() {
        return err("trailing characters after top-level object");
    }
    // Top-level values must all be nested section objects, which
    // json_object hoists into `objects`; any entry left in `sections`
    // is a scalar that sat at top level.
    let mut doc = Document::new();
    if let Some((name, _)) = sections.into_iter().next() {
        return err(format!("top-level key `{name}` must be an object section"));
    }
    for (name, entries) in scanner.objects {
        doc.insert(name, entries);
    }
    Ok(doc)
}

/// Character-level scanner shared by the TOML value grammar and the
/// JSON reader.
struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Nested objects hoisted by [`Scanner::json_object`]: section
    /// name → entries.
    objects: Vec<(String, BTreeMap<String, Value>)>,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
            objects: Vec::new(),
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            err(format!("expected `{}`", b as char))
        }
    }

    /// Parses one scalar or array value (shared TOML/JSON grammar).
    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            None => err("expected a value"),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b't' | b'f') => self.boolean(),
            Some(b'-' | b'+' | b'0'..=b'9') => self.number(),
            Some(other) => err(format!("unexpected character `{}`", other as char)),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    _ => return err("unsupported escape sequence"),
                },
                Some(b) => out.push(b as char),
            }
        }
    }

    fn boolean(&mut self) -> Result<Value, ParseError> {
        for (word, value) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(Value::Bool(value));
            }
        }
        err("expected `true` or `false`")
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'-' | b'+')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'-' | b'+')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("scanned ascii")
            .replace('_', "");
        if is_float {
            match text.parse::<f64>() {
                Ok(f) => Ok(Value::Float(f)),
                Err(_) => err(format!("malformed float `{text}`")),
            }
        } else {
            match text.parse::<i128>() {
                Ok(i) if i64::try_from(i).is_ok() || u64::try_from(i).is_ok() => Ok(Value::Int(i)),
                _ => err(format!("malformed integer `{text}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {}
                _ => return err("expected `,` or `]` in array"),
            }
        }
    }

    /// Parses a JSON object whose values are either nested one-level
    /// objects (hoisted into `self.objects` as sections) or scalars /
    /// arrays (returned directly — used for the nested level).
    fn json_object(&mut self) -> Result<BTreeMap<String, Value>, ParseError> {
        self.expect(b'{')?;
        let mut entries = BTreeMap::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(entries);
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            if self.peek() == Some(b'{') {
                let nested = self.json_object()?;
                if self.objects.iter().any(|(name, _)| *name == key) {
                    return err(format!("duplicate section `{key}`"));
                }
                self.objects.push((key, nested));
            } else {
                let value = self.value()?;
                if entries.insert(key.clone(), value).is_some() {
                    return err(format!("duplicate key `{key}`"));
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {}
                _ => return err("expected `,` or `}` in object"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
# a fleet manifest
[fleet]
name = "smoke"     # trailing comment
seed = 7
homes_per_config = 2

[base]
loss = 0.0
durable = false
receivers = 1

[axes]
loss = [0.0, 0.1]
ack_mode = ["cumulative", "per_event"]
crash_at_secs = [-1.0, 5.0]
"#;

    #[test]
    fn toml_subset_round_trip() {
        let doc = parse(TOML).unwrap();
        assert_eq!(doc["fleet"]["name"], Value::Str("smoke".into()));
        assert_eq!(doc["fleet"]["seed"], Value::Int(7));
        assert_eq!(doc["base"]["loss"], Value::Float(0.0));
        assert_eq!(doc["base"]["durable"], Value::Bool(false));
        let crash = doc["axes"]["crash_at_secs"].as_array().unwrap();
        assert_eq!(crash, &[Value::Float(-1.0), Value::Float(5.0)]);
        let acks = doc["axes"]["ack_mode"].as_array().unwrap();
        assert_eq!(acks[1], Value::Str("per_event".into()));
    }

    #[test]
    fn json_equivalent_parses_to_same_document() {
        let json = r#"{
            "fleet": {"name": "smoke", "seed": 7, "homes_per_config": 2},
            "base": {"loss": 0.0, "durable": false, "receivers": 1},
            "axes": {
                "loss": [0.0, 0.1],
                "ack_mode": ["cumulative", "per_event"],
                "crash_at_secs": [-1.0, 5.0]
            }
        }"#;
        assert_eq!(parse(json).unwrap(), parse(TOML).unwrap());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("[fleet]\nseed 7\n").unwrap_err();
        assert!(e.message.contains("line 2"), "{e}");
        let e = parse("seed = 7\n").unwrap_err();
        assert!(e.message.contains("before any [section]"), "{e}");
        let e = parse("[fleet]\nseed = 7\nseed = 8\n").unwrap_err();
        assert!(e.message.contains("duplicate key"), "{e}");
    }

    #[test]
    fn comments_inside_strings_survive() {
        let doc = parse("[a]\nname = \"has # hash\"\n").unwrap();
        assert_eq!(doc["a"]["name"], Value::Str("has # hash".into()));
    }

    #[test]
    fn labels_render_like_the_manifest() {
        assert_eq!(Value::Float(0.1).label(), "0.1");
        assert_eq!(Value::Int(5).label(), "5");
        assert_eq!(Value::Str("ring".into()).label(), "ring");
        assert_eq!(Value::Bool(true).label(), "true");
    }

    #[test]
    fn json_rejects_scalar_at_top_level() {
        assert!(parse(r#"{"fleet": 3}"#).is_err());
    }
}
