//! Parallel fleet execution.
//!
//! A fleet run is embarrassingly parallel — every home is an isolated,
//! seeded, single-threaded simulation — so the executor is a
//! fixed-size pool of worker threads stealing homes off one shared
//! queue (an atomic cursor over the expanded spec list: an idle worker
//! claims the next unclaimed home, so load balances at home
//! granularity no matter how skewed individual home durations are).
//!
//! Determinism contract: everything derived from simulation state —
//! per-home outcomes, verdicts, and the merged fleet
//! [`ObsSnapshot`] — is a pure function of the manifest and fleet
//! seed. Per-home snapshots are folded into the merged snapshot
//! *incrementally*, strictly in `home_index` order (an in-order
//! frontier over completed slots), so the merged snapshot is
//! byte-identical across `--threads 1` and `--threads N` while the
//! run holds at most the out-of-order completion window of snapshots
//! in memory — not one per home. Only the wall-clock throughput
//! figures vary run to run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rivulet_bench::common::run_delivery;
use rivulet_core::delivery::Delivery;
use rivulet_obs::ObsSnapshot;

use crate::manifest::{FleetManifest, HomeSpec};

/// Outcome of one home's run, kept per-home for axis breakdowns.
#[derive(Debug, Clone)]
pub struct HomeResult {
    /// The spec that produced this result.
    pub spec: HomeSpec,
    /// Events the home's sensor emitted.
    pub emitted: u64,
    /// Distinct events the application processed.
    pub delivered: u64,
    /// Events the delivery-correctness verdict expected (loss- and
    /// crash-adjusted floor).
    pub expected_floor: u64,
    /// Whether the home met its delivery-correctness floor.
    pub passed: bool,
    /// The home's full observability snapshot.
    pub obs: ObsSnapshot,
}

impl HomeResult {
    /// Fraction of emitted events delivered.
    #[must_use]
    pub fn delivered_fraction(&self) -> f64 {
        if self.emitted == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.emitted as f64
    }

    /// The slim per-home record kept after the snapshot is folded.
    #[must_use]
    pub fn summarize(&self) -> HomeSummary {
        HomeSummary {
            spec: self.spec.clone(),
            emitted: self.emitted,
            delivered: self.delivered,
            expected_floor: self.expected_floor,
            passed: self.passed,
        }
    }
}

/// What a fleet run retains per home once the home's `ObsSnapshot`
/// has been folded into the merged snapshot: the verdict and the
/// counts the axis breakdown needs. Keeping the full snapshot per
/// home made fleet memory grow linearly with fleet size; the summary
/// is a few words.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeSummary {
    /// The spec that produced this result.
    pub spec: HomeSpec,
    /// Events the home's sensor emitted.
    pub emitted: u64,
    /// Distinct events the application processed.
    pub delivered: u64,
    /// Events the delivery-correctness verdict expected.
    pub expected_floor: u64,
    /// Whether the home met its delivery-correctness floor.
    pub passed: bool,
}

impl HomeSummary {
    /// Fraction of emitted events delivered.
    #[must_use]
    pub fn delivered_fraction(&self) -> f64 {
        if self.emitted == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.emitted as f64
    }
}

/// Aggregated outcome of a whole fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Fleet name from the manifest.
    pub name: String,
    /// Fleet seed from the manifest.
    pub seed: u64,
    /// Worker threads used (not part of the merged snapshot).
    pub threads: usize,
    /// Slim per-home results in `home_index` order (snapshots are
    /// folded into `merged` as homes complete, not retained here).
    pub homes: Vec<HomeSummary>,
    /// All per-home snapshots merged in index order, plus the
    /// `fleet.*` counters.
    pub merged: ObsSnapshot,
    /// Wall-clock seconds the pool took to drain the fleet.
    pub wall_secs: f64,
}

impl FleetOutcome {
    /// Total events emitted across the fleet.
    #[must_use]
    pub fn events_emitted(&self) -> u64 {
        self.homes.iter().map(|h| h.emitted).sum()
    }

    /// Total events delivered across the fleet.
    #[must_use]
    pub fn events_delivered(&self) -> u64 {
        self.homes.iter().map(|h| h.delivered).sum()
    }

    /// Homes that missed their delivery-correctness floor.
    #[must_use]
    pub fn homes_failed(&self) -> u64 {
        self.homes.iter().filter(|h| !h.passed).count() as u64
    }

    /// The fleet-scale throughput figure: delivered events per
    /// wall-clock second, summed across all homes (homes × events/s).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events_delivered() as f64 / self.wall_secs.max(1e-9)
    }

    /// Homes completed per wall-clock second.
    #[must_use]
    pub fn homes_per_sec(&self) -> f64 {
        self.homes.len() as f64 / self.wall_secs.max(1e-9)
    }
}

/// Runs one home to completion and judges its delivery verdict.
#[must_use]
pub fn run_home(spec: &HomeSpec) -> HomeResult {
    let cfg = spec.params.to_scenario(spec.seed);
    let out = run_delivery(&cfg);
    let emitted = out.emitted;
    let delivered = out.unique_delivered as u64;
    let expected_floor = delivery_floor(spec, emitted);
    HomeResult {
        spec: spec.clone(),
        emitted,
        delivered,
        expected_floor,
        passed: delivered >= expected_floor,
        obs: out.obs,
    }
}

/// The delivery-correctness floor for a home: how many of `emitted`
/// events it must deliver to pass.
///
/// The floor starts from the guarantee's loss model (§8.3 / Fig. 6):
/// Gap forwards from a single receiver and is expected to deliver
/// `1 − loss`; Gapless retrieves events across all `m` receivers and
/// approaches `1 − lossᵐ`. A crash costs Gap the failure-detection
/// gap (Gapless replays it from the replicated store), and a few
/// tail events may still be in flight when virtual time expires. The
/// manifest's `min_delivered_fraction` then scales the modeled
/// expectation — it is a *safety margin on the model*, not a raw
/// delivered fraction.
#[must_use]
pub fn delivery_floor(spec: &HomeSpec, emitted: u64) -> u64 {
    let p = &spec.params;
    let mut expected = match p.delivery {
        Delivery::Gap => 1.0 - p.loss,
        Delivery::Gapless => 1.0 - p.loss.powi(p.receivers.min(p.processes) as i32),
    } * emitted as f64;
    if p.crash_at().is_some() && p.delivery == Delivery::Gap {
        // The gap: events emitted between the crash and promotion of a
        // shadow (failure timeout plus a keep-alive round, generously).
        expected -= (p.failure_timeout_secs + 1.0) * p.rate_per_sec as f64;
    }
    // In-flight tail: events emitted in the last moments may not have
    // traversed the ring when the run ends (one full traversal plus
    // the ack window, ~2 s of emissions, floor of 3 events).
    let tail = (2.0 * p.rate_per_sec as f64).max(3.0);
    let floor = (expected * p.min_delivered_fraction - tail).max(0.0);
    floor.floor() as u64
}

/// Runs the whole fleet on `threads` workers (0 = one per available
/// core). Panics inside a home propagate after the pool drains.
#[must_use]
pub fn run_fleet(manifest: &FleetManifest, threads: usize) -> FleetOutcome {
    let specs = manifest.expand().expect("manifest validated at parse time");
    // CLI request wins; 0 falls back to the manifest's setting; both
    // zero means one worker per available core.
    let requested = if threads > 0 {
        threads
    } else {
        manifest.threads
    };
    // Record the thread count the pool actually runs with (clamped to
    // the home count) — `FleetOutcome::threads` feeds the scaling
    // report, which must not claim parallelism that never happened.
    let threads = effective_threads(requested).max(1).min(specs.len().max(1));
    let started = Instant::now();
    let (results, mut merged) = run_pool(&specs, threads);
    let wall_secs = started.elapsed().as_secs_f64();

    let emitted: u64 = results.iter().map(|h| h.emitted).sum();
    let delivered: u64 = results.iter().map(|h| h.delivered).sum();
    let failed = results.iter().filter(|h| !h.passed).count() as u64;
    merged.set_counter("fleet.homes", results.len() as u64);
    merged.set_counter("fleet.configs", manifest.config_count() as u64);
    merged.set_counter("fleet.homes_failed", failed);
    merged.set_counter("fleet.events_emitted", emitted);
    merged.set_counter("fleet.events_total", delivered);

    FleetOutcome {
        name: manifest.name.clone(),
        seed: manifest.seed,
        threads,
        homes: results,
        merged,
        wall_secs,
    }
}

/// Resolves a thread-count request: 0 means one worker per available
/// core.
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The in-order snapshot fold shared by the pool workers: `merged` has
/// absorbed every home below `frontier`; snapshots of homes that
/// completed out of order park in `parked` until the frontier reaches
/// them. Memory held is one snapshot per *out-of-order* completion —
/// the pool's skew window — instead of one per home.
struct SnapshotFold {
    frontier: usize,
    merged: ObsSnapshot,
    parked: BTreeMap<usize, ObsSnapshot>,
}

impl SnapshotFold {
    fn absorb(&mut self, index: usize, obs: ObsSnapshot) {
        self.parked.insert(index, obs);
        // Drain the in-order frontier: merge order is exactly
        // home-index order, so the merged snapshot is byte-identical
        // to a sequential single-thread fold.
        while let Some(obs) = self.parked.remove(&self.frontier) {
            self.merged.merge(&obs);
            self.frontier += 1;
        }
    }
}

/// The worker pool: `threads` workers self-schedule over the spec list
/// through one shared atomic cursor. Each completed home's snapshot is
/// folded into the shared merged snapshot as soon as the in-order
/// frontier reaches it; only the slim [`HomeSummary`] is kept per home.
fn run_pool(specs: &[HomeSpec], threads: usize) -> (Vec<HomeSummary>, ObsSnapshot) {
    let threads = threads.max(1).min(specs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<HomeSummary>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    let fold = Mutex::new(SnapshotFold {
        frontier: 0,
        merged: ObsSnapshot::default(),
        parked: BTreeMap::new(),
    });
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Claim (steal) the next unclaimed home off the queue.
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let result = run_home(spec);
                *slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result.summarize());
                fold.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .absorb(i, result.obs);
            });
        }
    });
    let fold = fold
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert_eq!(
        fold.frontier,
        specs.len(),
        "every home's snapshot folded in order"
    );
    let summaries = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every home ran to completion")
        })
        .collect();
    (summaries, fold.merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::FleetManifest;

    const SMALL: &str = r#"
[fleet]
name = "exec-test"
seed = 9
homes_per_config = 2

[base]
processes = 3
rate_per_sec = 10
duration_secs = 4.0

[axes]
ack_mode = ["cumulative", "per_event"]
"#;

    #[test]
    fn fleet_runs_all_homes_and_passes() {
        let m = FleetManifest::from_text(SMALL).unwrap();
        let out = run_fleet(&m, 2);
        assert_eq!(out.homes.len(), 4);
        assert_eq!(out.homes_failed(), 0, "failure-free homes must pass");
        assert!(out.events_delivered() > 0);
        assert_eq!(out.merged.counter("fleet.homes"), 4);
        assert_eq!(out.merged.counter("fleet.homes_failed"), 0);
        assert_eq!(
            out.merged.counter("fleet.events_total"),
            out.events_delivered()
        );
        // Per-home app deliveries fold into the merged counter even
        // though homes no longer retain their snapshots: re-run each
        // home standalone and sum.
        let specs = m.expand().unwrap();
        assert_eq!(
            out.merged.counter("app.deliveries"),
            specs
                .iter()
                .map(|s| run_home(s).obs.counter("app.deliveries"))
                .sum::<u64>()
        );
    }

    #[test]
    fn incremental_fold_is_thread_count_independent() {
        // The fold releases snapshots as the in-order frontier passes
        // them; the merged result must still be byte-identical across
        // thread counts (out-of-order completions park until their
        // turn).
        let m = FleetManifest::from_text(SMALL).unwrap();
        let serial = run_fleet(&m, 1);
        let pooled = run_fleet(&m, 3);
        assert_eq!(serial.merged, pooled.merged);
        assert_eq!(serial.merged.to_json(), pooled.merged.to_json());
    }

    #[test]
    fn verdict_floor_respects_loss_model() {
        let m = FleetManifest::from_text(SMALL).unwrap();
        let mut spec = m.expand().unwrap()[0].clone();
        spec.params.rate_per_sec = 100;
        let lossless = delivery_floor(&spec, 1000);
        spec.params.loss = 0.5;
        spec.params.delivery = Delivery::Gap;
        let lossy = delivery_floor(&spec, 1000);
        assert!(lossy < lossless, "{lossy} !< {lossless}");
        // Gapless with several receivers recovers most of the loss.
        spec.params.delivery = Delivery::Gapless;
        spec.params.receivers = 3;
        let recovered = delivery_floor(&spec, 1000);
        assert!(recovered > lossy, "{recovered} !> {lossy}");
    }

    #[test]
    fn single_home_rerun_matches_fleet_member() {
        // The debugging contract: re-running one home standalone
        // reproduces exactly what it did inside the fleet. The fleet
        // keeps only the slim summary per home, so the check compares
        // the summary fields — and verifies the standalone run's full
        // snapshot is consistent with its own verdict.
        let m = FleetManifest::from_text(SMALL).unwrap();
        let fleet = run_fleet(&m, 3);
        let spec = m.expand().unwrap()[2].clone();
        let solo = run_home(&spec);
        let member = &fleet.homes[2];
        assert_eq!(solo.emitted, member.emitted);
        assert_eq!(solo.delivered, member.delivered);
        assert_eq!(solo.expected_floor, member.expected_floor);
        assert_eq!(solo.passed, member.passed);
        assert_eq!(solo.obs.counter("app.deliveries") > 0, solo.delivered > 0);
        assert_eq!(solo.summarize().delivered, member.delivered);
    }
}
