//! The fleet orchestrator CLI.
//!
//! ```text
//! fleet run     <manifest> [--threads N] [--out PATH] [--obs-out PATH] [--scaling]
//! fleet expand  <manifest>
//! fleet home    <manifest> <home-index>
//! ```
//!
//! * `run` expands the manifest, executes every home across the worker
//!   pool, prints the summary + per-axis breakdown, and writes the
//!   `BENCH_fleet.json` aggregate (`--out`, default `BENCH_fleet.json`).
//!   `--obs-out` additionally writes the merged `ObsSnapshot` JSON —
//!   the document CI compares byte-for-byte across `--threads` values.
//!   `--scaling` re-runs the fleet at one worker and one worker per
//!   core and records speedup/efficiency in the JSON.
//! * `expand` prints the resolved home list without running anything.
//! * `home` re-runs a single home standalone — the debugging path for
//!   a failure found in a fleet run; seeds derive from
//!   `(fleet_seed, home_index)`, so the re-run is bit-exact.

use std::process::ExitCode;

use rivulet_fleet::executor::{effective_threads, run_fleet, run_home};
use rivulet_fleet::report::{render_bench_json, render_summary, Scaling, ScalingPoint};
use rivulet_fleet::FleetManifest;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fleet run <manifest> [--threads N] [--out PATH] [--obs-out PATH] [--scaling]\n\
         \x20      fleet expand <manifest>\n\
         \x20      fleet home <manifest> <home-index>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<FleetManifest, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("fleet: cannot read manifest {path}: {e}");
        ExitCode::FAILURE
    })?;
    FleetManifest::from_text(&text).map_err(|e| {
        eprintln!("fleet: {path}: {e}");
        ExitCode::FAILURE
    })
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "run" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let manifest = match load(path) {
                Ok(m) => m,
                Err(code) => return code,
            };
            let threads: usize = flag_value(&args, "--threads")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            let out_path =
                flag_value(&args, "--out").unwrap_or_else(|| "BENCH_fleet.json".to_owned());
            let obs_out = flag_value(&args, "--obs-out");
            let measure_scaling = args.iter().any(|a| a == "--scaling");

            println!(
                "fleet `{}`: {} configs x {} homes/config = {} homes",
                manifest.name,
                manifest.config_count(),
                manifest.homes_per_config,
                manifest.fleet_size()
            );
            let outcome = run_fleet(&manifest, threads);
            print!("{}", render_summary(&outcome));

            let scaling = measure_scaling.then(|| {
                let cores = effective_threads(0);
                if cores == 1 {
                    eprintln!(
                        "scaling: WARNING: host reports a single core; the full-core \
                         point degenerates to the single-worker run and measures no \
                         parallelism"
                    );
                }
                println!("scaling: re-running at 1 and {cores} worker(s)...");
                let single = run_fleet(&manifest, 1);
                let full = run_fleet(&manifest, cores);
                // Record the thread counts the runs *actually used*
                // (the pool clamps to the home count), not the request
                // — the baseline gate audits `full.threads` for bogus
                // single-thread "scaling" results on multi-core hosts.
                let s = Scaling {
                    single: ScalingPoint {
                        threads: single.threads,
                        wall_secs: single.wall_secs,
                        events_per_sec: single.events_per_sec(),
                    },
                    full: ScalingPoint {
                        threads: full.threads,
                        wall_secs: full.wall_secs,
                        events_per_sec: full.events_per_sec(),
                    },
                };
                println!(
                    "scaling: {:.2}x speedup on {} worker(s) ({:.0}% of ideal)",
                    s.speedup(),
                    full.threads,
                    s.efficiency() * 100.0
                );
                s
            });

            std::fs::write(&out_path, render_bench_json(&outcome, scaling.as_ref()))
                .expect("write fleet bench json");
            println!("wrote {out_path}");
            if let Some(obs_path) = obs_out {
                std::fs::write(&obs_path, outcome.merged.to_json())
                    .expect("write merged obs snapshot");
                println!("wrote {obs_path}");
            }
            if outcome.homes_failed() > 0 {
                eprintln!(
                    "fleet: {} home(s) failed delivery correctness",
                    outcome.homes_failed()
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "expand" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let manifest = match load(path) {
                Ok(m) => m,
                Err(code) => return code,
            };
            let specs = manifest.expand().expect("validated at parse time");
            println!(
                "fleet `{}`: {} homes ({} configs x {}/config), fleet seed {}",
                manifest.name,
                specs.len(),
                manifest.config_count(),
                manifest.homes_per_config,
                manifest.seed
            );
            for spec in &specs {
                println!("{spec}");
            }
            ExitCode::SUCCESS
        }
        "home" => {
            let (Some(path), Some(index)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let manifest = match load(path) {
                Ok(m) => m,
                Err(code) => return code,
            };
            let Ok(index) = index.parse::<u64>() else {
                return usage();
            };
            let specs = manifest.expand().expect("validated at parse time");
            let Some(spec) = specs.iter().find(|s| s.home_index == index) else {
                eprintln!(
                    "fleet: home {index} out of range (fleet has {} homes)",
                    specs.len()
                );
                return ExitCode::FAILURE;
            };
            println!("{spec}");
            let result = run_home(spec);
            println!(
                "delivered {}/{} (floor {}): {}",
                result.delivered,
                result.emitted,
                result.expected_floor,
                if result.passed { "PASS" } else { "FAIL" }
            );
            print!("{}", result.obs.to_json());
            if result.passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
