//! Shared observation handles for experiments and tests.
//!
//! The paper's evaluation measures delivery percentage, delay, failover
//! behaviour, and epoch misses *from the application's point of view*.
//! [`AppProbe`] is the measurement tap: processes record every
//! app-visible occurrence into it, and the harness reads it after (or
//! during) a run. Probes are shared `Arc`s so they survive process
//! crash–recovery cycles.
//!
//! Probe locks are **poison-tolerant**: a panicking actor thread (the
//! live driver runs each actor on its own OS thread) must not poison a
//! probe and take the whole harness down with it, so every lock
//! recovers the data instead of propagating the poison.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use rivulet_types::{AppId, Command, Duration, EventId, ProcessId, Time};

/// Locks `mutex`, recovering the guarded data if a panicking thread
/// poisoned it.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One event processed by an active logic node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryRecord {
    /// When the logic node processed the event.
    pub at: Time,
    /// The process hosting the active logic node.
    pub by: ProcessId,
    /// The event.
    pub event: EventId,
    /// When the sensor emitted it (delay = `at - emitted_at`, the
    /// Fig. 4 metric).
    pub emitted_at: Time,
    /// Scalar payload as the app saw it (after any repair-layer
    /// substitution), `None` for kind-only and blob events. The
    /// fault-suite correctness metric compares this against the
    /// sensor's ground-truth value model.
    pub value: Option<f64>,
}

impl DeliveryRecord {
    /// Sensor-to-logic-node delay of this delivery.
    #[must_use]
    pub fn delay(&self) -> Duration {
        self.at - self.emitted_at
    }
}

/// Measurement tap for one application.
#[derive(Debug, Default)]
pub struct AppProbe {
    deliveries: Mutex<Vec<DeliveryRecord>>,
    commands: Mutex<Vec<(Time, Command)>>,
    alerts: Mutex<Vec<(Time, ProcessId, String)>>,
    transitions: Mutex<Vec<(Time, ProcessId, bool)>>,
    epoch_misses: AtomicU64,
    stale_drops: AtomicU64,
}

impl AppProbe {
    /// Creates an empty probe.
    #[must_use]
    pub fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self::default())
    }

    /// Records an event processed by an active logic node.
    pub fn record_delivery(&self, record: DeliveryRecord) {
        lock_recovering(&self.deliveries).push(record);
    }

    /// Records a command issued by the app.
    pub fn record_command(&self, at: Time, command: Command) {
        lock_recovering(&self.commands).push((at, command));
    }

    /// Records a user alert raised by the app.
    pub fn record_alert(&self, at: Time, by: ProcessId, message: String) {
        lock_recovering(&self.alerts).push((at, by, message));
    }

    /// Records a promotion (`active = true`) or demotion of the logic
    /// node at `process`.
    pub fn record_transition(&self, at: Time, process: ProcessId, active: bool) {
        lock_recovering(&self.transitions).push((at, process, active));
    }

    /// Records a missed polling epoch (§4.1's exception).
    pub fn record_epoch_miss(&self) {
        self.epoch_misses.fetch_add(1, Ordering::SeqCst);
    }

    /// Records events rejected by a staleness bound (§6).
    pub fn record_stale_drops(&self, n: u64) {
        self.stale_drops.fetch_add(n, Ordering::SeqCst);
    }

    /// All deliveries in recording order (may contain duplicates when
    /// several processes were simultaneously active during partitions,
    /// or after a failover replay).
    #[must_use]
    pub fn deliveries(&self) -> Vec<DeliveryRecord> {
        lock_recovering(&self.deliveries).clone()
    }

    /// Count of *distinct* events processed — the Fig. 6 "% events
    /// delivered" numerator.
    #[must_use]
    pub fn unique_delivered(&self) -> usize {
        let deliveries = lock_recovering(&self.deliveries);
        let set: BTreeSet<EventId> = deliveries.iter().map(|d| d.event).collect();
        set.len()
    }

    /// Delays of all deliveries (Fig. 4 metric).
    #[must_use]
    pub fn delays(&self) -> Vec<Duration> {
        lock_recovering(&self.deliveries)
            .iter()
            .map(DeliveryRecord::delay)
            .collect()
    }

    /// Mean delay, if any deliveries occurred.
    #[must_use]
    pub fn mean_delay(&self) -> Option<Duration> {
        let delays = self.delays();
        if delays.is_empty() {
            return None;
        }
        let total: u64 = delays.iter().map(|d| d.as_micros()).sum();
        Some(Duration::from_micros(total / delays.len() as u64))
    }

    /// Commands issued.
    #[must_use]
    pub fn commands(&self) -> Vec<(Time, Command)> {
        lock_recovering(&self.commands).clone()
    }

    /// Alerts raised.
    #[must_use]
    pub fn alerts(&self) -> Vec<(Time, ProcessId, String)> {
        lock_recovering(&self.alerts).clone()
    }

    /// Promotion/demotion history.
    #[must_use]
    pub fn transitions(&self) -> Vec<(Time, ProcessId, bool)> {
        lock_recovering(&self.transitions).clone()
    }

    /// Missed polling epochs.
    #[must_use]
    pub fn epoch_misses(&self) -> u64 {
        self.epoch_misses.load(Ordering::SeqCst)
    }

    /// Events rejected by staleness bounds.
    #[must_use]
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops.load(Ordering::SeqCst)
    }
}

/// Measurement tap for event-store residency, shared by every process
/// of a deployment. Each process samples its store size on its
/// periodic tick; tests use the samples to assert bounded growth.
#[derive(Debug, Default)]
pub struct StoreProbe {
    samples: Mutex<Vec<(Time, ProcessId, usize)>>,
}

impl StoreProbe {
    /// Creates an empty probe.
    #[must_use]
    pub fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self::default())
    }

    /// Records the store size of `process` at `at`.
    pub fn record_len(&self, at: Time, process: ProcessId, len: usize) {
        lock_recovering(&self.samples).push((at, process, len));
    }

    /// All samples in recording order.
    #[must_use]
    pub fn samples(&self) -> Vec<(Time, ProcessId, usize)> {
        lock_recovering(&self.samples).clone()
    }

    /// The largest store size any process ever reported.
    #[must_use]
    pub fn max_len(&self) -> usize {
        lock_recovering(&self.samples)
            .iter()
            .map(|(_, _, len)| *len)
            .max()
            .unwrap_or(0)
    }

    /// The largest store size `process` reported at or after `since`.
    #[must_use]
    pub fn max_len_since(&self, process: ProcessId, since: Time) -> usize {
        lock_recovering(&self.samples)
            .iter()
            .filter(|(at, p, _)| *p == process && *at >= since)
            .map(|(_, _, len)| *len)
            .max()
            .unwrap_or(0)
    }
}

/// Registry mapping apps to their probes, shared between deployment
/// and harness.
#[derive(Debug, Default)]
pub struct ProbeRegistry {
    probes: Mutex<Vec<(AppId, std::sync::Arc<AppProbe>)>>,
}

impl ProbeRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self::default())
    }

    /// Returns the probe for `app`, creating it on first use.
    #[must_use]
    pub fn probe(&self, app: AppId) -> std::sync::Arc<AppProbe> {
        let mut probes = lock_recovering(&self.probes);
        if let Some((_, p)) = probes.iter().find(|(a, _)| *a == app) {
            return std::sync::Arc::clone(p);
        }
        let p = AppProbe::new();
        probes.push((app, std::sync::Arc::clone(&p)));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::SensorId;

    fn record(seq: u64, at_ms: u64, emitted_ms: u64) -> DeliveryRecord {
        DeliveryRecord {
            at: Time::from_millis(at_ms),
            by: ProcessId(0),
            event: EventId::new(SensorId(1), seq),
            emitted_at: Time::from_millis(emitted_ms),
            value: None,
        }
    }

    #[test]
    fn delivery_bookkeeping_and_dedup() {
        let probe = AppProbe::new();
        probe.record_delivery(record(0, 10, 5));
        probe.record_delivery(record(1, 20, 12));
        probe.record_delivery(record(1, 22, 12)); // duplicate event
        assert_eq!(probe.deliveries().len(), 3);
        assert_eq!(probe.unique_delivered(), 2);
        assert_eq!(
            probe.delays(),
            vec![
                Duration::from_millis(5),
                Duration::from_millis(8),
                Duration::from_millis(10)
            ]
        );
        assert_eq!(probe.mean_delay(), Some(Duration::from_micros(7_666)));
    }

    #[test]
    fn empty_probe_mean_delay_is_none() {
        let probe = AppProbe::new();
        assert_eq!(probe.mean_delay(), None);
        assert_eq!(probe.unique_delivered(), 0);
        assert_eq!(probe.epoch_misses(), 0);
    }

    #[test]
    fn transitions_alerts_and_misses() {
        let probe = AppProbe::new();
        probe.record_transition(Time::from_secs(1), ProcessId(0), true);
        probe.record_transition(Time::from_secs(24), ProcessId(0), false);
        probe.record_transition(Time::from_secs(26), ProcessId(1), true);
        probe.record_alert(Time::from_secs(2), ProcessId(0), "intrusion".into());
        probe.record_epoch_miss();
        probe.record_epoch_miss();
        assert_eq!(probe.transitions().len(), 3);
        assert_eq!(probe.alerts().len(), 1);
        assert_eq!(probe.epoch_misses(), 2);
    }

    #[test]
    fn poisoned_probe_lock_recovers_data() {
        let probe = AppProbe::new();
        probe.record_delivery(record(0, 10, 5));
        // A panicking actor thread poisons the deliveries mutex.
        let p = std::sync::Arc::clone(&probe);
        let _ = std::thread::spawn(move || {
            let _guard = p.deliveries.lock().unwrap();
            panic!("simulated actor crash while holding the probe lock");
        })
        .join();
        // Readers and writers keep working and the data survives.
        probe.record_delivery(record(1, 20, 12));
        assert_eq!(probe.deliveries().len(), 2);
        assert_eq!(probe.unique_delivered(), 2);
    }

    #[test]
    fn registry_returns_same_probe_per_app() {
        let reg = ProbeRegistry::new();
        let a = reg.probe(AppId(1));
        let b = reg.probe(AppId(1));
        let c = reg.probe(AppId(2));
        a.record_epoch_miss();
        assert_eq!(b.epoch_misses(), 1, "same underlying probe");
        assert_eq!(c.epoch_misses(), 0);
    }
}
