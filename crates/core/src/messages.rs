//! The inter-process protocol message vocabulary.
//!
//! Everything Rivulet processes say to each other over the home WiFi
//! mesh. Sizes matter: the network-overhead experiment (Fig. 5)
//! measures exactly these messages, including the Gapless ring's
//! `seen`/`need` metadata sets, which the paper notes dominate overhead
//! at small event sizes.

use rivulet_types::wire::{varint_len, Wire, WireError, WireReader, WireWriter};
use rivulet_types::{Command, Event, EventId, ProcessId, SensorId};

/// A message between two Rivulet processes.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcMsg {
    /// Periodic liveness beacon (§4.1's keep-alive exchange).
    ///
    /// An active logic node piggybacks per-sensor *processed*
    /// watermarks so shadows know which replicated events were already
    /// consumed; on promotion a shadow replays only events above these
    /// marks (the upstream-backup acknowledgement idea of Hwang et
    /// al., which Fig. 7's bounded catch-up spike implies).
    KeepAlive {
        /// The sender.
        from: ProcessId,
        /// `(sensor, highest seq processed by an active logic node at
        /// the sender)`; empty for pure shadows.
        processed: Vec<(SensorId, u64)>,
        /// `(sensor, highest seq durably received at the sender)` —
        /// cumulative ack watermarks piggybacked on the beacon. A
        /// broadcast origin retires every pending retransmission whose
        /// seq is covered by the peer's watermark, replacing the
        /// per-event [`ProcMsg::BroadcastAck`] storm (see
        /// `AckMode::Cumulative`). Empty until the first delivery.
        received: Vec<(SensorId, u64)>,
    },
    /// Gapless ring forwarding: `(e : S : V)` from the paper — the
    /// event, the processes that have **seen** it, and the processes
    /// that **need** to see it.
    Ring {
        /// The event being replicated.
        event: Event,
        /// `S`: processes that have seen the event.
        seen: Vec<ProcessId>,
        /// `V`: processes that are supposed to deliver the event.
        need: Vec<ProcessId>,
    },
    /// Reliable-broadcast fallback: eager flooding of an event that the
    /// ring failed to spread (§4.1).
    Broadcast {
        /// The event.
        event: Event,
        /// The process that initiated the broadcast.
        origin: ProcessId,
    },
    /// Acknowledgement of a [`ProcMsg::Broadcast`] so the origin can
    /// stop retransmitting.
    BroadcastAck {
        /// The acknowledged event.
        id: EventId,
        /// The acknowledging process.
        from: ProcessId,
    },
    /// Gap chain forwarding: the closest active sensor node sends the
    /// event straight to the application-bearing process (§4.2).
    GapForward {
        /// The event.
        event: Event,
    },
    /// Anti-entropy: ask a new ring successor for its per-sensor high
    /// watermarks (Bayou-style, §4.1).
    SyncRequest {
        /// The asking process.
        from: ProcessId,
    },
    /// Anti-entropy: the successor's per-sensor last-received sequence
    /// numbers (absent sensors mean "nothing received").
    SyncReply {
        /// The replying process.
        from: ProcessId,
        /// `(sensor, highest seq received)` pairs.
        watermarks: Vec<(SensorId, u64)>,
    },
    /// Anti-entropy: events the requester determined the successor is
    /// missing.
    SyncEvents {
        /// The events, ascending per sensor.
        events: Vec<Event>,
    },
    /// An actuation command forwarded from the logic-bearing process to
    /// a process whose adapter can reach the target actuator ("the
    /// delivery of actuation commands is analogous", §4).
    CmdForward {
        /// The command.
        command: Command,
    },
}

impl ProcMsg {
    fn tag(&self) -> u8 {
        match self {
            ProcMsg::KeepAlive { .. } => 0,
            ProcMsg::Ring { .. } => 1,
            ProcMsg::Broadcast { .. } => 2,
            ProcMsg::BroadcastAck { .. } => 3,
            ProcMsg::GapForward { .. } => 4,
            ProcMsg::SyncRequest { .. } => 5,
            ProcMsg::SyncReply { .. } => 6,
            ProcMsg::SyncEvents { .. } => 7,
            ProcMsg::CmdForward { .. } => 8,
        }
    }
}

impl Wire for ProcMsg {
    fn encoded_len(&self) -> usize {
        1 + match self {
            ProcMsg::KeepAlive {
                from,
                processed,
                received,
            } => from.encoded_len() + processed.encoded_len() + received.encoded_len(),
            ProcMsg::Ring { event, seen, need } => {
                event.encoded_len() + seen.encoded_len() + need.encoded_len()
            }
            ProcMsg::Broadcast { event, origin } => event.encoded_len() + origin.encoded_len(),
            ProcMsg::BroadcastAck { id, from } => id.encoded_len() + from.encoded_len(),
            ProcMsg::GapForward { event } => event.encoded_len(),
            ProcMsg::SyncRequest { from } => from.encoded_len(),
            ProcMsg::SyncReply { from, watermarks } => {
                from.encoded_len() + watermarks.encoded_len()
            }
            ProcMsg::SyncEvents { events } => events.encoded_len(),
            ProcMsg::CmdForward { command } => command.encoded_len(),
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(self.tag());
        match self {
            ProcMsg::KeepAlive {
                from,
                processed,
                received,
            } => {
                from.encode(w);
                processed.encode(w);
                received.encode(w);
            }
            ProcMsg::Ring { event, seen, need } => {
                event.encode(w);
                seen.encode(w);
                need.encode(w);
            }
            ProcMsg::Broadcast { event, origin } => {
                event.encode(w);
                origin.encode(w);
            }
            ProcMsg::BroadcastAck { id, from } => {
                id.encode(w);
                from.encode(w);
            }
            ProcMsg::GapForward { event } => event.encode(w),
            ProcMsg::SyncRequest { from } => from.encode(w),
            ProcMsg::SyncReply { from, watermarks } => {
                from.encode(w);
                watermarks.encode(w);
            }
            ProcMsg::SyncEvents { events } => events.encode(w),
            ProcMsg::CmdForward { command } => command.encode(w),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ProcMsg::KeepAlive {
                from: ProcessId::decode(r)?,
                processed: Vec::decode(r)?,
                received: Vec::decode(r)?,
            }),
            1 => Ok(ProcMsg::Ring {
                event: Event::decode(r)?,
                seen: Vec::decode(r)?,
                need: Vec::decode(r)?,
            }),
            2 => Ok(ProcMsg::Broadcast {
                event: Event::decode(r)?,
                origin: ProcessId::decode(r)?,
            }),
            3 => Ok(ProcMsg::BroadcastAck {
                id: EventId::decode(r)?,
                from: ProcessId::decode(r)?,
            }),
            4 => Ok(ProcMsg::GapForward {
                event: Event::decode(r)?,
            }),
            5 => Ok(ProcMsg::SyncRequest {
                from: ProcessId::decode(r)?,
            }),
            6 => Ok(ProcMsg::SyncReply {
                from: ProcessId::decode(r)?,
                watermarks: Vec::decode(r)?,
            }),
            7 => Ok(ProcMsg::SyncEvents {
                events: Vec::decode(r)?,
            }),
            8 => Ok(ProcMsg::CmdForward {
                command: Command::decode(r)?,
            }),
            tag => Err(WireError::InvalidTag { ty: "ProcMsg", tag }),
        }
    }
}

/// Tag byte introducing a multi-command [`Frame`].
///
/// Deliberately far from the dense `ProcMsg` tag range (0..=8) so the
/// receive path can dispatch frame-vs-single on the first byte, and a
/// corrupted frame tag cannot silently decode as a plausible message.
pub const FRAME_TAG: u8 = 0xC0;

/// A length-prefixed batch of [`ProcMsg`]s coalesced onto one network
/// message.
///
/// When one actor activation queues several messages to the same
/// destination (a ring burst forwarded downstream, a WAL group-commit
/// releasing gated sends, an anti-entropy exchange), they travel as one
/// frame: one scheduler event, one [`FRAME_HEADER_BYTES`] transport
/// charge, one link traversal.
///
/// Wire layout: `FRAME_TAG`, varint message count (must be ≥ 1), then
/// per message a varint byte-length followed by exactly that many bytes
/// of `ProcMsg` encoding. The per-message length prefix means a frame
/// can be assembled by concatenating *pre-encoded* message bytes
/// ([`Frame::encode_parts`]) without re-encoding, and decoded
/// incrementally with strict bounds checking.
///
/// [`FRAME_HEADER_BYTES`]: rivulet_types::wire::FRAME_HEADER_BYTES
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The batched messages, in send order.
    pub msgs: Vec<ProcMsg>,
}

impl Frame {
    /// Returns whether `payload` starts with the frame tag (cheap
    /// receive-path dispatch; the full decode still validates).
    #[must_use]
    pub fn sniff(payload: &[u8]) -> bool {
        payload.first() == Some(&FRAME_TAG)
    }

    /// Assembles the frame encoding directly from pre-encoded message
    /// bytes, byte-identical to encoding the equivalent `Frame` value.
    /// This is the hot-path entry: the fan-out encodes each `ProcMsg`
    /// once and coalescing concatenates the frozen buffers.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `parts` is empty — callers only
    /// build frames for ≥ 2 queued messages.
    #[must_use]
    pub fn encode_parts(w: &mut WireWriter, parts: &[bytes::Bytes]) -> bytes::Bytes {
        debug_assert!(!parts.is_empty(), "never emit an empty frame");
        let body: usize = parts
            .iter()
            .map(|p| varint_len(p.len() as u64) + p.len())
            .sum();
        w.reserve(1 + varint_len(parts.len() as u64) + body);
        w.put_u8(FRAME_TAG);
        w.put_varint(parts.len() as u64);
        for part in parts {
            w.put_varint(part.len() as u64);
            w.put_slice(part);
        }
        w.take_bytes()
    }
}

impl Wire for Frame {
    fn encoded_len(&self) -> usize {
        1 + varint_len(self.msgs.len() as u64)
            + self
                .msgs
                .iter()
                .map(|m| {
                    let len = m.encoded_len();
                    varint_len(len as u64) + len
                })
                .sum::<usize>()
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(FRAME_TAG);
        w.put_varint(self.msgs.len() as u64);
        for msg in &self.msgs {
            w.put_varint(msg.encoded_len() as u64);
            msg.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let tag = r.get_u8()?;
        if tag != FRAME_TAG {
            return Err(WireError::InvalidTag { ty: "Frame", tag });
        }
        let count = r.get_len()?;
        if count == 0 {
            return Err(WireError::EmptyBatch);
        }
        let mut msgs = Vec::with_capacity(count.min(1_024));
        for _ in 0..count {
            let len = r.get_len()?;
            // Each message must consume exactly its declared length: a
            // shorter decode means an overlong length prefix smuggling
            // trailing bytes, a longer one is caught by the sub-reader
            // bounds.
            let mut sub = r.sub_reader(len)?;
            let msg = ProcMsg::decode(&mut sub)?;
            if !sub.is_empty() {
                return Err(WireError::LengthTooLarge {
                    declared: len as u64,
                });
            }
            msgs.push(msg);
        }
        Ok(Frame { msgs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::wire::roundtrip;
    use rivulet_types::{EventKind, Time};

    fn ev(seq: u64) -> Event {
        Event::new(
            EventId::new(SensorId(1), seq),
            EventKind::Motion,
            Time::from_millis(seq),
        )
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(&ProcMsg::KeepAlive {
            from: ProcessId(3),
            processed: vec![],
            received: vec![],
        });
        roundtrip(&ProcMsg::KeepAlive {
            from: ProcessId(3),
            processed: vec![(SensorId(1), 99), (SensorId(2), 0)],
            received: vec![(SensorId(1), 101)],
        });
        roundtrip(&ProcMsg::CmdForward {
            command: rivulet_types::Command::new(
                rivulet_types::CommandId::new(ProcessId(0), rivulet_types::OperatorId(1), 2),
                rivulet_types::ActuatorId(3),
                rivulet_types::CommandKind::Set(rivulet_types::ActuationState::Switch(true)),
                Time::from_millis(5),
            ),
        });
        roundtrip(&ProcMsg::Ring {
            event: ev(0),
            seen: vec![ProcessId(0), ProcessId(1)],
            need: vec![ProcessId(0), ProcessId(1), ProcessId(2)],
        });
        roundtrip(&ProcMsg::Broadcast {
            event: ev(1),
            origin: ProcessId(2),
        });
        roundtrip(&ProcMsg::BroadcastAck {
            id: EventId::new(SensorId(1), 1),
            from: ProcessId(0),
        });
        roundtrip(&ProcMsg::GapForward { event: ev(2) });
        roundtrip(&ProcMsg::SyncRequest { from: ProcessId(4) });
        roundtrip(&ProcMsg::SyncReply {
            from: ProcessId(4),
            watermarks: vec![(SensorId(1), 10), (SensorId(2), 0)],
        });
        roundtrip(&ProcMsg::SyncEvents {
            events: vec![ev(3), ev(4)],
        });
    }

    #[test]
    fn ring_metadata_costs_bytes() {
        // The paper observes Gapless has higher overhead than Gap at
        // one receiving process because of the S and V sets; verify the
        // codec reflects that.
        let gap = ProcMsg::GapForward { event: ev(0) };
        let ring = ProcMsg::Ring {
            event: ev(0),
            seen: vec![ProcessId(0)],
            need: (0..5).map(ProcessId).collect(),
        };
        assert!(ring.encoded_len() > gap.encoded_len());
    }

    #[test]
    fn keepalive_is_tiny() {
        let ka = ProcMsg::KeepAlive {
            from: ProcessId(1),
            processed: vec![],
            received: vec![],
        };
        assert!(ka.encoded_len() <= 4, "keep-alive must stay cheap");
    }

    #[test]
    fn junk_tag_rejected() {
        assert!(matches!(
            ProcMsg::from_bytes(&[200]),
            Err(WireError::InvalidTag {
                ty: "ProcMsg",
                tag: 200
            })
        ));
    }

    #[test]
    fn frame_tag_disjoint_from_procmsg_tags() {
        // Receive-path dispatch relies on the first byte alone.
        for tag in 0..=8u8 {
            assert_ne!(tag, FRAME_TAG);
        }
        assert!(matches!(
            ProcMsg::from_bytes(&[FRAME_TAG]),
            Err(WireError::InvalidTag { ty: "ProcMsg", .. })
        ));
    }

    #[test]
    fn frame_roundtrips() {
        let frame = Frame {
            msgs: vec![
                ProcMsg::Ring {
                    event: ev(1),
                    seen: vec![ProcessId(0)],
                    need: vec![ProcessId(0), ProcessId(1)],
                },
                ProcMsg::SyncRequest { from: ProcessId(2) },
                ProcMsg::KeepAlive {
                    from: ProcessId(2),
                    processed: vec![],
                    received: vec![(SensorId(1), 7)],
                },
            ],
        };
        roundtrip(&frame);
        assert!(Frame::sniff(&frame.to_bytes()));
    }

    #[test]
    fn encode_parts_matches_frame_encoding() {
        let msgs = vec![
            ProcMsg::GapForward { event: ev(9) },
            ProcMsg::SyncRequest { from: ProcessId(1) },
        ];
        let parts: Vec<bytes::Bytes> = msgs.iter().map(Wire::to_bytes).collect();
        let mut w = WireWriter::new();
        let assembled = Frame::encode_parts(&mut w, &parts);
        let reference = Frame { msgs }.to_bytes();
        assert_eq!(assembled, reference, "concatenation must be canonical");
    }

    #[test]
    fn frame_rejects_empty_batch() {
        let mut w = WireWriter::new();
        w.put_u8(FRAME_TAG);
        w.put_varint(0);
        assert_eq!(
            Frame::from_bytes(&w.into_bytes()),
            Err(WireError::EmptyBatch)
        );
    }

    #[test]
    fn frame_rejects_truncation_and_overlong_prefix() {
        let frame = Frame {
            msgs: vec![ProcMsg::SyncRequest { from: ProcessId(3) }],
        };
        let good = frame.to_bytes();
        // Every strict prefix fails cleanly.
        for cut in 0..good.len() {
            assert!(Frame::from_bytes(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Overlong per-message length prefix: declare one byte more
        // than the message occupies, padding with a trailing byte the
        // inner decode will not consume.
        let inner = ProcMsg::SyncRequest { from: ProcessId(3) }.to_bytes();
        let mut w = WireWriter::new();
        w.put_u8(FRAME_TAG);
        w.put_varint(1);
        w.put_varint(inner.len() as u64 + 1);
        w.put_slice(&inner);
        w.put_u8(0);
        assert!(matches!(
            Frame::from_bytes(&w.into_bytes()),
            Err(WireError::LengthTooLarge { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rivulet_types::wire::roundtrip;
    use rivulet_types::{EventKind, Payload, Time};

    fn arb_event() -> impl Strategy<Value = Event> {
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u64>()),
        )
            .prop_map(|(sensor, seq, at, epoch)| {
                let mut e = Event::with_payload(
                    EventId::new(SensorId(sensor), seq),
                    EventKind::Motion,
                    Payload::Scalar(1.5),
                    Time::from_micros(at),
                );
                e.epoch = epoch;
                e
            })
    }

    fn arb_pids() -> impl Strategy<Value = Vec<ProcessId>> {
        proptest::collection::vec(any::<u32>().prop_map(ProcessId), 0..8)
    }

    fn arb_msg() -> impl Strategy<Value = ProcMsg> {
        prop_oneof![
            (
                any::<u32>(),
                proptest::collection::vec((any::<u32>(), any::<u64>()), 0..6),
                proptest::collection::vec((any::<u32>(), any::<u64>()), 0..6)
            )
                .prop_map(|(from, processed, received)| ProcMsg::KeepAlive {
                    from: ProcessId(from),
                    processed: processed
                        .into_iter()
                        .map(|(s, q)| (SensorId(s), q))
                        .collect(),
                    received: received
                        .into_iter()
                        .map(|(s, q)| (SensorId(s), q))
                        .collect(),
                }),
            (arb_event(), arb_pids(), arb_pids()).prop_map(|(event, seen, need)| ProcMsg::Ring {
                event,
                seen,
                need
            }),
            (arb_event(), any::<u32>()).prop_map(|(event, o)| ProcMsg::Broadcast {
                event,
                origin: ProcessId(o)
            }),
            (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(s, q, f)| {
                ProcMsg::BroadcastAck {
                    id: EventId::new(SensorId(s), q),
                    from: ProcessId(f),
                }
            }),
            arb_event().prop_map(|event| ProcMsg::GapForward { event }),
            any::<u32>().prop_map(|f| ProcMsg::SyncRequest { from: ProcessId(f) }),
            proptest::collection::vec(arb_event(), 0..5)
                .prop_map(|events| ProcMsg::SyncEvents { events }),
        ]
    }

    proptest! {
        /// Every protocol message survives the wire with exact length
        /// accounting.
        #[test]
        fn any_message_roundtrips(msg in arb_msg()) {
            roundtrip(&msg);
        }

        /// Decoding attacker-controlled bytes never panics.
        #[test]
        fn junk_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = ProcMsg::from_bytes(&buf);
        }

        /// Corrupting one byte of a valid encoding either still decodes
        /// to *some* message or fails cleanly — never panics.
        #[test]
        fn single_byte_corruption_is_safe(
            msg in arb_msg(),
            pos_seed in any::<usize>(),
            delta in 1u8..=255,
        ) {
            let mut bytes = msg.to_bytes().to_vec();
            if !bytes.is_empty() {
                let pos = pos_seed % bytes.len();
                bytes[pos] = bytes[pos].wrapping_add(delta);
                let _ = ProcMsg::from_bytes(&bytes);
            }
        }

        /// Any batch of messages survives framing, both via the value
        /// encoder and via hot-path concatenation of pre-encoded parts.
        #[test]
        fn any_frame_roundtrips(msgs in proptest::collection::vec(arb_msg(), 1..6)) {
            let frame = Frame { msgs };
            roundtrip(&frame);
            let parts: Vec<bytes::Bytes> = frame.msgs.iter().map(Wire::to_bytes).collect();
            let mut w = WireWriter::new();
            prop_assert_eq!(Frame::encode_parts(&mut w, &parts), frame.to_bytes());
        }

        /// Truncating a valid frame at any point fails cleanly.
        #[test]
        fn truncated_frame_rejected(
            msgs in proptest::collection::vec(arb_msg(), 1..4),
            cut_seed in any::<usize>(),
        ) {
            let bytes = Frame { msgs }.to_bytes();
            let cut = cut_seed % bytes.len(); // strict prefix
            prop_assert!(Frame::from_bytes(&bytes[..cut]).is_err());
        }

        /// Decoding attacker-controlled bytes as a frame never panics,
        /// and junk that happens to start with the frame tag still
        /// validates every inner length prefix.
        #[test]
        fn frame_junk_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = Frame::from_bytes(&buf);
            let mut tagged = vec![FRAME_TAG];
            tagged.extend_from_slice(&buf);
            let _ = Frame::from_bytes(&tagged);
        }
    }
}
