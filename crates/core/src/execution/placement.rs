//! Deterministic placement of logic nodes (§7).
//!
//! "The current implementation uses a simple deterministic function to
//! order and select processes for deploying active logic nodes which
//! seeks to deploy a logic node on a process that has the largest
//! number of active sensors and actuators required by the logic node;
//! this allows Rivulet to minimize delay incurred during event
//! delivery."
//!
//! Every process computes the same chain from static deployment
//! information, so no agreement protocol is needed.

use rivulet_types::{ActuatorId, ProcessId, SensorId};

/// Static reachability of one process: which devices its host hardware
/// can talk to directly (creating *active* sensor/actuator nodes there,
/// §3.3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reachability {
    /// The process.
    pub process: ProcessId,
    /// Sensors the process can hear.
    pub sensors: Vec<SensorId>,
    /// Actuators the process can drive.
    pub actuators: Vec<ActuatorId>,
}

impl Reachability {
    /// Creates a reachability record.
    #[must_use]
    pub fn new(process: ProcessId, sensors: Vec<SensorId>, actuators: Vec<ActuatorId>) -> Self {
        Self {
            process,
            sensors,
            actuators,
        }
    }

    /// How many of the app's required devices this process reaches.
    fn score(&self, req_sensors: &[SensorId], req_actuators: &[ActuatorId]) -> usize {
        let s = self
            .sensors
            .iter()
            .filter(|s| req_sensors.contains(s))
            .count();
        let a = self
            .actuators
            .iter()
            .filter(|a| req_actuators.contains(a))
            .count();
        s + a
    }
}

/// Computes an app's placement chain: processes sorted by descending
/// count of the app's sensors/actuators they reach directly, ties
/// broken by ascending process id. Position 0 is the preferred host of
/// the active logic node.
#[must_use]
pub fn chain_for(
    processes: &[Reachability],
    req_sensors: &[SensorId],
    req_actuators: &[ActuatorId],
) -> Vec<ProcessId> {
    let mut scored: Vec<(usize, ProcessId)> = processes
        .iter()
        .map(|r| (r.score(req_sensors, req_actuators), r.process))
        .collect();
    scored.sort_unstable_by(|(sa, pa), (sb, pb)| sb.cmp(sa).then(pa.cmp(pb)));
    scored.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reach(p: u32, sensors: &[u32], actuators: &[u32]) -> Reachability {
        Reachability::new(
            ProcessId(p),
            sensors.iter().map(|s| SensorId(*s)).collect(),
            actuators.iter().map(|a| ActuatorId(*a)).collect(),
        )
    }

    #[test]
    fn fig2_scenario_prefers_the_hub() {
        // Fig. 2: door sensor reachable from TV(1) and fridge(2), light
        // actuator from hub(0) only. Scores: hub 1, TV 1, fridge 1 →
        // tie broken by pid: hub first, so TL₁ is active at the hub as
        // in the paper's walkthrough.
        let procs = vec![
            reach(0, &[], &[1]),
            reach(1, &[1], &[]),
            reach(2, &[1], &[]),
        ];
        let chain = chain_for(&procs, &[SensorId(1)], &[ActuatorId(1)]);
        assert_eq!(chain, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
    }

    #[test]
    fn highest_score_wins() {
        let procs = vec![
            reach(0, &[1], &[]),
            reach(1, &[1, 2], &[1]),
            reach(2, &[2], &[]),
        ];
        let chain = chain_for(&procs, &[SensorId(1), SensorId(2)], &[ActuatorId(1)]);
        assert_eq!(chain[0], ProcessId(1), "reaches 3 of 3 devices");
    }

    #[test]
    fn irrelevant_devices_do_not_score() {
        let procs = vec![
            reach(0, &[9, 8, 7], &[9]), // reaches many, none required
            reach(1, &[1], &[]),
        ];
        let chain = chain_for(&procs, &[SensorId(1)], &[]);
        assert_eq!(chain[0], ProcessId(1));
    }

    #[test]
    fn deterministic_regardless_of_input_order() {
        let a = vec![reach(0, &[1], &[]), reach(1, &[], &[]), reach(2, &[1], &[])];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(
            chain_for(&a, &[SensorId(1)], &[]),
            chain_for(&b, &[SensorId(1)], &[])
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(chain_for(&[], &[SensorId(1)], &[]).is_empty());
        let procs = vec![reach(0, &[], &[])];
        assert_eq!(chain_for(&procs, &[], &[]), vec![ProcessId(0)]);
    }
}
