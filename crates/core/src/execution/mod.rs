//! Fault-tolerant execution of logic nodes (§5).
//!
//! Rivulet runs each application's logic node actively on one process
//! (the primary) and as shadows everywhere else, using a variant of the
//! bully election over a deterministic chain: the live process earliest
//! in the chain is active; shadows promote themselves when every
//! earlier process is suspected crashed, and demote when an earlier
//! one recovers. During a full partition each side's best process
//! promotes — acceptable for idempotent actuations, and guarded by
//! `Test&Set` for non-idempotent ones (see
//! [`rivulet_devices::actuator`]).

pub mod placement;

use rivulet_types::ProcessId;

/// The process that should run the active logic node, per the caller's
/// local view: the first live process in the chain. Returns `None` for
/// an empty chain or when every chain member is suspected (the caller,
/// if in the chain, always sees itself alive, so a chain member never
/// gets `None` for its own app).
#[must_use]
pub fn active_logic(chain: &[ProcessId], alive: impl Fn(ProcessId) -> bool) -> Option<ProcessId> {
    chain.iter().copied().find(|p| alive(*p))
}

/// A logic node's execution status at one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicStatus {
    /// This process runs the app: events are processed, commands
    /// emitted.
    Active,
    /// This process holds a placeholder; events are stored (Gapless)
    /// but not processed.
    Shadow,
}

/// Tracks one process's role for one app, detecting
/// promotion/demotion edges so the runtime can log failovers and
/// replay outstanding events on promotion.
#[derive(Debug)]
pub struct ExecutionState {
    me: ProcessId,
    chain: Vec<ProcessId>,
    status: LogicStatus,
}

/// A change of role produced by re-evaluating the election.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Shadow → active: the process must start processing, including
    /// any replicated-but-unprocessed events (§4.1's promotion rule).
    Promoted,
    /// Active → shadow: an earlier chain member recovered.
    Demoted,
}

impl ExecutionState {
    /// Creates the execution state of `me` for an app with the given
    /// placement chain. Starts as shadow; the first election
    /// re-evaluation settles the real role.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a chain member.
    #[must_use]
    pub fn new(me: ProcessId, chain: Vec<ProcessId>) -> Self {
        assert!(chain.contains(&me), "process must be in the app chain");
        Self {
            me,
            chain,
            status: LogicStatus::Shadow,
        }
    }

    /// The placement chain (position 0 = preferred host).
    #[must_use]
    pub fn chain(&self) -> &[ProcessId] {
        &self.chain
    }

    /// Current status at this process.
    #[must_use]
    pub fn status(&self) -> LogicStatus {
        self.status
    }

    /// Whether this process currently runs the active logic node.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.status == LogicStatus::Active
    }

    /// The process this one believes is active, per `alive`.
    #[must_use]
    pub fn believed_active(&self, alive: impl Fn(ProcessId) -> bool) -> Option<ProcessId> {
        active_logic(&self.chain, alive)
    }

    /// Re-evaluates the election against the current view; returns the
    /// transition if the role changed.
    pub fn reevaluate(&mut self, alive: impl Fn(ProcessId) -> bool) -> Option<Transition> {
        let should_be_active = active_logic(&self.chain, &alive) == Some(self.me);
        match (self.status, should_be_active) {
            (LogicStatus::Shadow, true) => {
                self.status = LogicStatus::Active;
                Some(Transition::Promoted)
            }
            (LogicStatus::Active, false) => {
                self.status = LogicStatus::Shadow;
                Some(Transition::Demoted)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ids: &[u32]) -> Vec<ProcessId> {
        ids.iter().map(|i| ProcessId(*i)).collect()
    }

    #[test]
    fn first_live_chain_member_is_active() {
        let chain = pids(&[2, 0, 1]);
        assert_eq!(active_logic(&chain, |_| true), Some(ProcessId(2)));
        assert_eq!(
            active_logic(&chain, |p| p != ProcessId(2)),
            Some(ProcessId(0))
        );
        assert_eq!(active_logic(&chain, |_| false), None);
        assert_eq!(active_logic(&[], |_| true), None);
    }

    #[test]
    fn primary_promotes_immediately() {
        let mut e = ExecutionState::new(ProcessId(0), pids(&[0, 1, 2]));
        assert_eq!(e.status(), LogicStatus::Shadow);
        assert_eq!(e.reevaluate(|_| true), Some(Transition::Promoted));
        assert!(e.is_active());
        assert_eq!(e.reevaluate(|_| true), None, "stable role: no transition");
    }

    #[test]
    fn shadow_promotes_when_predecessors_die_and_demotes_on_recovery() {
        let mut e = ExecutionState::new(ProcessId(1), pids(&[0, 1, 2]));
        assert_eq!(e.reevaluate(|_| true), None, "p0 alive: stay shadow");
        // p0 suspected: p1 promotes (bully rule).
        assert_eq!(
            e.reevaluate(|p| p != ProcessId(0)),
            Some(Transition::Promoted)
        );
        // p0 recovers: p1 demotes.
        assert_eq!(e.reevaluate(|_| true), Some(Transition::Demoted));
        assert_eq!(e.status(), LogicStatus::Shadow);
    }

    #[test]
    fn partition_promotes_both_sides() {
        // Chain [0,1]; a partition separates them. Each side's view has
        // only itself alive among chain members.
        let mut a = ExecutionState::new(ProcessId(0), pids(&[0, 1]));
        let mut b = ExecutionState::new(ProcessId(1), pids(&[0, 1]));
        assert_eq!(
            a.reevaluate(|p| p == ProcessId(0)),
            Some(Transition::Promoted)
        );
        assert_eq!(
            b.reevaluate(|p| p == ProcessId(1)),
            Some(Transition::Promoted)
        );
        assert!(a.is_active() && b.is_active(), "both sides actuate (§5)");
        // Partition heals: the later chain member yields.
        assert_eq!(a.reevaluate(|_| true), None);
        assert_eq!(b.reevaluate(|_| true), Some(Transition::Demoted));
    }

    #[test]
    fn believed_active_tracks_view() {
        let e = ExecutionState::new(ProcessId(2), pids(&[0, 1, 2]));
        assert_eq!(e.believed_active(|_| true), Some(ProcessId(0)));
        assert_eq!(e.believed_active(|p| p == ProcessId(2)), Some(ProcessId(2)));
    }

    #[test]
    #[should_panic(expected = "process must be in the app chain")]
    fn non_member_panics() {
        let _ = ExecutionState::new(ProcessId(9), pids(&[0, 1]));
    }
}
