//! Device-fault detection and self-healing.
//!
//! The platform's crash/partition machinery cannot see *device* faults:
//! a stuck thermometer keeps beaconing perfectly valid-looking frames.
//! This module layers a per-sensor health model over the delivery path
//! of each active logic node:
//!
//! * **Stuck detection** — a scalar sensor repeating the exact same
//!   reading `repair_stuck_run` times in a row is flagged untrusted.
//! * **Outlier detection** — a reading disagreeing with the
//!   Marzullo midpoint of its *redundant peers* (the other sensors
//!   feeding the same fault-tolerant combiner) by more than
//!   `repair_disagreement` is an outlier. This catches drift,
//!   flapping, and ghost readings without modelling any of them.
//! * **Substitution** — outlier/untrusted readings are replaced by the
//!   peer midpoint when enough healthy peers exist (the
//!   `FTCombiner` contract: `tolerate + 1` independent witnesses),
//!   so the app still sees an event with a plausible value.
//! * **Quarantine** — a sensor accumulating `repair_outlier_quarantine`
//!   outliers is quarantined: every further event from it (including
//!   ghosts) is dropped before reaching any app.
//! * **Re-poll** — a pollable sensor silent for `repair_stall_timeout`
//!   is re-polled through the existing polling service (missed events
//!   and battery decay look like silence, and a fresh poll repairs
//!   them).
//!
//! Everything is gated behind [`crate::config::RivuletConfig::repair`]
//! (default **off**): disabled, no health state exists and no
//! `repair.*` counter is written, so runs are bit-identical to builds
//! without this module.
//!
//! Verdicts are deduplicated per event id: the same event routed to
//! several apps (or replayed after a promotion) is health-checked once
//! and every route sees the same verdict — detection state never
//! double-counts.

use std::collections::HashMap;

use rivulet_types::{Event, Payload, SensorId, Time};

use crate::app::{marzullo_midpoint, AppSpec, CombinerSpec};
use crate::config::RivuletConfig;

/// What the health model decided about one delivered event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepairVerdict {
    /// The reading is healthy (or unverifiable): deliver as-is.
    Accept,
    /// The reading is corrupt but repairable: deliver with this value
    /// substituted from the healthy-peer midpoint.
    Substitute(f64),
    /// The reading is corrupt and unrepairable: drop it.
    DropOutlier,
    /// The sensor is quarantined: drop everything it sends.
    DropQuarantined,
}

/// A group of redundant sensors feeding one fault-tolerant combiner.
#[derive(Debug, Clone)]
struct PeerGroup {
    sensors: Vec<SensorId>,
    tolerate: usize,
}

/// Health state for one sensor at one process.
#[derive(Debug, Default)]
struct SensorHealth {
    /// Most recently *seen* raw value (stuck detection).
    last_raw: Option<f64>,
    /// Length of the current exact-repeat run.
    repeat_run: u32,
    /// Most recently *accepted* value (peer-midpoint input) — outlier
    /// readings are excluded so a corrupt sensor cannot poison the
    /// midpoint its peers are judged against.
    accepted: Option<(Time, f64)>,
    /// Outliers accumulated toward quarantine.
    outliers: u32,
    /// Quarantined: all further events are dropped.
    quarantined: bool,
    /// Last arrival (any event), for stall detection.
    last_arrival: Option<Time>,
    /// Highest event seq already health-checked, with its verdict —
    /// makes [`HealthModel::observe`] idempotent per event.
    checked: Option<(u64, RepairVerdict)>,
}

/// Counter deltas the caller must fold into its recorder after an
/// [`HealthModel::observe`] call (the model itself stays obs-free so
/// it can be unit-tested without a recorder).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RepairCounts {
    /// Readings replaced by the peer midpoint.
    pub substitutions: u64,
    /// Readings dropped as unrepairable outliers.
    pub outlier_drops: u64,
    /// Sensors newly quarantined.
    pub quarantines: u64,
    /// Events dropped because their sensor is quarantined.
    pub quarantined_drops: u64,
    /// Stuck-run detections.
    pub stuck_flagged: u64,
}

/// Per-process sensor health model (see module docs).
#[derive(Debug)]
pub struct HealthModel {
    stuck_run: u32,
    disagreement: f64,
    quarantine_budget: u32,
    stall_timeout: rivulet_types::Duration,
    /// Sensor → its redundancy group (first fault-tolerant operator
    /// naming it wins).
    groups: HashMap<SensorId, PeerGroup>,
    sensors: HashMap<SensorId, SensorHealth>,
    /// Counters accumulated since the last [`Self::take_counts`].
    counts: RepairCounts,
}

impl HealthModel {
    /// Builds the model from the process's deployed apps: every
    /// operator with a [`CombinerSpec::FaultTolerant`] combiner and at
    /// least two sensor inputs contributes a redundancy group.
    #[must_use]
    pub fn from_apps(config: &RivuletConfig, apps: &[std::sync::Arc<AppSpec>]) -> Self {
        let mut groups: HashMap<SensorId, PeerGroup> = HashMap::new();
        for app in apps {
            for op in &app.operators {
                let CombinerSpec::FaultTolerant { tolerate } = op.combiner else {
                    continue;
                };
                if op.inputs.len() < 2 {
                    continue;
                }
                let sensors: Vec<SensorId> = op.inputs.iter().map(|i| i.sensor).collect();
                for s in &sensors {
                    groups.entry(*s).or_insert_with(|| PeerGroup {
                        sensors: sensors.clone(),
                        tolerate,
                    });
                }
            }
        }
        Self {
            stuck_run: config.repair_stuck_run,
            disagreement: config.repair_disagreement,
            quarantine_budget: config.repair_outlier_quarantine,
            stall_timeout: config.repair_stall_timeout,
            groups,
            sensors: HashMap::new(),
            counts: RepairCounts::default(),
        }
    }

    /// Counters accumulated since the previous call (delta basis).
    pub fn take_counts(&mut self) -> RepairCounts {
        std::mem::take(&mut self.counts)
    }

    /// Whether `sensor` is currently quarantined.
    #[must_use]
    pub fn is_quarantined(&self, sensor: SensorId) -> bool {
        self.sensors.get(&sensor).is_some_and(|h| h.quarantined)
    }

    /// Health-checks one event at delivery time. Idempotent per event
    /// id: re-observing an already-checked seq returns the cached
    /// verdict without touching detection state.
    pub fn observe(&mut self, now: Time, event: &Event) -> RepairVerdict {
        let sensor = event.id.sensor;
        if let Some((seq, verdict)) = self.sensors.get(&sensor).and_then(|h| h.checked) {
            if seq == event.id.seq {
                return verdict;
            }
        }
        let verdict = self.check(now, event);
        let h = self.sensors.entry(sensor).or_default();
        h.checked = Some((event.id.seq, verdict));
        verdict
    }

    fn check(&mut self, now: Time, event: &Event) -> RepairVerdict {
        let sensor = event.id.sensor;
        // Peer midpoint first (immutable pass over the group), so the
        // borrow of this sensor's own state can stay disjoint.
        let midpoint = self.peer_midpoint(sensor, event.payload.as_scalar());
        let h = self.sensors.entry(sensor).or_default();
        h.last_arrival = Some(now);
        if h.quarantined {
            self.counts.quarantined_drops += 1;
            return RepairVerdict::DropQuarantined;
        }
        let Some(value) = event.payload.as_scalar() else {
            // Kind-only / blob events carry nothing to verify.
            return RepairVerdict::Accept;
        };
        // Stuck detection: exact repeats of a scalar reading.
        if h.last_raw.is_some_and(|prev| prev == value) {
            h.repeat_run += 1;
        } else {
            h.repeat_run = 1;
        }
        h.last_raw = Some(value);
        let stuck = h.repeat_run >= self.stuck_run;
        if h.repeat_run == self.stuck_run {
            self.counts.stuck_flagged += 1;
        }
        // Outlier detection: disagreement with the healthy-peer
        // midpoint.
        let outlier = midpoint.is_some_and(|m| (value - m).abs() > self.disagreement);
        if !stuck && !outlier {
            h.accepted = Some((now, value));
            return RepairVerdict::Accept;
        }
        if outlier {
            h.outliers += 1;
            if h.outliers >= self.quarantine_budget {
                h.quarantined = true;
                self.counts.quarantines += 1;
            }
        }
        match midpoint {
            Some(m) => {
                self.counts.substitutions += 1;
                RepairVerdict::Substitute(m)
            }
            None => {
                if outlier {
                    self.counts.outlier_drops += 1;
                    RepairVerdict::DropOutlier
                } else {
                    // Stuck but unwitnessed: nothing better to offer.
                    RepairVerdict::Accept
                }
            }
        }
    }

    /// Marzullo midpoint of the *other* sensors in this sensor's
    /// redundancy group, using their most recently accepted readings.
    /// Requires at least `tolerate + 1` healthy witnesses — the same
    /// bar the fault-tolerant combiner itself sets.
    fn peer_midpoint(&self, sensor: SensorId, _value: Option<f64>) -> Option<f64> {
        let group = self.groups.get(&sensor)?;
        let values: Vec<f64> = group
            .sensors
            .iter()
            .filter(|s| **s != sensor)
            .filter_map(|s| {
                let h = self.sensors.get(s)?;
                if h.quarantined {
                    return None;
                }
                h.accepted.map(|(_, v)| v)
            })
            .collect();
        if values.len() < group.tolerate + 1 {
            return None;
        }
        marzullo_midpoint(
            &values,
            self.disagreement,
            group.tolerate.min(values.len() - 1),
        )
    }

    /// Stall check, run from the process tick for pollable sensors:
    /// returns `true` when `sensor` has been silent past the stall
    /// timeout (and arms a fresh window so re-polls are rate-limited
    /// to one per timeout).
    pub fn check_stall(&mut self, sensor: SensorId, now: Time) -> bool {
        let h = self.sensors.entry(sensor).or_default();
        if h.quarantined {
            return false;
        }
        match h.last_arrival {
            None => {
                // First sighting: start the clock, don't re-poll yet.
                h.last_arrival = Some(now);
                false
            }
            Some(last) if now.duration_since(last) > self.stall_timeout => {
                h.last_arrival = Some(now);
                true
            }
            Some(_) => false,
        }
    }

    /// Builds the substituted event for a [`RepairVerdict::Substitute`]
    /// verdict: same identity, epoch, and timing, repaired value.
    #[must_use]
    pub fn substituted(event: &Event, value: f64) -> Event {
        let mut repaired = event.clone();
        repaired.payload = Payload::Scalar(value);
        repaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, CombinedWindows, OpCtx, WindowSpec};
    use crate::delivery::Delivery;
    use rivulet_types::{AppId, EventId, EventKind};
    use std::sync::Arc;

    fn ft_app(sensors: &[u32], tolerate: usize) -> Arc<AppSpec> {
        let mut op = AppBuilder::new(AppId(1), "ft").operator(
            "op",
            CombinerSpec::FaultTolerant { tolerate },
            |_: &mut OpCtx, _: &CombinedWindows| {},
        );
        for s in sensors {
            op = op.sensor(SensorId(*s), Delivery::Gap, WindowSpec::count(1));
        }
        Arc::new(op.done().build().expect("valid test app"))
    }

    fn cfg() -> RivuletConfig {
        RivuletConfig::default().with_repair(true)
    }

    fn ev(sensor: u32, seq: u64, value: f64, at: Time) -> Event {
        Event::with_payload(
            EventId::new(SensorId(sensor), seq),
            EventKind::Reading,
            Payload::Scalar(value),
            at,
        )
    }

    fn feed_peers(h: &mut HealthModel, at: Time, seq: u64, value: f64) {
        assert_eq!(h.observe(at, &ev(2, seq, value, at)), RepairVerdict::Accept);
        assert_eq!(
            h.observe(at, &ev(3, seq, value + 0.1, at)),
            RepairVerdict::Accept
        );
    }

    #[test]
    fn healthy_readings_are_accepted() {
        let mut h = HealthModel::from_apps(&cfg(), &[ft_app(&[1, 2, 3], 1)]);
        for seq in 0..20 {
            let at = Time::from_secs(seq);
            feed_peers(&mut h, at, seq, 20.0 + seq as f64 * 0.01);
            let v = h.observe(at, &ev(1, seq, 20.0 + seq as f64 * 0.01, at));
            assert_eq!(v, RepairVerdict::Accept, "seq {seq}");
        }
        assert_eq!(h.take_counts(), RepairCounts::default());
    }

    #[test]
    fn outliers_are_substituted_from_peer_midpoint() {
        let mut h = HealthModel::from_apps(&cfg(), &[ft_app(&[1, 2, 3], 1)]);
        let at = Time::from_secs(1);
        feed_peers(&mut h, at, 0, 20.0);
        let v = h.observe(at, &ev(1, 0, 400.0, at));
        let RepairVerdict::Substitute(sub) = v else {
            panic!("expected substitution, got {v:?}");
        };
        assert!((sub - 20.0).abs() < 1.0, "midpoint near peers, got {sub}");
        assert_eq!(h.take_counts().substitutions, 1);
    }

    #[test]
    fn repeated_outliers_quarantine_the_sensor() {
        let config = cfg().with_repair_outlier_quarantine(3);
        let mut h = HealthModel::from_apps(&config, &[ft_app(&[1, 2, 3], 1)]);
        for seq in 0..5 {
            let at = Time::from_secs(seq + 1);
            feed_peers(&mut h, at, seq, 20.0);
            let _ = h.observe(at, &ev(1, seq, 900.0 + seq as f64, at));
        }
        assert!(h.is_quarantined(SensorId(1)));
        let at = Time::from_secs(10);
        let v = h.observe(at, &ev(1, 99, 20.0, at));
        assert_eq!(v, RepairVerdict::DropQuarantined, "even healthy values");
        let counts = h.take_counts();
        assert_eq!(counts.quarantines, 1);
        assert!(counts.quarantined_drops >= 1);
    }

    #[test]
    fn stuck_run_is_flagged_and_substituted() {
        let mut h = HealthModel::from_apps(&cfg(), &[ft_app(&[1, 2, 3], 1)]);
        let mut verdicts = Vec::new();
        for seq in 0..10 {
            let at = Time::from_secs(seq + 1);
            feed_peers(&mut h, at, seq, 21.0 + seq as f64 * 0.01);
            verdicts.push(h.observe(at, &ev(1, seq, 25.0, at)));
        }
        // 25.0 repeats forever; within the disagreement threshold of
        // the 21.0 peers, so only the stuck detector can catch it.
        assert!(verdicts[..5].iter().all(|v| *v == RepairVerdict::Accept));
        assert!(
            matches!(verdicts[5], RepairVerdict::Substitute(_)),
            "6th repeat crosses the default stuck run, got {:?}",
            verdicts[5]
        );
        assert_eq!(h.take_counts().stuck_flagged, 1);
    }

    #[test]
    fn observe_is_idempotent_per_event() {
        let mut h = HealthModel::from_apps(&cfg(), &[ft_app(&[1, 2, 3], 1)]);
        let at = Time::from_secs(1);
        feed_peers(&mut h, at, 0, 20.0);
        let e = ev(1, 0, 400.0, at);
        let first = h.observe(at, &e);
        let counts = h.take_counts();
        for _ in 0..5 {
            assert_eq!(h.observe(at, &e), first, "cached verdict");
        }
        assert_eq!(h.take_counts(), RepairCounts::default(), "no double count");
        assert_eq!(counts.substitutions, 1);
    }

    #[test]
    fn stall_detection_rate_limits() {
        let mut h = HealthModel::from_apps(&cfg(), &[ft_app(&[1, 2], 1)]);
        assert!(
            !h.check_stall(SensorId(1), Time::from_secs(1)),
            "arms clock"
        );
        assert!(
            !h.check_stall(SensorId(1), Time::from_secs(2)),
            "within timeout"
        );
        assert!(h.check_stall(SensorId(1), Time::from_secs(4)), "stalled");
        assert!(
            !h.check_stall(SensorId(1), Time::from_secs(5)),
            "rate-limited"
        );
    }

    #[test]
    fn lone_sensor_without_peers_is_accepted() {
        let mut h = HealthModel::from_apps(&cfg(), &[ft_app(&[1], 1)]);
        for seq in 0..20 {
            let at = Time::from_secs(seq);
            let v = h.observe(at, &ev(1, seq, 42.0, at));
            assert_eq!(v, RepairVerdict::Accept, "no witnesses, no drops");
        }
    }

    #[test]
    fn substituted_event_keeps_identity() {
        let e = ev(1, 7, 400.0, Time::from_secs(3));
        let s = HealthModel::substituted(&e, 20.5);
        assert_eq!(s.id, e.id);
        assert_eq!(s.emitted_at, e.emitted_at);
        assert_eq!(s.payload.as_scalar(), Some(20.5));
    }
}
