//! Keep-alive membership and local views.
//!
//! Rivulet "must work with any number of processes, including home
//! environments with only one or two processes", so it cannot use
//! majority-based agreed views; each process maintains a **local view**
//! from keep-alive silence, and views at different processes may
//! disagree (§4.1). A process never suspects itself.

use std::collections::BTreeMap;

use rivulet_types::{Duration, ProcessId, Time};

/// One process's failure detector and local view.
#[derive(Debug)]
pub struct Membership {
    me: ProcessId,
    peers: Vec<ProcessId>,
    last_heard: BTreeMap<ProcessId, Time>,
    failure_timeout: Duration,
}

impl Membership {
    /// Creates the membership state of process `me` among `peers`
    /// (which may or may not include `me`; it is tracked implicitly)
    /// at time `now`. Until first contact, peers are optimistically
    /// assumed alive as of `now` — a freshly (re)started process must
    /// not instantly suspect the whole home and wrongly promote itself
    /// before its first keep-alive exchange completes.
    #[must_use]
    pub fn new(me: ProcessId, peers: &[ProcessId], failure_timeout: Duration, now: Time) -> Self {
        let mut all: Vec<ProcessId> = peers.iter().copied().filter(|p| *p != me).collect();
        all.sort_unstable();
        all.dedup();
        let last_heard = all.iter().map(|p| (*p, now)).collect();
        Self {
            me,
            peers: all,
            last_heard,
            failure_timeout,
        }
    }

    /// This process's identity.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// All known peers (excluding `me`), sorted.
    #[must_use]
    pub fn peers(&self) -> &[ProcessId] {
        &self.peers
    }

    /// Records a sign of life from `from` at `now` (keep-alive or any
    /// protocol message — all traffic proves liveness).
    pub fn heard_from(&mut self, from: ProcessId, now: Time) {
        if from == self.me {
            return;
        }
        if let Some(t) = self.last_heard.get_mut(&from) {
            if now > *t {
                *t = now;
            }
        }
    }

    /// Whether `p` is currently believed alive. `me` is always alive
    /// ("a process never suspects itself", §4.1). A peer is suspected
    /// once `failure_timeout` has elapsed since it was last heard.
    #[must_use]
    pub fn is_alive(&self, p: ProcessId, now: Time) -> bool {
        if p == self.me {
            return true;
        }
        match self.last_heard.get(&p) {
            None => false,
            Some(last) => now.duration_since(*last) < self.failure_timeout,
        }
    }

    /// The local view `vᵢ` at `now`: all live processes including
    /// `me`, sorted by process id.
    #[must_use]
    pub fn view(&self, now: Time) -> Vec<ProcessId> {
        let mut view: Vec<ProcessId> = self
            .peers
            .iter()
            .copied()
            .filter(|p| self.is_alive(*p, now))
            .collect();
        view.push(self.me);
        view.sort_unstable();
        view
    }

    /// The ring successor of `me` in the current view: the next process
    /// id cyclically. Returns `None` when `me` is alone.
    #[must_use]
    pub fn ring_successor(&self, now: Time) -> Option<ProcessId> {
        let view = self.view(now);
        if view.len() <= 1 {
            return None;
        }
        let idx = view.iter().position(|p| *p == self.me).expect("me in view");
        Some(view[(idx + 1) % view.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ids: &[u32]) -> Vec<ProcessId> {
        ids.iter().map(|i| ProcessId(*i)).collect()
    }

    fn m3() -> Membership {
        Membership::new(
            ProcessId(1),
            &pids(&[0, 1, 2]),
            Duration::from_secs(2),
            Time::ZERO,
        )
    }

    #[test]
    fn fresh_membership_trusts_everyone_briefly() {
        let m = m3();
        assert_eq!(m.view(Time::from_millis(100)), pids(&[0, 1, 2]));
    }

    #[test]
    fn silence_causes_suspicion_and_contact_restores() {
        let mut m = m3();
        let late = Time::from_secs(5);
        assert_eq!(m.view(late), pids(&[1]), "everyone silent too long");
        m.heard_from(ProcessId(0), Time::from_secs(4));
        assert_eq!(m.view(late), pids(&[0, 1]));
        assert!(!m.is_alive(ProcessId(2), late));
        m.heard_from(ProcessId(2), late);
        assert!(m.is_alive(ProcessId(2), late));
    }

    #[test]
    fn never_suspects_self_and_ignores_unknown() {
        let mut m = m3();
        let t = Time::from_secs(100);
        assert!(m.is_alive(ProcessId(1), t));
        assert!(
            !m.is_alive(ProcessId(42), t),
            "unknown processes are not alive"
        );
        m.heard_from(ProcessId(42), t); // unknown: ignored
        assert!(!m.is_alive(ProcessId(42), t));
        m.heard_from(ProcessId(1), t); // self: ignored
        assert!(m.view(t).contains(&ProcessId(1)));
    }

    #[test]
    fn stale_heard_from_does_not_rewind() {
        let mut m = m3();
        m.heard_from(ProcessId(0), Time::from_secs(10));
        m.heard_from(ProcessId(0), Time::from_secs(3)); // reordered arrival
        assert!(m.is_alive(ProcessId(0), Time::from_secs(11)));
    }

    #[test]
    fn ring_successor_cycles_sorted_view() {
        let mut m = m3();
        let t = Time::from_secs(1);
        // Full view {0,1,2}: successor of 1 is 2.
        assert_eq!(m.ring_successor(t), Some(ProcessId(2)));
        // Highest process wraps to lowest.
        let m2 = Membership::new(
            ProcessId(2),
            &pids(&[0, 1, 2]),
            Duration::from_secs(2),
            Time::ZERO,
        );
        assert_eq!(m2.ring_successor(t), Some(ProcessId(0)));
        // After suspecting 2, successor of 1 wraps to 0.
        let late = Time::from_secs(5);
        m.heard_from(ProcessId(0), Time::from_secs(4));
        assert_eq!(m.ring_successor(late), Some(ProcessId(0)));
    }

    #[test]
    fn singleton_home_has_no_successor() {
        let m = Membership::new(ProcessId(0), &[], Duration::from_secs(2), Time::ZERO);
        assert_eq!(m.ring_successor(Time::ZERO), None);
        assert_eq!(m.view(Time::from_secs(100)), pids(&[0]));
    }

    #[test]
    fn late_construction_trusts_peers_from_now() {
        // A process recovering at t=80 must not suspect everyone
        // instantly (which would cause a spurious self-promotion).
        let m = Membership::new(
            ProcessId(2),
            &pids(&[0, 1, 2]),
            Duration::from_secs(2),
            Time::from_secs(80),
        );
        assert_eq!(m.view(Time::from_secs(81)), pids(&[0, 1, 2]));
        assert_eq!(
            m.view(Time::from_secs(83)),
            pids(&[2]),
            "then silence counts"
        );
    }

    #[test]
    fn duplicate_and_self_peers_deduplicated() {
        let m = Membership::new(
            ProcessId(1),
            &pids(&[0, 0, 1, 2, 2]),
            Duration::from_secs(2),
            Time::ZERO,
        );
        assert_eq!(m.peers(), &pids(&[0, 2])[..]);
    }
}
