//! Durability gating: the queue of actions awaiting a WAL flush, and
//! the adaptive group-commit bound that forces one.
//!
//! A process appends `Deliver` events to the WAL and holds *all*
//! resulting actions back until the append is durable
//! (`process::apply_actions_durably`). Two pieces live here:
//!
//! * [`GatedQueue`] — the held-back actions. The WAL flush path used
//!   to walk one flat `Vec<Action>`; like the PR 6 `EventStore` and
//!   rbcast pending maps, it is now **sharded by sensor** so a flush
//!   releasing thousands of gated deliveries touches short per-sensor
//!   queues. Each action is tagged with its global arrival sequence,
//!   and [`GatedQueue::drain_into`] k-way-merges the shard fronts by
//!   that tag, so release order is *exactly* arrival order — the
//!   deliver-before-ack and outbox-coalescing behavior of the flat
//!   queue is preserved bit for bit.
//! * [`AdaptiveGate`] — the group-commit bound. A fixed
//!   `wal_max_gated` stalls bursty workloads (every burst larger than
//!   the cap pays a forced flush) and over-delays sparse ones. The
//!   gate grows the bound multiplicatively when bursts force flushes
//!   and shrinks it when flushes fire at low depth, following the
//!   adaptive group-commit argument of the user-space WAL literature:
//!   batch size should track observed arrival pressure, not a
//!   constant.

use std::collections::VecDeque;

use crate::delivery::Action;

/// Multiplicative step for [`AdaptiveGate`] growth and shrink.
const GATE_STEP: usize = 2;
/// The bound grows to at most `initial × GATE_MAX_FACTOR`.
const GATE_MAX_FACTOR: usize = 16;

/// Adaptive bound on how many actions may gate behind un-flushed WAL
/// appends before the process forces a group commit.
///
/// Policy (multiplicative-increase / multiplicative-decrease):
///
/// * A **forced flush** means the burst outran the bound — the bound
///   doubles (capped at `initial × 16`) so the next burst batches
///   more per fsync.
/// * An **idle flush** (timer/backstop) at depth below a quarter of
///   the bound means the workload no longer fills batches — the bound
///   halves (floored at 1) so a later trickle isn't held hostage to a
///   burst-sized batch.
/// * Disabled, the bound pins at `initial` — the PR 6 fixed-cap
///   behavior.
#[derive(Debug, Clone)]
pub struct AdaptiveGate {
    bound: usize,
    initial: usize,
    adaptive: bool,
    /// Forced flushes observed (bursts that hit the bound).
    pub forced: u64,
    /// Bound adjustments made (grow + shrink).
    pub adjustments: u64,
}

impl AdaptiveGate {
    /// Creates a gate starting at `initial` (clamped to ≥ 1);
    /// `adaptive = false` pins the bound there.
    #[must_use]
    pub fn new(initial: usize, adaptive: bool) -> Self {
        let initial = initial.max(1);
        Self {
            bound: initial,
            initial,
            adaptive,
            forced: 0,
            adjustments: 0,
        }
    }

    /// The current group-commit bound. Never below 1.
    #[must_use]
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Records that the gated queue hit the bound and a flush was
    /// forced; grows the bound.
    pub fn on_forced_flush(&mut self) {
        self.forced += 1;
        if !self.adaptive {
            return;
        }
        let max = self.initial.saturating_mul(GATE_MAX_FACTOR);
        let grown = self.bound.saturating_mul(GATE_STEP).min(max);
        if grown != self.bound {
            self.bound = grown;
            self.adjustments += 1;
        }
    }

    /// Records a flush that fired without back-pressure (timer tick,
    /// checkpoint, policy trigger) at the given gated depth; shrinks
    /// the bound when the batch ran well under it.
    pub fn on_idle_flush(&mut self, depth: usize) {
        if !self.adaptive {
            return;
        }
        if depth < (self.bound / 4).max(1) {
            let shrunk = (self.bound / GATE_STEP).max(1);
            if shrunk != self.bound {
                self.bound = shrunk;
                self.adjustments += 1;
            }
        }
    }
}

/// Actions gated behind un-flushed WAL appends, sharded by sensor.
///
/// `Deliver` actions go to `shard(sensor) = sensor % shards`; `Send`/
/// `Fanout` actions go to a misc queue. Every push is tagged with a
/// global sequence number and each queue is FIFO, so each queue front
/// is its queue's minimum tag — [`GatedQueue::drain_into`] merges the
/// fronts to reproduce exact arrival order.
#[derive(Debug)]
pub struct GatedQueue {
    shards: Vec<VecDeque<(u64, Action)>>,
    misc: VecDeque<(u64, Action)>,
    next_seq: u64,
    len: usize,
}

impl GatedQueue {
    /// Creates a queue with `shards` sensor shards (clamped to ≥ 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| VecDeque::new()).collect(),
            misc: VecDeque::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of gated actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no actions are gated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Length of the deepest sensor shard (observability gauge).
    #[must_use]
    pub fn max_shard_depth(&self) -> usize {
        self.shards
            .iter()
            .map(VecDeque::len)
            .max()
            .unwrap_or(0)
            .max(self.misc.len())
    }

    /// Gates an action, preserving global arrival order via the
    /// sequence tag.
    pub fn push(&mut self, action: Action) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let queue = match &action {
            Action::Deliver { event } => {
                let shard = event.id.sensor.as_u32() as usize % self.shards.len();
                &mut self.shards[shard]
            }
            Action::Send { .. } | Action::Fanout { .. } => &mut self.misc,
        };
        queue.push_back((seq, action));
        self.len += 1;
    }

    /// Releases every gated action into `out` in exact arrival order
    /// (k-way merge of the shard fronts by sequence tag).
    pub fn drain_into(&mut self, out: &mut Vec<Action>) {
        out.reserve(self.len);
        loop {
            // Each queue is FIFO in seq, so the global minimum is one
            // of the fronts.
            let mut best: Option<(&mut VecDeque<(u64, Action)>, u64)> = None;
            for q in self
                .shards
                .iter_mut()
                .chain(std::iter::once(&mut self.misc))
            {
                if let Some(&(seq, _)) = q.front() {
                    match best {
                        Some((_, best_seq)) if best_seq <= seq => {}
                        _ => best = Some((q, seq)),
                    }
                }
            }
            let Some((q, _)) = best else { break };
            let (_, action) = q.pop_front().expect("front probed above");
            out.push(action);
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::{Event, EventId, EventKind, SensorId, Time};

    fn deliver(sensor: u32, seq: u64) -> Action {
        Action::Deliver {
            event: Event::new(
                EventId::new(SensorId(sensor), seq),
                EventKind::Motion,
                Time::ZERO,
            ),
        }
    }

    #[test]
    fn gate_grows_under_burst() {
        let mut gate = AdaptiveGate::new(8, true);
        assert_eq!(gate.bound(), 8);
        gate.on_forced_flush();
        assert_eq!(gate.bound(), 16);
        for _ in 0..20 {
            gate.on_forced_flush();
        }
        assert_eq!(gate.bound(), 8 * 16, "growth caps at initial × 16");
        assert_eq!(gate.forced, 21);
    }

    #[test]
    fn gate_shrinks_when_idle_never_below_one() {
        let mut gate = AdaptiveGate::new(8, true);
        for _ in 0..3 {
            gate.on_forced_flush();
        }
        assert_eq!(gate.bound(), 64);
        // Idle flushes at low depth walk the bound back down.
        for _ in 0..20 {
            gate.on_idle_flush(0);
        }
        assert_eq!(gate.bound(), 1, "shrink floors at 1, never 0");
        // A deep idle flush does not shrink.
        let mut gate = AdaptiveGate::new(8, true);
        gate.on_forced_flush();
        gate.on_idle_flush(15); // 15 ≥ 16/4
        assert_eq!(gate.bound(), 16);
    }

    #[test]
    fn disabled_gate_pins_bound() {
        let mut gate = AdaptiveGate::new(512, false);
        for _ in 0..10 {
            gate.on_forced_flush();
            gate.on_idle_flush(0);
        }
        assert_eq!(gate.bound(), 512);
        assert_eq!(gate.adjustments, 0);
        assert_eq!(gate.forced, 10, "forced flushes still counted");
    }

    #[test]
    fn zero_initial_clamps_to_one() {
        let gate = AdaptiveGate::new(0, true);
        assert_eq!(gate.bound(), 1);
    }

    #[test]
    fn sharded_queue_preserves_arrival_order() {
        let mut q = GatedQueue::new(4);
        // Interleave sensors (different shards), including shard
        // collisions (0 and 4) and misc actions.
        let actions: Vec<Action> = vec![
            deliver(0, 0),
            deliver(1, 0),
            deliver(4, 0), // same shard as sensor 0
            deliver(0, 1),
            deliver(2, 0),
            deliver(4, 1),
            deliver(3, 0),
        ];
        for a in actions.clone() {
            q.push(a);
        }
        assert_eq!(q.len(), 7);
        assert!(q.max_shard_depth() >= 2, "collisions stack in one shard");
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert!(q.is_empty());
        let ids = |v: &[Action]| -> Vec<(u32, u64)> {
            v.iter()
                .map(|a| match a {
                    Action::Deliver { event } => (event.id.sensor.as_u32(), event.id.seq),
                    _ => unreachable!(),
                })
                .collect()
        };
        assert_eq!(ids(&out), ids(&actions), "exact arrival order");
    }

    #[test]
    fn queue_reusable_after_drain() {
        let mut q = GatedQueue::new(2);
        q.push(deliver(0, 0));
        let mut out = Vec::new();
        q.drain_into(&mut out);
        q.push(deliver(1, 0));
        q.push(deliver(0, 1));
        out.clear();
        q.drain_into(&mut out);
        assert_eq!(out.len(), 2);
        // Seq tags keep increasing across drains; order still holds.
        let Action::Deliver { event } = &out[0] else {
            panic!()
        };
        assert_eq!(event.id.sensor, SensorId(1));
    }
}
