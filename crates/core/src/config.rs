//! Platform configuration.

use rivulet_types::Duration;

/// How Gapless replicates ingested events across processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingMode {
    /// The paper's ring protocol with reliable-broadcast fallback
    /// (§4.1): n messages in the failure-free case.
    Ring,
    /// The Fig. 5 baseline: every process that receives an event from
    /// the sensor broadcasts it to all peers unless it already received
    /// it from another process — O(m·n) messages for m receivers.
    EagerBroadcast,
}

/// How reliable-broadcast deliveries are acknowledged back to the
/// broadcast origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Per-sensor *received* watermarks piggybacked on the keep-alive
    /// beacon retire pending retransmissions cumulatively: one beacon
    /// acknowledges every broadcast the peer has durably received, so
    /// no per-event ack messages exist on the wire. Acknowledgement
    /// latency is bounded by the keep-alive interval, which equals the
    /// retransmit interval by default — at most one redundant
    /// retransmission in the worst case.
    Cumulative,
    /// The original protocol: every `Broadcast` receipt immediately
    /// sends a dedicated `BroadcastAck`. Kept as a fallback for
    /// experiments that measure per-event acknowledgement latency
    /// (Fig. 7 failover timing).
    PerEvent,
}

/// Tunable parameters of a Rivulet process.
///
/// Defaults follow the paper's evaluation setup: keep-alives every
/// 500 ms and a 2-second failure-detection threshold (§8.4).
#[derive(Debug, Clone, PartialEq)]
pub struct RivuletConfig {
    /// Interval between keep-alive messages to every peer (§4.1's
    /// "every *t* seconds").
    pub keepalive_interval: Duration,
    /// Silence threshold after which a peer is suspected crashed. The
    /// evaluation uses 2 s, producing the ~20-event gap of Fig. 7.
    pub failure_timeout: Duration,
    /// Interval between reliable-broadcast retransmissions for
    /// unacknowledged events.
    pub rbcast_retransmit: Duration,
    /// Whether a process that gains a new ring successor synchronizes
    /// its event store with it (§4.1, Bayou-style). Disabling this is
    /// an ablation that demonstrates permanent gaps after partitions.
    pub anti_entropy: bool,
    /// Cap on events retained per sensor in the replication store;
    /// oldest events are evicted first. Home-scale memory bound.
    pub store_cap_per_sensor: usize,
    /// Extra wait beyond a sensor's poll latency before a poll is
    /// considered failed and retried (Gapless polling only).
    pub repoll_margin: Duration,
    /// Gapless replication protocol (ring, or the broadcast baseline
    /// used for the Fig. 5 comparison).
    pub forwarding: ForwardingMode,
    /// Whether replicated events below the home-wide processed
    /// watermark are garbage-collected from the store each tick. They
    /// can never be needed by a failover replay again; disabling this
    /// keeps full history (useful for debugging).
    pub store_gc: bool,
    /// Whether messages queued to the same destination within one actor
    /// activation are coalesced into a single multi-command frame.
    /// Batching points derive from virtual-time activations only, so
    /// coalescing never changes what is delivered or per-stream order —
    /// only per-message transport overhead. Disable to measure the
    /// uncoalesced baseline.
    pub coalescing: bool,
    /// How broadcast deliveries are acknowledged (cumulative watermarks
    /// by default; per-event acks as a fallback).
    pub ack_mode: AckMode,
    /// Number of sensor shards in the replication store (and the
    /// pending-delivery maps keyed the same way). One shard reproduces
    /// the original flat layout; more shards keep hot-path tree walks
    /// short when many sensors are live.
    pub store_shards: usize,
    /// Durability back-pressure: when this many actions are gated
    /// behind un-flushed WAL appends, the process forces a group commit
    /// instead of waiting for the flush policy's own trigger. Bounds
    /// gated-queue growth (and flush latency) under broadcast storms.
    /// With [`RivuletConfig::wal_adaptive_gating`] this is the
    /// *initial* bound; the live bound then tracks observed burst
    /// depth.
    pub wal_max_gated: usize,
    /// Whether the group-commit bound adapts to load: repeated forced
    /// flushes (bursts) grow it so commits stay batched, idle flushes
    /// at low depth shrink it back so latency stays bounded. Disabled,
    /// the bound is pinned at `wal_max_gated`.
    pub wal_adaptive_gating: bool,
    /// Whether the delivery→execution handoff runs through a bounded
    /// lock-free SPSC ring with batched pops instead of delivering
    /// inline per action. Behavior-neutral (same events, same order);
    /// disable to measure the inline baseline.
    pub exec_ring: bool,
    /// Slots in the delivery→execution ring (rounded up to a power of
    /// two). When the ring fills, delivery falls back to inline
    /// execution for that event, so this bounds batching, not
    /// correctness.
    pub exec_ring_capacity: usize,
    /// Whether stored event payloads that pin a larger backing buffer
    /// (views into arrival frames) are re-homed into a refcounted
    /// payload arena recycled on watermark retirement. Disable to
    /// measure the frame-pinning baseline.
    pub payload_arena: bool,
    /// Master switch for the device-fault detection + repair layer
    /// (per-sensor health models, outlier substitution, quarantine,
    /// stall re-polls). **Off by default**: with repair disabled the
    /// runtime allocates no health state and writes no `repair.*`
    /// counters, and runs are bit-identical to pre-repair builds.
    pub repair: bool,
    /// Exact-repeat run length after which a scalar sensor is judged
    /// stuck and its readings become untrusted.
    pub repair_stuck_run: u32,
    /// Absolute disagreement from the healthy-peer midpoint
    /// (Marzullo) beyond which a reading is an outlier and is
    /// substituted/dropped.
    pub repair_disagreement: f64,
    /// Outliers tolerated from one sensor before it is quarantined
    /// (all further events from it are dropped at delivery).
    pub repair_outlier_quarantine: u32,
    /// Silence threshold after which a *pollable* sensor is considered
    /// stalled and re-polled through the polling service.
    pub repair_stall_timeout: Duration,
    /// Master switch for the routine execution engine (all-or-nothing
    /// multi-actuator command sequences, staged two-phase against the
    /// hash-chained execution-integrity ledger). **Off by default**:
    /// with routines disabled the runtime allocates no routine state,
    /// writes no `routine.*`/`ledger.*` counters, and runs are
    /// bit-identical to pre-routine builds.
    pub routines: bool,
    /// How long the routine coordinator waits for every staged step to
    /// be acknowledged before aborting the firing and compensating.
    pub routine_stage_timeout: Duration,
    /// Seed of the execution-integrity ledger's genesis hash. Fleet
    /// runs derive it per home so chains from different homes can never
    /// be spliced together.
    pub routine_ledger_seed: u64,
}

impl Default for RivuletConfig {
    fn default() -> Self {
        Self {
            keepalive_interval: Duration::from_millis(500),
            failure_timeout: Duration::from_secs(2),
            rbcast_retransmit: Duration::from_millis(500),
            anti_entropy: true,
            store_cap_per_sensor: 100_000,
            repoll_margin: Duration::from_millis(200),
            forwarding: ForwardingMode::Ring,
            store_gc: true,
            coalescing: true,
            ack_mode: AckMode::Cumulative,
            store_shards: 8,
            wal_max_gated: 512,
            wal_adaptive_gating: true,
            exec_ring: true,
            exec_ring_capacity: 1024,
            payload_arena: true,
            repair: false,
            repair_stuck_run: 6,
            repair_disagreement: 4.0,
            repair_outlier_quarantine: 10,
            repair_stall_timeout: Duration::from_secs(2),
            routines: false,
            routine_stage_timeout: Duration::from_secs(2),
            routine_ledger_seed: 0,
        }
    }
}

impl RivuletConfig {
    /// Returns a config with the failure-detection threshold replaced.
    #[must_use]
    pub fn with_failure_timeout(mut self, timeout: Duration) -> Self {
        self.failure_timeout = timeout;
        self
    }

    /// Returns a config with anti-entropy enabled or disabled.
    #[must_use]
    pub fn with_anti_entropy(mut self, enabled: bool) -> Self {
        self.anti_entropy = enabled;
        self
    }

    /// Returns a config with the keep-alive interval replaced.
    #[must_use]
    pub fn with_keepalive_interval(mut self, interval: Duration) -> Self {
        self.keepalive_interval = interval;
        self
    }

    /// Returns a config with the Gapless forwarding mode replaced.
    #[must_use]
    pub fn with_forwarding(mut self, mode: ForwardingMode) -> Self {
        self.forwarding = mode;
        self
    }

    /// Returns a config with store garbage collection enabled or
    /// disabled.
    #[must_use]
    pub fn with_store_gc(mut self, enabled: bool) -> Self {
        self.store_gc = enabled;
        self
    }

    /// Returns a config with same-destination frame coalescing enabled
    /// or disabled.
    #[must_use]
    pub fn with_coalescing(mut self, enabled: bool) -> Self {
        self.coalescing = enabled;
        self
    }

    /// Returns a config with the broadcast acknowledgement mode
    /// replaced.
    #[must_use]
    pub fn with_ack_mode(mut self, mode: AckMode) -> Self {
        self.ack_mode = mode;
        self
    }

    /// Returns a config with the store shard count replaced.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_store_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "store shard count must be positive");
        self.store_shards = shards;
        self
    }

    /// Returns a config with adaptive WAL group-commit gating enabled
    /// or disabled.
    #[must_use]
    pub fn with_wal_adaptive_gating(mut self, enabled: bool) -> Self {
        self.wal_adaptive_gating = enabled;
        self
    }

    /// Returns a config with the delivery→execution SPSC ring enabled
    /// or disabled.
    #[must_use]
    pub fn with_exec_ring(mut self, enabled: bool) -> Self {
        self.exec_ring = enabled;
        self
    }

    /// Returns a config with the delivery→execution ring capacity
    /// replaced.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_exec_ring_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "exec ring capacity must be positive");
        self.exec_ring_capacity = capacity;
        self
    }

    /// Returns a config with payload-arena re-homing enabled or
    /// disabled.
    #[must_use]
    pub fn with_payload_arena(mut self, enabled: bool) -> Self {
        self.payload_arena = enabled;
        self
    }

    /// Returns a config with the fault detection + repair layer
    /// enabled or disabled.
    #[must_use]
    pub fn with_repair(mut self, enabled: bool) -> Self {
        self.repair = enabled;
        self
    }

    /// Returns a config with the stuck-run detection length replaced.
    ///
    /// # Panics
    ///
    /// Panics if `run` is < 2 (a single repeat is normal behaviour).
    #[must_use]
    pub fn with_repair_stuck_run(mut self, run: u32) -> Self {
        assert!(run >= 2, "stuck run must be at least 2");
        self.repair_stuck_run = run;
        self
    }

    /// Returns a config with the outlier disagreement threshold
    /// replaced.
    #[must_use]
    pub fn with_repair_disagreement(mut self, threshold: f64) -> Self {
        self.repair_disagreement = threshold;
        self
    }

    /// Returns a config with the quarantine outlier budget replaced.
    #[must_use]
    pub fn with_repair_outlier_quarantine(mut self, outliers: u32) -> Self {
        self.repair_outlier_quarantine = outliers;
        self
    }

    /// Returns a config with the sensor-stall re-poll threshold
    /// replaced.
    #[must_use]
    pub fn with_repair_stall_timeout(mut self, timeout: Duration) -> Self {
        self.repair_stall_timeout = timeout;
        self
    }

    /// Returns a config with the routine execution engine enabled or
    /// disabled.
    #[must_use]
    pub fn with_routines(mut self, enabled: bool) -> Self {
        self.routines = enabled;
        self
    }

    /// Returns a config with the routine staging timeout replaced.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero (a firing could never stage).
    #[must_use]
    pub fn with_routine_stage_timeout(mut self, timeout: Duration) -> Self {
        assert!(timeout > Duration::ZERO, "stage timeout must be positive");
        self.routine_stage_timeout = timeout;
        self
    }

    /// Returns a config with the ledger genesis seed replaced.
    #[must_use]
    pub fn with_routine_ledger_seed(mut self, seed: u64) -> Self {
        self.routine_ledger_seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RivuletConfig::default();
        assert_eq!(c.failure_timeout, Duration::from_secs(2));
        assert_eq!(c.keepalive_interval, Duration::from_millis(500));
        assert!(c.anti_entropy);
        assert!(c.coalescing, "coalescing is on by default");
        assert_eq!(c.ack_mode, AckMode::Cumulative);
        assert_eq!(c.store_shards, 8);
        assert!(c.wal_max_gated > 0);
        assert!(c.wal_adaptive_gating, "adaptive gating on by default");
        assert!(c.exec_ring, "exec ring on by default");
        assert!(c.exec_ring_capacity > 0);
        assert!(c.payload_arena, "payload arena on by default");
        assert!(!c.repair, "repair layer is opt-in");
        assert!(c.repair_stuck_run >= 2);
        assert!(c.repair_disagreement > 0.0);
        assert!(c.repair_outlier_quarantine > 0);
        assert!(c.repair_stall_timeout > Duration::ZERO);
        assert!(!c.routines, "routine engine is opt-in");
        assert!(c.routine_stage_timeout > Duration::ZERO);
        assert_eq!(c.routine_ledger_seed, 0);
    }

    #[test]
    fn routine_builders() {
        let c = RivuletConfig::default()
            .with_routines(true)
            .with_routine_stage_timeout(Duration::from_millis(750))
            .with_routine_ledger_seed(42);
        assert!(c.routines);
        assert_eq!(c.routine_stage_timeout, Duration::from_millis(750));
        assert_eq!(c.routine_ledger_seed, 42);
    }

    #[test]
    #[should_panic(expected = "stage timeout must be positive")]
    fn zero_stage_timeout_panics() {
        let _ = RivuletConfig::default().with_routine_stage_timeout(Duration::ZERO);
    }

    #[test]
    fn repair_builders() {
        let c = RivuletConfig::default()
            .with_repair(true)
            .with_repair_stuck_run(4)
            .with_repair_disagreement(2.5)
            .with_repair_outlier_quarantine(3)
            .with_repair_stall_timeout(Duration::from_secs(1));
        assert!(c.repair);
        assert_eq!(c.repair_stuck_run, 4);
        assert!((c.repair_disagreement - 2.5).abs() < f64::EPSILON);
        assert_eq!(c.repair_outlier_quarantine, 3);
        assert_eq!(c.repair_stall_timeout, Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "stuck run must be at least 2")]
    fn tiny_stuck_run_panics() {
        let _ = RivuletConfig::default().with_repair_stuck_run(1);
    }

    #[test]
    fn round3_builders() {
        let c = RivuletConfig::default()
            .with_wal_adaptive_gating(false)
            .with_exec_ring(false)
            .with_exec_ring_capacity(64)
            .with_payload_arena(false);
        assert!(!c.wal_adaptive_gating);
        assert!(!c.exec_ring);
        assert_eq!(c.exec_ring_capacity, 64);
        assert!(!c.payload_arena);
    }

    #[test]
    #[should_panic(expected = "exec ring capacity must be positive")]
    fn zero_ring_capacity_panics() {
        let _ = RivuletConfig::default().with_exec_ring_capacity(0);
    }

    #[test]
    fn store_shards_builder() {
        let c = RivuletConfig::default().with_store_shards(2);
        assert_eq!(c.store_shards, 2);
    }

    #[test]
    #[should_panic(expected = "store shard count must be positive")]
    fn zero_store_shards_panics() {
        let _ = RivuletConfig::default().with_store_shards(0);
    }

    #[test]
    fn coalescing_and_ack_builders() {
        let c = RivuletConfig::default()
            .with_coalescing(false)
            .with_ack_mode(AckMode::PerEvent);
        assert!(!c.coalescing);
        assert_eq!(c.ack_mode, AckMode::PerEvent);
    }

    #[test]
    fn builder_overrides() {
        let c = RivuletConfig::default()
            .with_failure_timeout(Duration::from_secs(5))
            .with_anti_entropy(false)
            .with_keepalive_interval(Duration::from_millis(250));
        assert_eq!(c.failure_timeout, Duration::from_secs(5));
        assert!(!c.anti_entropy);
        assert_eq!(c.keepalive_interval, Duration::from_millis(250));
    }
}
